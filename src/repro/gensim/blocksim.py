"""Block-compiled simulation: basic-block JIT over exec-generated Python.

The :class:`~repro.gensim.compiled.CompiledSimulator` burns operands into
per-instruction closure trees but still pays the generic driver loop per
instruction: a PC load, a bounds check, a sink list, a heap push per write
and a dict store per state change.  This backend goes the rest of the way
(the classic compiled-code simulator structure): straight-line instruction
runs — basic blocks discovered by :mod:`repro.gensim.cfg` — are rendered
into a *single Python source function* which is ``compile``/``exec``-ed
once and dispatched through an entry-PC cache.

Inside a generated block function

* operand values, PC reads, stall counts and cycle costs are constants;
* scalar storages are function locals, addressed storages are hoisted
  list references; all state is written back in one batch per block exit;
* two-phase semantics are kept by computing every write into a temp and
  committing it at its *statically known* commit boundary — stalls and
  cycle costs are static per address, so a write created at instruction
  ``k`` with latency ``L`` commits at the first boundary whose cycle
  offset reaches ``retire(k) + L - 1``.  Only writes that are still in
  flight when the block exits are handed back to the driver (the *latency
  residue*), which re-enters the inherited heap-based machinery.

Blocks that cannot be proven safe — self-modifying code, statically
unresolvable destinations, RTL the emitter does not cover — fall back to
the inherited per-instruction path, as do dispatches with in-flight
cross-block writes, monitored storages, or a nearly exhausted step
budget.  Cycle counts and final state match XSim bit for bit;
``tests/gensim/test_blocksim.py`` asserts it differentially and
property-tests it across the sample machines.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from .. import obs
from ..encoding.bits import mask, set_bits
from ..errors import ReproError, SimulationError
from ..isdl import ast, rtl
from ..isdl.fingerprint import fingerprint_delta
from .cfg import ControlFlowAnalyzer, block_span
from .compiled import CompiledSimulator, _make_commit
from .core import INTRINSIC_IMPLS, _BINOPS, BoundNt
from .monitors import MonitorSet
from .render import render_instruction
from .stats import RunResult

__all__ = ["BlockSimulator", "BlockStats", "BlockTable", "CompiledBlock"]


class _Unsupported(Exception):
    """RTL the block emitter does not cover — compile falls back."""


#: exec() namespace shared by every generated block: truncating division
#: and the intrinsics, bound to the exact callables the closure compiler
#: uses so results agree bit for bit.
_EXEC_GLOBALS = {
    "_div": _BINOPS["/"],
    "_mod": _BINOPS["%"],
    "_set_bits": set_bits,
}
_EXEC_GLOBALS.update(
    {f"_in_{name}": fn for name, fn in INTRINSIC_IMPLS.items()}
)


@dataclass
class BlockStats:
    """Dispatch-cache accounting for one simulator."""

    hits: int = 0  # dispatches served by an already-compiled block
    misses: int = 0  # block compilations (cold dispatches)
    deopts: int = 0  # dispatches routed to the per-instruction path
    interp_steps: int = 0  # instructions executed on that path
    residue_writes: int = 0  # latency writes carried past a block exit
    fused_blocks: int = 0  # certified superblock chains compiled
    chain_dispatches: int = 0  # dispatches served by a fused chain

    @property
    def dispatches(self) -> int:
        return self.hits + self.misses


@dataclass
class CompiledBlock:
    """One compiled basic block (shared by every simulator instance).

    ``fn is None`` marks a *deopt sentinel*: the entry is cached (so the
    compile is not retried) but every dispatch single-steps instead.
    """

    start: int
    n: int
    fn: Optional[object]
    #: slot-indexed commit closures for the latency residue
    residue: Tuple = ()
    #: base storages the block touches (monitor-deopt test)
    storages: FrozenSet[str] = frozenset()
    #: the generated Python source (debugging, tests, reports)
    source: str = ""
    #: (field, op) pairs decoded in the block's span — the provenance an
    #: incremental child checks before adopting the block unrecompiled
    ops: FrozenSet[Tuple[str, str]] = frozenset()
    #: member block entry offsets of a fused superblock chain (empty for
    #: an ordinary single-block compile)
    segments: Tuple[int, ...] = ()


class BlockTable:
    """Entry-offset → :class:`CompiledBlock` cache for one loaded program.

    Compiled lazily and shared across simulator instances through
    :meth:`repro.cache.ArtifactCache.block_table` — block functions close
    over nothing but burned constants, so they are instance-independent.
    Reloading a program installs a fresh (or differently keyed) table,
    which is the invalidation rule.
    """

    __slots__ = ("blocks",)

    def __init__(self, n_words: int):
        self.blocks: List[Optional[CompiledBlock]] = [None] * n_words


class _Write:
    """A pending write record during block compilation (not at runtime)."""

    __slots__ = ("due", "seq", "guards", "name", "hi", "lo", "is_array",
                 "index", "value")

    def __init__(self, due, seq, guards, name, hi, lo, is_array, index,
                 value):
        self.due = due  # block-relative commit cycle
        self.seq = seq  # static emission order (commit tie-break)
        self.guards = guards  # condition-flag conjunction, outer first
        self.name = name
        self.hi = hi
        self.lo = lo
        self.is_array = is_array
        self.index = index  # source text of the element index (arrays)
        self.value = value  # temp holding the computed value


class _Writeback:
    """Placeholder for the batched write-back (expanded in finalize —
    the full written-scalar set is only known once the block is emitted)."""

    __slots__ = ("indent", "pc_src")

    def __init__(self, indent: int, pc_src: str):
        self.indent = indent
        self.pc_src = pc_src


class _BlockCompiler:
    """Renders one basic block into Python source.

    The generated function has the signature ``_block(scalars, arrays,
    res)`` and returns ``(cycle_delta, stall_delta, instructions)``; any
    write still in flight at the exit is appended to ``res`` as
    ``(due_offset, slot, index, value)`` for the driver to heap-push.
    """

    def __init__(self, sim: "BlockSimulator"):
        self.sim = sim
        self.desc = sim.desc
        self.pc = sim._pc
        self.halt = sim._halt
        self.lines: List[object] = []
        self.indent = 0
        self.guards: Tuple[str, ...] = ()
        self.temp = 0
        self.seq = 0
        self.records: List[_Write] = []
        self.scalar_names: set = set()  # locals to load (reads + writes)
        self.scalar_writes: set = set()  # locals to write back
        self.array_names: set = set()
        self.cur_address = 0  # burned into PC reads
        self._slot_map: Dict[Tuple, int] = {}
        self._residue_fns: List = []

    # ------------------------------------------------------------------
    # Source assembly helpers
    # ------------------------------------------------------------------

    def _line(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def _temp(self) -> str:
        self.temp += 1
        return f"t{self.temp}"

    # ------------------------------------------------------------------
    # Top level: one block
    # ------------------------------------------------------------------

    def compile(self, offsets: Sequence[int],
                elide_pc: FrozenSet[int] = frozenset(),
                segments: Tuple[int, ...] = ()) -> CompiledBlock:
        """Render *offsets* into one block function.

        *elide_pc* marks offsets of interior chain terminators in a
        certified superblock compile: their PC writes are dropped
        instead of committed, which is sound exactly because the
        :class:`~repro.analyze.dataflow.SuperblockChain` certificate
        proves every such write lands on the next segment's entry (the
        address the fall-through already continues at).
        """
        sim = self.sim
        origin = sim._origin
        pc_mask = mask(sim._widths[self.pc])
        storages: set = set()
        outstanding: List[_Write] = []
        cyc = 0
        stl = 0
        halt_dirty = False
        for k, offset in enumerate(offsets):
            address = origin + offset
            _, cycles, size = sim._program[offset]
            flow = sim._flows[offset]
            storages |= flow.storages
            self._comment(offset, address)
            # Top-of-step boundary: commit due writes, then (only if the
            # halt flag may just have changed) test it — the same order
            # the per-instruction driver uses.
            due = [w for w in outstanding if w.due <= cyc]
            if due:
                self._emit_commits(due)
                outstanding = [w for w in outstanding if w.due > cyc]
            touched_halt = any(w.name == self.halt for w in due)
            if k > 0 and (halt_dirty or touched_halt) \
                    and self.halt is not None:
                self._emit_halt_exit(cyc, stl, k, address, outstanding)
            halt_dirty = False
            # Static stall, then the writes that mature during it.  The
            # driver does not re-test halt until the next step boundary,
            # so a halt raised here only marks the flag dirty.
            stall = sim._stalls[offset]
            if stall:
                cyc += stall
                stl += stall
                during = [w for w in outstanding if w.due <= cyc]
                if during:
                    self._emit_commits(during)
                    outstanding = [w for w in outstanding if w.due > cyc]
                    halt_dirty = any(
                        w.name == self.halt for w in during
                    )
            # Compute phase: evaluate everything into temps/records.
            self.cur_address = address
            before = len(self.records)
            decoded = sim._decoded[offset]
            self._emit_instruction(decoded, retire_off=cyc + cycles)
            fresh = self.records[before:]
            if offset in elide_pc:
                # certified chain link: every PC outcome of this
                # terminator equals the next segment's entry address
                fresh = [
                    w for w in fresh
                    if w.is_array or w.name != self.pc
                ]
            outstanding.extend(fresh)
            cyc += cycles
        # Final boundary: fall-through PC (terminator writes override it
        # through the commits below), due commits, latency residue.
        last = offsets[-1]
        fall_pc = (origin + last + sim._program[last][2]) & pc_mask
        self._line(f"_pc = {fall_pc}")
        due = [w for w in outstanding if w.due <= cyc]
        if due:
            self._emit_commits(due, pc_inline=True)
        rest = [w for w in outstanding if w.due > cyc]
        self._emit_residue(rest)
        self.lines.append(_Writeback(self.indent, "_pc"))
        self._line(f"return ({cyc}, {stl}, {len(offsets)})")
        source = self._finalize()
        namespace = dict(_EXEC_GLOBALS)
        code = compile(source, f"<block@{origin + offsets[0]:#x}>", "exec")
        exec(code, namespace)
        return CompiledBlock(
            start=offsets[0],
            n=len(offsets),
            fn=namespace["_block"],
            residue=tuple(self._residue_fns),
            storages=frozenset(storages),
            source=source,
            ops=frozenset(
                (dop.field, dop.op_name)
                for offset in offsets
                for dop in sim._decoded[offset].operations
            ),
            segments=segments,
        )

    def _comment(self, offset: int, address: int) -> None:
        try:
            text = render_instruction(self.desc, self.sim._decoded[offset])
        except ReproError:  # pragma: no cover - odd syntax templates
            text = "?"
        self._line(f"# {address:#06x}: {text}")

    def _finalize(self) -> str:
        out = ["def _block(scalars, arrays, res):"]
        pad = "    "
        for name in sorted(self.scalar_names):
            out.append(f"{pad}s_{name} = scalars[{name!r}]")
        for name in sorted(self.array_names):
            out.append(f"{pad}a_{name} = arrays[{name!r}]")
        for item in self.lines:
            if isinstance(item, _Writeback):
                lead = pad * (1 + item.indent)
                for name in sorted(self.scalar_writes):
                    out.append(f"{lead}scalars[{name!r}] = s_{name}")
                out.append(f"{lead}scalars[{self.pc!r}] = {item.pc_src}")
            else:
                out.append(pad + item)
        return "\n".join(out) + "\n"

    # ------------------------------------------------------------------
    # Commit boundaries, exits and residue
    # ------------------------------------------------------------------

    def _emit_commits(self, due: List[_Write],
                      pc_inline: bool = False) -> None:
        for w in sorted(due, key=lambda w: (w.due, w.seq)):
            if w.name == self.pc and not w.is_array:
                if not pc_inline:
                    # a PC write can only commit at the final boundary
                    # (the writer terminates the block); anything else is
                    # an emitter bug — refuse and deopt.
                    raise _Unsupported("PC commit before block end")
                self._guarded(w.guards, self._pc_commit(w))
                continue
            self._guarded(w.guards, self._state_commit(w))

    def _pc_commit(self, w: _Write) -> str:
        if w.hi is None:
            return f"_pc = {w.value} & {mask(self.sim._widths[w.name])}"
        return f"_pc = _set_bits(_pc, {w.hi}, {w.lo}, {w.value})"

    def _state_commit(self, w: _Write) -> str:
        if w.is_array:
            target = f"a_{w.name}[{w.index}]"
        else:
            self.scalar_names.add(w.name)
            self.scalar_writes.add(w.name)
            target = f"s_{w.name}"
        if w.hi is None:
            return f"{target} = {w.value} & {mask(self.sim._widths[w.name])}"
        return f"{target} = _set_bits({target}, {w.hi}, {w.lo}, {w.value})"

    def _guarded(self, guards: Tuple[str, ...], text: str) -> None:
        if guards:
            self._line(f"if {' and '.join(guards)}:")
            self.indent += 1
            self._line(text)
            self.indent -= 1
        else:
            self._line(text)

    def _emit_halt_exit(self, cyc: int, stl: int, count: int,
                        next_pc: int, outstanding: List[_Write]) -> None:
        self.scalar_names.add(self.halt)
        self._line(f"if s_{self.halt}:")
        self.indent += 1
        self._emit_residue(outstanding)
        self.lines.append(_Writeback(self.indent, str(next_pc)))
        self._line(f"return ({cyc}, {stl}, {count})")
        self.indent -= 1

    def _emit_residue(self, rest: List[_Write]) -> None:
        for w in sorted(rest, key=lambda w: (w.due, w.seq)):
            slot = self._residue_slot(w)
            index = w.index if w.is_array else "None"
            self._guarded(
                w.guards,
                f"res.append(({w.due}, {slot}, {index}, {w.value}))",
            )

    def _residue_slot(self, w: _Write) -> int:
        key = (w.name, w.hi, w.lo, w.is_array)
        slot = self._slot_map.get(key)
        if slot is None:
            slot = len(self._residue_fns)
            self._slot_map[key] = slot
            self._residue_fns.append(_make_commit(
                w.name, self.sim._widths[w.name], w.hi, w.lo, w.is_array
            ))
        return slot

    # ------------------------------------------------------------------
    # Instruction compute phase (mirrors CompiledSimulator's structure)
    # ------------------------------------------------------------------

    def _emit_instruction(self, decoded, retire_off: int) -> None:
        per_dop = []
        for dop in decoded.operations:
            op = self.desc.operation(dop.field, dop.op_name)
            env = self.sim._bind(op.params, dop.operands)
            delay = op.timing.latency - 1
            cenv = self._emit_env(env, retire_off, prologues=True)
            for stmt in op.action:
                self._emit_stmt(stmt, cenv, retire_off + delay, None)
            per_dop.append((op, env, cenv, delay))
        for op, env, cenv, delay in per_dop:
            for stmt in op.side_effect:
                self._emit_stmt(stmt, cenv, retire_off + delay, None)
            for bound in env.values():
                if isinstance(bound, BoundNt) and bound.option.side_effect:
                    nt_delay = bound.option.timing.latency - 1
                    sub_env = self._emit_env(
                        bound.env, retire_off, prologues=False
                    )
                    for stmt in bound.option.side_effect:
                        self._emit_stmt(
                            stmt, sub_env, retire_off + nt_delay, None
                        )

    def _emit_env(self, env, retire_off: int, prologues: bool):
        compiled: Dict[str, object] = {}
        for name, bound in env.items():
            if isinstance(bound, BoundNt):
                sub = self._emit_env(bound.env, retire_off, prologues)
                if prologues:
                    value_src = self._emit_nt_action(bound, sub, retire_off)
                else:
                    # matches the closure compiler, which discards nested
                    # prologues in side-effect sub-environments: the NT
                    # value slot stays 0
                    value_src = "0"
                compiled[name] = ("nt", value_src, bound, sub)
            else:
                compiled[name] = ("const", bound)
        return compiled

    def _emit_nt_action(self, bound: BoundNt, sub_env,
                        retire_off: int) -> str:
        holder: Dict[str, str] = {}
        due = retire_off + bound.option.timing.latency - 1
        for stmt in bound.option.action:
            if isinstance(stmt, rtl.Assign) and isinstance(
                stmt.dest, rtl.NtLV
            ):
                src = self._emit_expr(stmt.expr, sub_env, holder)
                t = self._temp()
                self._line(f"{t} = {src}")
                holder["$$"] = t
            else:
                self._emit_stmt(stmt, sub_env, due, holder)
        return holder.get("$$", "0")

    def _emit_stmt(self, stmt, env, due: int, nt_value) -> None:
        if isinstance(stmt, rtl.Assign):
            self._emit_assign(stmt, env, due, nt_value)
            return
        if isinstance(stmt, rtl.If):
            c = self._temp()
            self._line(f"{c} = {self._emit_expr(stmt.cond, env, nt_value)}")
            self._line(f"if {c}:")
            saved = self.guards
            self.indent += 1
            self.guards = saved + (c,)
            if stmt.then:
                for s in stmt.then:
                    self._emit_stmt(s, env, due, nt_value)
            else:
                self._line("pass")
            self.indent -= 1
            if stmt.orelse:
                self._line("else:")
                self.indent += 1
                self.guards = saved + (f"not {c}",)
                for s in stmt.orelse:
                    self._emit_stmt(s, env, due, nt_value)
                self.indent -= 1
            self.guards = saved
            return
        raise _Unsupported(f"statement {stmt!r}")

    def _emit_assign(self, stmt, env, due: int, nt_value) -> None:
        value_src = self._emit_expr(stmt.expr, env, nt_value)
        dest = stmt.dest
        if isinstance(dest, rtl.ParamLV):
            binding = env[dest.name]
            bound = binding[2]
            target = bound.option.storage_target()
            if target is None:
                raise _Unsupported(f"opaque NT destination {dest.name!r}")
            index_env = self._emit_env(bound.env, due, prologues=False)
            self._record_write(target, value_src, index_env, due, nt_value)
            return
        if isinstance(dest, rtl.StorageLV):
            self._record_write(dest, value_src, env, due, nt_value)
            return
        raise _Unsupported(f"destination {dest!r}")

    def _record_write(self, dest, value_src: str, env, due: int,
                      nt_value) -> None:
        name, fixed_index, hi, lo = self.sim._resolve_location(
            dest.storage, dest.hi, dest.lo
        )
        is_array = name in self.sim.arrays
        value = self._temp()
        self._line(f"{value} = {value_src}")
        index = None
        if is_array:
            self.array_names.add(name)
            if dest.index is not None:
                index = self._temp()
                src = self._emit_expr(dest.index, env, nt_value)
                self._line(f"{index} = {src}")
            else:
                index = repr(fixed_index)
        elif name != self.pc:
            self.scalar_names.add(name)
            self.scalar_writes.add(name)
        effective_lo = (lo if lo is not None else hi) if hi is not None \
            else None
        self.seq += 1
        self.records.append(_Write(
            due, self.seq, self.guards, name, hi, effective_lo,
            is_array, index, value,
        ))

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _emit_expr(self, expr, env, nt_value) -> str:
        if isinstance(expr, rtl.IntLit):
            return repr(expr.value)
        if isinstance(expr, rtl.ParamRef):
            binding = env[expr.name]
            if binding[0] == "const":
                return repr(binding[1])
            return binding[1]  # NT value temp (or "0")
        if isinstance(expr, rtl.NtValue):
            if nt_value is None or "$$" not in nt_value:
                raise _Unsupported("'$$' read before assignment")
            return nt_value["$$"]
        if isinstance(expr, rtl.StorageRead):
            return self._emit_read(expr, env, nt_value)
        if isinstance(expr, rtl.BinOp):
            left = self._emit_expr(expr.left, env, nt_value)
            right = self._emit_expr(expr.right, env, nt_value)
            op = expr.op
            if op == "&&":
                return f"(1 if ({left}) and ({right}) else 0)"
            if op == "||":
                return f"(1 if ({left}) or ({right}) else 0)"
            if op == "/":
                return f"_div({left}, {right})"
            if op == "%":
                return f"_mod({left}, {right})"
            if op in ("==", "!=", "<", "<=", ">", ">="):
                return f"(1 if ({left}) {op} ({right}) else 0)"
            if op in ("+", "-", "*", "&", "|", "^", "<<", ">>"):
                return f"(({left}) {op} ({right}))"
            raise _Unsupported(f"operator {op!r}")
        if isinstance(expr, rtl.UnOp):
            operand = self._emit_expr(expr.operand, env, nt_value)
            if expr.op == "~":
                return f"(~({operand}))"
            if expr.op == "-":
                return f"(-({operand}))"
            return f"(0 if ({operand}) else 1)"
        if isinstance(expr, rtl.Cond):
            cond = self._emit_expr(expr.cond, env, nt_value)
            then = self._emit_expr(expr.then, env, nt_value)
            other = self._emit_expr(expr.other, env, nt_value)
            return f"(({then}) if ({cond}) else ({other}))"
        if isinstance(expr, rtl.Call):
            if expr.func not in INTRINSIC_IMPLS:
                raise _Unsupported(f"intrinsic {expr.func!r}")
            args = ", ".join(
                self._emit_expr(arg, env, nt_value) for arg in expr.args
            )
            return f"_in_{expr.func}({args})"
        raise _Unsupported(f"expression {expr!r}")

    def _emit_read(self, expr, env, nt_value) -> str:
        name, fixed_index, hi, lo = self.sim._resolve_location(
            expr.storage, expr.hi, expr.lo
        )
        is_array = name in self.sim.arrays
        if is_array:
            self.array_names.add(name)
            if expr.index is not None:
                index = self._emit_expr(expr.index, env, nt_value)
            else:
                index = repr(fixed_index)
            base = f"a_{name}[{index}]"
        elif name == self.pc:
            # During execution the PC holds the current instruction's
            # address — a compile-time constant here.
            value = self.cur_address
            if hi is None:
                return repr(value)
            effective_lo = lo if lo is not None else hi
            return repr((value >> effective_lo)
                        & mask(hi - effective_lo + 1))
        else:
            self.scalar_names.add(name)
            base = f"s_{name}"
        if hi is None:
            return base
        effective_lo = lo if lo is not None else hi
        m = mask(hi - effective_lo + 1)
        return f"(({base} >> {effective_lo}) & {m})"


class BlockSimulator(CompiledSimulator):
    """Basic-block JIT backend behind the :class:`Simulator` protocol.

    Accepts an optional *cache* (:class:`repro.cache.ArtifactCache`) to
    share compiled block tables across instances by ISDL fingerprint, and
    an optional *monitors* (:class:`MonitorSet`): blocks touching watched
    storages are executed per instruction with changes reported at
    commit-wave granularity (coarser than XSim's per-write hooks, but the
    fast path stays monitor-free).
    """

    def __init__(self, desc: ast.Description, table=None, *,
                 cache=None, monitors: Optional[MonitorSet] = None,
                 parent: Optional[ast.Description] = None,
                 proofs: bool = False):
        super().__init__(desc, table=table)
        self.cache = cache
        self.monitors = monitors
        self.block_stats = BlockStats()
        self._cfg = ControlFlowAnalyzer(desc)
        self._flows: List = []
        self._decoded: List = []
        self._blocks = BlockTable(0)
        # Incremental block adoption: when *parent* is a near-identical
        # description whose block table for the same program is cached,
        # blocks whose span decodes only to delta-unchanged operations
        # are adopted instead of recompiled.
        self._parent = parent
        self._adopt: Optional[Tuple[BlockTable, object]] = None
        # Proof-carrying mode: derive dataflow certificates at load time
        # (validated by their independent checkers before use).  A
        # DeoptFreedom proof elides the per-dispatch deopt guards; a
        # SuperblockChain certificate fuses whole chains into single
        # compiled units.  Final state, cycles and stats are proof-equal
        # to the guarded run (REPRO_PROOF_CHECK=1 re-runs and asserts).
        self.proofs = proofs
        self._deopt_free = False
        self._chains: Dict[int, Tuple[int, ...]] = {}
        self._loaded: Optional[Tuple[Tuple[int, ...], int]] = None

    # ------------------------------------------------------------------
    # Loading (invalidates the dispatch cache)
    # ------------------------------------------------------------------

    def load_words(self, words: Sequence[int], origin: int = 0) -> None:
        super().load_words(words, origin)
        self._decoded = [
            self.disassembler.disassemble(word) for word in words
        ]
        self._flows = self._cfg.flows_for_program(self._decoded)
        self._loaded = (tuple(words), origin)
        self._deopt_free = False
        self._chains = {}
        if self.proofs:
            self._derive_proofs(words, origin)
        # A certified simulator compiles fused chains into its table;
        # those entries must never be dispatched by a guarded run, so
        # the two modes key distinct shared tables.
        variant = "certified" if self.proofs else "plain"
        if self.cache is not None:
            self._blocks = self.cache.block_table(
                self.desc, words, origin,
                lambda: BlockTable(len(words)), variant=variant,
            )
        else:
            self._blocks = BlockTable(len(words))
        self._adopt = None
        if self._parent is not None and self.cache is not None:
            parent_table = self.cache.peek_block_table(
                self._parent, words, origin, variant=variant
            )
            if parent_table is not None:
                delta = fingerprint_delta(self._parent, self.desc)
                # Block code burns in storage widths, PC/halt names, and
                # per-op costs; the environment part is checked once here,
                # the per-op part per block at adoption time.
                if delta.sim_env_unchanged:
                    self._adopt = (parent_table, delta)

    def _derive_proofs(self, words: Sequence[int], origin: int) -> None:
        """Derive and checker-validate the load-time certificates.

        Soundness never rests on the fixpoint engine alone: a
        certificate is only consumed after its independent checker
        re-validated every claim against the description and the loaded
        words.  A failed check silently drops the certificate — the
        guarded machinery stays correct without it.
        """
        from ..analyze.dataflow import (
            check_deopt_freedom,
            check_superblock_chains,
            derive_deopt_freedom,
            derive_superblock_chains,
            program_facts,
        )

        facts = program_facts(
            self.desc, words, origin, name=f"<words@{origin:#x}>",
            cache=self.cache, parent=self._parent,
        )
        cert = derive_deopt_freedom(self.desc, facts)
        if cert is not None and check_deopt_freedom(
            self.desc, words, origin, cert
        ):
            self._deopt_free = True
            obs.add("blocksim.proof_deopt_free")
        chains = derive_superblock_chains(self.desc, facts)
        if chains.chains and check_superblock_chains(
            self.desc, words, origin, chains
        ):
            self._chains = {chain[0]: chain for chain in chains.chains}
            obs.add("blocksim.proof_chains", len(chains.chains))

    # ------------------------------------------------------------------
    # Block compilation
    # ------------------------------------------------------------------

    def _compile_block(self, start: int) -> CompiledBlock:
        span = block_span(self._flows, start)
        deopt = CompiledBlock(start=start, n=1, fn=None)
        if not span:
            return deopt
        chain = self._chains.get(start)
        if chain is not None:
            fused = self._compile_chain(chain)
            if fused is not None:
                return fused
        for offset in span:
            flow = self._flows[offset]
            if flow.writes_imem or flow.unresolved:
                return deopt
        adopted = self._adopted_block(start, span)
        if adopted is not None:
            obs.add("blocksim.blocks_adopted")
            return adopted
        try:
            return _BlockCompiler(self).compile(span)
        except (_Unsupported, SimulationError, KeyError):
            return deopt

    def _compile_chain(self, chain: Tuple[int, ...]
                       ) -> Optional[CompiledBlock]:
        """One fused unit for a certified chain; None falls back to the
        ordinary single-block compile (correct either way — fusion is
        purely a dispatch-count optimization)."""
        offsets: List[int] = []
        elide: set = set()
        for i, seg in enumerate(chain):
            span = block_span(self._flows, seg)
            if not span:
                return None
            for offset in span:
                flow = self._flows[offset]
                if flow.writes_imem or flow.unresolved:
                    return None
            offsets.extend(span)
            if i < len(chain) - 1:
                # interior terminator (a no-op for fall-through links,
                # which have no PC write to elide)
                elide.add(span[-1])
        adopted = self._adopted_block(chain[0], offsets, segments=chain)
        if adopted is not None:
            obs.add("blocksim.blocks_adopted")
            return adopted
        try:
            block = _BlockCompiler(self).compile(
                offsets, elide_pc=frozenset(elide), segments=chain
            )
        except (_Unsupported, SimulationError, KeyError):
            return None
        self.block_stats.fused_blocks += 1
        obs.add("blocksim.fused_blocks")
        return block

    def _adopted_block(self, start: int, span: Sequence[int],
                       segments: Tuple[int, ...] = ()
                       ) -> Optional[CompiledBlock]:
        """The parent's compiled block for *span*, when provably identical.

        Sound because the generated source is a pure function of the
        span's decoded instructions (operands included), the operations'
        costs/stalls/latencies, and the storage/PC/halt environment: the
        environment was checked at load time, the decoded instructions
        reduce to "every operation in the span is delta-unchanged" (an
        unchanged signature row decodes identically, and the parent's
        exactly-one-match decode forces the same selection), and the
        parent's span walk visits the same offsets because each visited
        flow is derived from an unchanged decoded instruction.
        """
        if self._adopt is None:
            return None
        parent_table, delta = self._adopt
        if start >= len(parent_table.blocks):
            return None
        block = parent_table.blocks[start]
        if block is None or block.fn is None or block.n != len(span):
            return None
        if block.segments != segments:
            # same length but a different (or no) chain segmentation
            # changes which PC commits were elided — not the same code
            return None
        for offset in span:
            for dop in self._decoded[offset].operations:
                if not delta.op_unchanged(dop.field, dop.op_name):
                    return None
        return block

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------

    def run(self, max_steps: int = 5_000_000) -> RunResult:
        instructions_before = self.instructions
        cycles_before = self.cycle
        bs = self.block_stats
        before = (bs.hits, bs.misses, bs.deopts, bs.residue_writes)
        shadow = None
        if (
            self.proofs and self._loaded is not None
            and os.environ.get("REPRO_PROOF_CHECK") == "1"
        ):
            shadow = (
                dict(self.scalars),
                {name: list(arr) for name, arr in self.arrays.items()},
                self.cycle, self.stall_cycles, self.instructions,
            )
        # With a checker-validated DeoptFreedom certificate (and no
        # monitors, which need the watched-storage deopt) the driver
        # runs guard-free: no pending-write deopt test, no monitor sync.
        certified = (
            self._deopt_free and self.monitors is None
            and not self._pending
        )
        with obs.span("sim.run", backend="block", desc=self.desc.name):
            if certified:
                result = self._run_loop_certified(max_steps)
            else:
                result = self._run_loop(max_steps)
        if obs.enabled():
            obs.add("sim.runs")
            obs.add("sim.cycles", self.cycle - cycles_before)
            obs.add("sim.instructions",
                    self.instructions - instructions_before)
            obs.add("blocksim.block_hits", bs.hits - before[0])
            obs.add("blocksim.block_misses", bs.misses - before[1])
            obs.add("blocksim.deopts", bs.deopts - before[2])
            obs.add("blocksim.residue_writes",
                    bs.residue_writes - before[3])
        if shadow is not None:
            self._proof_check(shadow, result, max_steps)
        return result

    def _proof_check(self, shadow, result: RunResult,
                     max_steps: int) -> None:
        """REPRO_PROOF_CHECK=1: re-run guarded, assert identical outcome.

        The reference simulator shares nothing with this one (no cache,
        no proofs, no adopted blocks), starts from the snapshot taken
        before the certified run, and must land on the same final
        scalars, arrays, cycles, stalls and instruction count.
        """
        scalars, arrays, cycle, stalls, instructions = shadow
        words, origin = self._loaded
        ref = BlockSimulator(self.desc)
        ref.load_words(words, origin)
        ref.scalars.update(scalars)
        for name, values in arrays.items():
            ref.arrays[name][:] = values
        ref.cycle = cycle
        ref.stall_cycles = stalls
        ref.instructions = instructions
        ref_result = ref.run(max_steps)
        if ref_result != result:
            raise AssertionError(
                "proof-carrying run diverged from the guarded run:"
                f" {result!r} != {ref_result!r}"
            )
        if ref.scalars != self.scalars or ref.arrays != self.arrays:
            diff = [
                name for name in ref.scalars
                if ref.scalars[name] != self.scalars.get(name)
            ] + [
                name for name in ref.arrays
                if ref.arrays[name] != self.arrays.get(name)
            ]
            raise AssertionError(
                "proof-carrying run diverged from the guarded run in"
                f" storages {sorted(diff)!r}"
            )

    def _run_loop(self, max_steps: int) -> RunResult:
        scalars, arrays = self.scalars, self.arrays
        pending = self._pending
        origin = self._origin
        program = self._program
        pc_name = self._pc
        halt = self._halt
        pc_mask = mask(self._widths[pc_name])
        blocks = self._blocks.blocks
        bstats = self.block_stats
        watched = self._watched_storages()
        snapshot = self._monitor_seed(watched) if watched else None
        steps = 0
        res: List = []
        n_words = len(program)
        while True:
            while pending and pending[0][0] <= self.cycle:
                _, _, _, commit, index, value = heapq.heappop(pending)
                commit(scalars, arrays, index, value)
            if snapshot is not None:
                self._monitor_sync(snapshot)
            if halt is not None and scalars.get(halt, 0):
                break
            if steps >= max_steps:
                raise SimulationError(
                    f"program did not halt within {max_steps} steps"
                )
            address = scalars[pc_name]
            offset = address - origin
            if not 0 <= offset < n_words:
                raise SimulationError(
                    f"PC 0x{address:x} outside the loaded program"
                )
            block = blocks[offset]
            if block is None:
                block = self._compile_block(offset)
                blocks[offset] = block
                bstats.misses += 1
            else:
                bstats.hits += 1
            if (
                block.fn is None
                or pending
                or steps + block.n > max_steps
                or (watched and not watched.isdisjoint(block.storages))
            ):
                bstats.deopts += 1
                bstats.interp_steps += 1
                self._interp_step(offset, address, pc_mask)
                steps += 1
                continue
            entry = self.cycle
            cyc_off, stall_off, count = block.fn(scalars, arrays, res)
            self.cycle = entry + cyc_off
            self.stall_cycles += stall_off
            self.instructions += count
            steps += count
            if block.segments:
                bstats.chain_dispatches += 1
            if res:
                commits = block.residue
                for due_off, slot, index, value in res:
                    self._seq += 1
                    heapq.heappush(pending, (
                        entry + due_off, self._seq, 1,
                        commits[slot], index, value,
                    ))
                bstats.residue_writes += len(res)
                del res[:]
        while pending:
            _, _, _, commit, index, value = heapq.heappop(pending)
            commit(scalars, arrays, index, value)
        if snapshot is not None:
            self._monitor_sync(snapshot)
        return RunResult(
            cycles=self.cycle,
            stall_cycles=self.stall_cycles,
            instructions=self.instructions,
            halt_reason="halted",
        )

    def _run_loop_certified(self, max_steps: int) -> RunResult:
        """The guard-free driver, enabled by a valid DeoptFreedom proof.

        The proof guarantees every reachable write has latency ≤ 1 (no
        write outlives its block, so ``res`` stays empty and nothing is
        ever pending at a dispatch boundary) and every block compiles
        without deopt sentinels for decode reasons the proof covers.
        The per-instruction fallback is kept for the step-budget edge
        and for defensive sentinels; it drains its own writes
        immediately, which latency ≤ 1 makes complete.
        """
        scalars, arrays = self.scalars, self.arrays
        pending = self._pending
        origin = self._origin
        pc_name = self._pc
        halt = self._halt
        pc_mask = mask(self._widths[pc_name])
        blocks = self._blocks.blocks
        bstats = self.block_stats
        steps = 0
        res: List = []
        n_words = len(self._program)
        while True:
            if halt is not None and scalars.get(halt, 0):
                break
            if steps >= max_steps:
                raise SimulationError(
                    f"program did not halt within {max_steps} steps"
                )
            address = scalars[pc_name]
            offset = address - origin
            if not 0 <= offset < n_words:
                raise SimulationError(
                    f"PC 0x{address:x} outside the loaded program"
                )
            block = blocks[offset]
            if block is None:
                block = self._compile_block(offset)
                blocks[offset] = block
                bstats.misses += 1
            else:
                bstats.hits += 1
            if block.fn is None or steps + block.n > max_steps:
                bstats.deopts += 1
                bstats.interp_steps += 1
                self._interp_step(offset, address, pc_mask)
                while pending and pending[0][0] <= self.cycle:
                    _, _, _, commit, index, value = heapq.heappop(pending)
                    commit(scalars, arrays, index, value)
                steps += 1
                continue
            entry = self.cycle
            cyc_off, stall_off, count = block.fn(scalars, arrays, res)
            self.cycle = entry + cyc_off
            self.stall_cycles += stall_off
            self.instructions += count
            steps += count
            if block.segments:
                bstats.chain_dispatches += 1
            if res:  # unreachable under the proof; stay correct anyway
                commits = block.residue
                for due_off, slot, index, value in res:
                    self._seq += 1
                    heapq.heappush(pending, (
                        entry + due_off, self._seq, 1,
                        commits[slot], index, value,
                    ))
                bstats.residue_writes += len(res)
                del res[:]
                while pending and pending[0][0] <= self.cycle:
                    _, _, _, commit, index, value = heapq.heappop(pending)
                    commit(scalars, arrays, index, value)
        while pending:
            _, _, _, commit, index, value = heapq.heappop(pending)
            commit(scalars, arrays, index, value)
        return RunResult(
            cycles=self.cycle,
            stall_cycles=self.stall_cycles,
            instructions=self.instructions,
            halt_reason="halted",
        )

    def _interp_step(self, offset: int, address: int,
                     pc_mask: int) -> None:
        """One per-instruction step (the inherited driver's body)."""
        scalars, arrays = self.scalars, self.arrays
        pending = self._pending
        stall = self._stalls[offset]
        if stall:
            self.cycle += stall
            self.stall_cycles += stall
            while pending and pending[0][0] <= self.cycle:
                _, _, _, commit, index, value = heapq.heappop(pending)
                commit(scalars, arrays, index, value)
        execute, cycles, size = self._program[offset]
        sink: List = []
        execute(scalars, arrays, sink)
        retire = self.cycle + cycles
        for delay, phase, commit, index, value in sink:
            self._seq += 1
            heapq.heappush(
                pending,
                (retire + delay, self._seq, phase, commit, index, value),
            )
        self.cycle = retire
        self.instructions += 1
        scalars[self._pc] = (address + size) & pc_mask

    # ------------------------------------------------------------------
    # Monitor support (coarse: per commit wave, on the deopt path)
    # ------------------------------------------------------------------

    def _watched_storages(self) -> FrozenSet[str]:
        if self.monitors is None:
            return frozenset()
        return frozenset(self.monitors.watched_storages())

    def _monitor_seed(self, watched) -> Dict[str, object]:
        snapshot: Dict[str, object] = {}
        for name in watched:
            if name in self.arrays:
                snapshot[name] = list(self.arrays[name])
            elif name in self.scalars:
                snapshot[name] = self.scalars[name]
        return snapshot

    def _monitor_sync(self, snapshot: Dict[str, object]) -> None:
        notify = self.monitors.notify
        for name, old in snapshot.items():
            if name in self.arrays:
                current = self.arrays[name]
                for i, new in enumerate(current):
                    if old[i] != new:
                        notify(name, i, old[i], new)
                        old[i] = new
            else:
                new = self.scalars[name]
                if new != old:
                    notify(name, None, old, new)
                    snapshot[name] = new
