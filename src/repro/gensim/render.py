"""Rendering decoded instructions back to assembly text.

The off-line disassembler produces operand trees; this module renders them
through the syntax templates of the description (the inverse of the
assembler's parsing).  Used for trace records, listings, and the
interactive ``dis`` command.
"""

from __future__ import annotations

from typing import Dict

from ..errors import ReproError
from ..isdl import ast
from .disassembler import DecodedInstruction, DecodedOperation


def render_operand(desc: ast.Description, param: ast.Param, operand) -> str:
    """Render one operand (token value or NT tree) to assembly text."""
    ptype = desc.param_type(param)
    if isinstance(ptype, ast.TokenDef):
        if ptype.kind is ast.TokenKind.PREFIXED:
            return f"{ptype.prefix}{operand}"
        if ptype.kind is ast.TokenKind.ENUM:
            for symbol, value in ptype.symbols:
                if value == operand:
                    return symbol
            raise ReproError(
                f"no symbol of enum token {ptype.name} has value {operand}"
            )
        return str(operand)
    label, sub_operands = operand
    option = ptype.option(label)
    template = option.syntax or _default_option_syntax(option)
    return _fill(desc, template, option.params, sub_operands)


def render_operation(desc: ast.Description, decoded: DecodedOperation) -> str:
    """Render one decoded operation to assembly text."""
    op = desc.operation(decoded.field, decoded.op_name)
    template = op.syntax or ast.default_syntax(op.name, op.params)
    return _fill(desc, template, op.params, decoded.operands)


def render_instruction(desc: ast.Description,
                       decoded: DecodedInstruction) -> str:
    """Render a whole instruction; VLIW fields joined with ``|``."""
    parts = [render_operation(desc, dop) for dop in decoded.operations]
    return " | ".join(parts)


def _default_option_syntax(option: ast.NtOption) -> str:
    return ", ".join(f"%{p.name}" for p in option.params)


def _fill(desc, template: str, params, operands: Dict[str, object]) -> str:
    """Substitute ``%name`` placeholders (longest names first)."""
    text = template
    for param in sorted(params, key=lambda p: -len(p.name)):
        rendered = render_operand(desc, param, operands[param.name])
        text = text.replace(f"%{param.name}", rendered)
    return text
