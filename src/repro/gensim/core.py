"""The XSIM processing core (paper Fig. 2, part 6; §3.3.3).

Each operation and non-terminal option carries an RTL action and side-effect
block.  GENSIM translates those into routines; this module is the routine
library.  The book-keeping guarantees of the paper are implemented here:

* **read-before-write** — the cycle is split into an evaluation phase, in
  which every RTL statement reads the *old* state and computes its result
  into temporary storage (a pending-write list), and a write-back phase that
  commits the temporaries;
* **side effects after actions** — the evaluation phase is itself split into
  an action-evaluation and a side-effect-evaluation phase, so side-effect
  writes land after action writes within the same cycle;
* **latency** — a write with latency *L* is withheld from the state for
  ``L - 1`` further cycles (the scheduler owns the delay queue).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .. import fp
from ..encoding.bits import mask, sign_extend
from ..errors import SimulationError
from ..isdl import ast, rtl
from .state import State

# ---------------------------------------------------------------------------
# Intrinsic implementations
# ---------------------------------------------------------------------------


def _trunc_div(a: int, b: int) -> int:
    if b == 0:
        raise SimulationError("division by zero in RTL evaluation")
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _trunc_mod(a: int, b: int) -> int:
    return a - _trunc_div(a, b) * b


INTRINSIC_IMPLS: Dict[str, Callable[..., int]] = {
    "carry": lambda a, b, w: ((a & mask(w)) + (b & mask(w))) >> w & 1,
    "carryc": lambda a, b, c, w: ((a & mask(w)) + (b & mask(w)) + (c & 1))
    >> w
    & 1,
    "borrow": lambda a, b, w: 1 if (a & mask(w)) < (b & mask(w)) else 0,
    "overflow": lambda a, b, w: int(
        not -(1 << (w - 1))
        <= sign_extend(a, w) + sign_extend(b, w)
        < (1 << (w - 1))
    ),
    "sext": lambda x, w: sign_extend(x, w),
    "zext": lambda x, w: x & mask(w),
    "bit": lambda x, i: (x >> i) & 1,
    "slice": lambda x, hi, lo: (x >> lo) & mask(hi - lo + 1),
    "abs": lambda x: abs(x),
    "min": lambda a, b: min(a, b),
    "max": lambda a, b: max(a, b),
    "fadd": fp.fadd,
    "fsub": fp.fsub,
    "fmul": fp.fmul,
    "fdiv": fp.fdiv,
    "fneg": fp.fneg,
    "fabs": fp.fabs_,
    "fcmp": fp.fcmp,
    "itof": fp.itof,
    "ftoi": fp.ftoi,
}

_BINOPS: Dict[str, Callable[[int, int], int]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _trunc_div,
    "%": _trunc_mod,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "&&": lambda a, b: int(bool(a) and bool(b)),
    "||": lambda a, b: int(bool(a) or bool(b)),
}


# ---------------------------------------------------------------------------
# Pending writes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PendingWrite:
    """A write computed in the evaluation phase, not yet committed.

    ``delay`` counts cycles until commit: 0 = end of the current cycle
    (latency 1), 1 = end of the next cycle (latency 2), and so on.
    """

    storage: str
    index: Optional[int]
    hi: Optional[int]
    lo: Optional[int]
    value: int
    delay: int = 0


@dataclass
class ExecutionResult:
    """Everything one instruction execution produced."""

    action_writes: List[PendingWrite] = field(default_factory=list)
    side_effect_writes: List[PendingWrite] = field(default_factory=list)
    cycles: int = 1  # cycle cost of the instruction (max over its operations)


# ---------------------------------------------------------------------------
# Bound operands
# ---------------------------------------------------------------------------


class BoundNt:
    """A non-terminal operand bound for one execution.

    Holds the matched option, the sub-environment of its parameters, the
    value its action computed for ``$$`` (if evaluated), and the transparent
    write target (if the option is usable as a destination).
    """

    __slots__ = ("nt", "option", "env", "value", "evaluated")

    def __init__(self, nt: ast.NonTerminal, option: ast.NtOption, env):
        self.nt = nt
        self.option = option
        self.env = env
        self.value: Optional[int] = None
        self.evaluated = False


class ProcessingCore:
    """Executes decoded operations against a :class:`State`."""

    def __init__(self, desc: ast.Description):
        self.desc = desc

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def execute(
        self,
        state: State,
        selections: List[Tuple[ast.Operation, Dict[str, object]]],
    ) -> ExecutionResult:
        """Execute the operations of one instruction (one per field).

        *selections* holds ``(operation, operands)`` pairs; operands are the
        decoded-operand trees of :mod:`repro.encoding.signature`.
        """
        result = ExecutionResult(cycles=0)
        bound_list = []
        for op, operands in selections:
            env = self._bind(state, op.params, operands, result)
            bound_list.append((op, env))
            result.cycles = max(result.cycles, self._total_cycles(op, env))
        # Action-evaluation phase: every read sees the pre-cycle state
        # because writes only accumulate in the pending lists.
        for op, env in bound_list:
            delay = op.timing.latency - 1
            self._run_block(
                state, op.action, env, result.action_writes, delay, result
            )
        # Side-effect-evaluation phase (still the same cycle).
        for op, env in bound_list:
            delay = op.timing.latency - 1
            self._run_block(
                state, op.side_effect, env, result.side_effect_writes, delay,
                result,
            )
            for bound in env.values():
                if isinstance(bound, BoundNt) and bound.option.side_effect:
                    nt_delay = bound.option.timing.latency - 1
                    self._run_block(
                        state,
                        bound.option.side_effect,
                        bound.env,
                        result.side_effect_writes,
                        nt_delay,
                        result,
                    )
        if result.cycles <= 0:
            result.cycles = 1
        return result

    def _total_cycles(self, op: ast.Operation, env) -> int:
        """Operation cycle cost plus the costs of its bound NT options."""
        cycles = op.costs.cycle
        for bound in env.values():
            if isinstance(bound, BoundNt):
                cycles += bound.option.costs.cycle
        return max(cycles, 1)

    # ------------------------------------------------------------------
    # Operand binding
    # ------------------------------------------------------------------

    def _bind(self, state, params, operands, result) -> Dict[str, object]:
        env: Dict[str, object] = {}
        for param in params:
            ptype = self.desc.param_type(param)
            operand = operands[param.name]
            if isinstance(ptype, ast.TokenDef):
                env[param.name] = operand
            else:
                label, sub_operands = operand
                option = ptype.option(label)
                sub_env = self._bind(state, option.params, sub_operands, result)
                env[param.name] = BoundNt(ptype, option, sub_env)
        return env

    def _nt_value(self, state, bound: BoundNt, result) -> int:
        """Evaluate a non-terminal's action to obtain its ``$$`` value.

        The action runs at most once per instruction execution, so an NT
        with a state-changing action (e.g. auto-increment addressing)
        mutates state exactly once however often its value is referenced.
        Its writes land in the action-write list.
        """
        if bound.evaluated:
            return bound.value or 0
        bound.evaluated = True
        delay = bound.option.timing.latency - 1
        holder: Dict[str, int] = {}
        self._run_block(
            state,
            bound.option.action,
            bound.env,
            result.action_writes,
            delay,
            result,
            nt_value=holder,
        )
        bound.value = holder.get("$$", 0)
        return bound.value

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------

    def _run_block(
        self, state, stmts, env, sink: List[PendingWrite], delay: int,
        result: ExecutionResult,
        nt_value: Optional[Dict[str, int]] = None,
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, rtl.Assign):
                value = self._eval(state, stmt.expr, env, result, nt_value)
                self._assign(
                    state, stmt.dest, value, env, sink, delay, nt_value, result
                )
            elif isinstance(stmt, rtl.If):
                cond = self._eval(state, stmt.cond, env, result, nt_value)
                branch = stmt.then if cond else stmt.orelse
                self._run_block(
                    state, branch, env, sink, delay, result, nt_value
                )
            else:
                raise SimulationError(f"unknown RTL statement {stmt!r}")

    def _assign(
        self, state, dest, value, env, sink, delay, nt_value, result
    ) -> None:
        if isinstance(dest, rtl.NtLV):
            if nt_value is None:
                raise SimulationError("'$$' assigned outside a non-terminal")
            nt_value["$$"] = value
            return
        if isinstance(dest, rtl.ParamLV):
            bound = env[dest.name]
            if not isinstance(bound, BoundNt):
                raise SimulationError(
                    f"parameter {dest.name!r} is not a non-terminal"
                    " destination"
                )
            target = bound.option.storage_target()
            if target is None:
                raise SimulationError(
                    f"option {bound.option.label!r} of {bound.nt.name!r}"
                    " cannot be a destination"
                )
            index = None
            if target.index is not None:
                index = self._eval(state, target.index, bound.env, result, None)
            sink.append(
                PendingWrite(
                    target.storage, index, target.hi, target.lo, value, delay
                )
            )
            return
        if isinstance(dest, rtl.StorageLV):
            index = None
            if dest.index is not None:
                index = self._eval(state, dest.index, env, result, nt_value)
            sink.append(
                PendingWrite(dest.storage, index, dest.hi, dest.lo, value, delay)
            )
            return
        raise SimulationError(f"invalid assignment destination {dest!r}")

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------

    def _eval(self, state, expr, env, result, nt_value) -> int:
        if isinstance(expr, rtl.IntLit):
            return expr.value
        if isinstance(expr, rtl.ParamRef):
            bound = env[expr.name]
            if isinstance(bound, BoundNt):
                return self._nt_value(state, bound, result)
            return bound
        if isinstance(expr, rtl.NtValue):
            if nt_value is None or "$$" not in nt_value:
                raise SimulationError("'$$' read before it was assigned")
            return nt_value["$$"]
        if isinstance(expr, rtl.StorageRead):
            index = None
            if expr.index is not None:
                index = self._eval(state, expr.index, env, result, nt_value)
            return state.read(expr.storage, index, expr.hi, expr.lo)
        if isinstance(expr, rtl.BinOp):
            left = self._eval(state, expr.left, env, result, nt_value)
            if expr.op == "&&" and not left:
                return 0
            if expr.op == "||" and left:
                return 1
            right = self._eval(state, expr.right, env, result, nt_value)
            try:
                return _BINOPS[expr.op](left, right)
            except KeyError:
                raise SimulationError(
                    f"unknown operator {expr.op!r}"
                ) from None
        if isinstance(expr, rtl.UnOp):
            operand = self._eval(state, expr.operand, env, result, nt_value)
            if expr.op == "~":
                return ~operand
            if expr.op == "-":
                return -operand
            if expr.op == "!":
                return int(not operand)
            raise SimulationError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, rtl.Cond):
            cond = self._eval(state, expr.cond, env, result, nt_value)
            chosen = expr.then if cond else expr.other
            return self._eval(state, chosen, env, result, nt_value)
        if isinstance(expr, rtl.Call):
            impl = INTRINSIC_IMPLS.get(expr.func)
            if impl is None:
                raise SimulationError(f"unknown intrinsic {expr.func!r}")
            args = [
                self._eval(state, arg, env, result, nt_value)
                for arg in expr.args
            ]
            return impl(*args)
        raise SimulationError(f"unknown RTL expression {expr!r}")

