"""The generated disassembler (paper §3.3.2, Fig. 4).

The program to be simulated is disassembled *off-line at load time* to
determine which operations correspond to each input instruction.  The
algorithm is the paper's: for each field, match the constant part of every
operation signature against the instruction word (unique for a decodable
assembly function), then reverse the parameter encodings — recursing through
non-terminal return values (``disassemble_ntl``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..encoding.signature import Operand, Signature, SignatureTable
from ..errors import DisassemblyError
from ..isdl import ast


@dataclass(frozen=True)
class DecodedOperation:
    """One operation recovered from an instruction word."""

    field: str
    op_name: str
    operands: Dict[str, Operand]


@dataclass(frozen=True)
class DecodedInstruction:
    """A whole (possibly VLIW) instruction: one operation per field."""

    word: int
    operations: Tuple[DecodedOperation, ...]

    def operation_in(self, field_name: str) -> Optional[DecodedOperation]:
        for op in self.operations:
            if op.field == field_name:
                return op
        return None

    def selection(self) -> Dict[str, str]:
        """field → operation-name map (for constraint evaluation)."""
        return {op.field: op.op_name for op in self.operations}


class Disassembler:
    """The disassembly function derived from the bitfield assignments.

    Decoding is memoized by instruction word: real programs repeat words
    (loop bodies re-loaded across candidates, ``nop`` padding, common
    register moves), and :class:`DecodedInstruction` is immutable, so one
    decode per distinct word serves the whole session.  The LRU is
    per-instance — signatures depend on the description — and bounded by
    ``cache_size`` (0 disables memoization).
    """

    DEFAULT_CACHE_SIZE = 4096

    def __init__(self, desc: ast.Description,
                 table: Optional[SignatureTable] = None,
                 cache_size: int = DEFAULT_CACHE_SIZE):
        self.desc = desc
        self.table = table or SignatureTable(desc)
        self.cache_size = cache_size
        self.decode_hits = 0
        self.decode_misses = 0
        self._cache: "OrderedDict[int, DecodedInstruction]" = OrderedDict()

    # -- paper Fig. 4: disassemble(I) ---------------------------------------

    def disassemble(self, word: int) -> DecodedInstruction:
        """Decode one instruction word into per-field operations."""
        if self.cache_size:
            cached = self._cache.get(word)
            if cached is not None:
                self._cache.move_to_end(word)
                self.decode_hits += 1
                obs.add("disasm.decode_hits")
                return cached
        operations: List[DecodedOperation] = []
        for fld in self.desc.fields:
            operations.append(self._disassemble_field(word, fld))
        decoded = DecodedInstruction(word, tuple(operations))
        if self.cache_size:
            self.decode_misses += 1
            obs.add("disasm.decode_misses")
            self._cache[word] = decoded
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return decoded

    # -- paper Fig. 4: disassemble_field(s, f) ------------------------------

    def _disassemble_field(self, word: int, fld: ast.Field) -> DecodedOperation:
        for op in fld.operations:
            signature = self.table.operation(fld.name, op.name)
            if not signature.matches(word):
                continue
            operands = self._decode_params(word, op.params, signature)
            return DecodedOperation(fld.name, op.name, operands)
        raise DisassemblyError(
            f"ILLEGAL INSTRUCTION: word 0x{word:x} matches no operation in"
            f" field {fld.name!r}"
        )

    # -- paper Fig. 4: disassemble_ntl(s, n) --------------------------------

    def _disassemble_ntl(self, value: int, nt: ast.NonTerminal) -> Operand:
        for option in nt.options:
            signature = self.table.option(nt.name, option.label)
            if not signature.matches(value):
                continue
            operands = self._decode_params(value, option.params, signature)
            return (option.label, operands)
        raise DisassemblyError(
            f"ILLEGAL INSTRUCTION: value 0x{value:x} matches no option of"
            f" non-terminal {nt.name!r}"
        )

    def _decode_params(self, word: int, params, signature: Signature):
        operands: Dict[str, Operand] = {}
        for param in params:
            ptype = self.desc.param_type(param)
            raw = signature.extract(word, param.name)
            if isinstance(ptype, ast.TokenDef):
                operands[param.name] = ptype.decode_value(raw)
            else:
                operands[param.name] = self._disassemble_ntl(raw, ptype)
        return operands


# ---------------------------------------------------------------------------
# Decodability analysis
# ---------------------------------------------------------------------------


def find_ambiguities(desc: ast.Description,
                     table: Optional[SignatureTable] = None) -> List[str]:
    """Report operation pairs whose constant signatures do not conflict.

    The paper guarantees a unique constant match "for a decodable assembly
    function"; this utility verifies that property for a description.  Two
    operations of the same field are distinguishable iff some bit is constant
    in both signatures with opposite values.  (An operation whose signature
    constants are a superset of another's — e.g. a specialised encoding —
    is reported, because match order then decides.)
    """
    table = table or SignatureTable(desc)
    problems = []
    for fld in desc.fields:
        ops = fld.operations
        for i, op_a in enumerate(ops):
            sig_a = table.operation(fld.name, op_a.name)
            for op_b in ops[i + 1 :]:
                sig_b = table.operation(fld.name, op_b.name)
                common = sig_a.constant_mask & sig_b.constant_mask
                if (sig_a.constant_value & common) == (
                    sig_b.constant_value & common
                ):
                    problems.append(
                        f"{fld.name}.{op_a.name} and {fld.name}.{op_b.name}"
                        " have non-conflicting constant signatures"
                    )
    for nt in desc.nonterminals.values():
        for i, opt_a in enumerate(nt.options):
            sig_a = table.option(nt.name, opt_a.label)
            for opt_b in nt.options[i + 1 :]:
                sig_b = table.option(nt.name, opt_b.label)
                common = sig_a.constant_mask & sig_b.constant_mask
                if (sig_a.constant_value & common) == (
                    sig_b.constant_value & common
                ):
                    problems.append(
                        f"{nt.name}.{opt_a.label} and {nt.name}.{opt_b.label}"
                        " have non-conflicting constant signatures"
                    )
    return problems
