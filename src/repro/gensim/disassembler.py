"""The generated disassembler (paper §3.3.2, Fig. 4).

The program to be simulated is disassembled *off-line at load time* to
determine which operations correspond to each input instruction.  The
algorithm is the paper's: for each field, match the constant part of every
operation signature against the instruction word (unique for a decodable
assembly function), then reverse the parameter encodings — recursing through
non-terminal return values (``disassemble_ntl``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..encoding.signature import Operand, Signature, SignatureTable
from ..errors import AmbiguousEncodingError, DisassemblyError
from ..isdl import ast


@dataclass(frozen=True)
class DecodedOperation:
    """One operation recovered from an instruction word."""

    field: str
    op_name: str
    operands: Dict[str, Operand]


@dataclass(frozen=True)
class DecodedInstruction:
    """A whole (possibly VLIW) instruction: one operation per field."""

    word: int
    operations: Tuple[DecodedOperation, ...]

    def operation_in(self, field_name: str) -> Optional[DecodedOperation]:
        for op in self.operations:
            if op.field == field_name:
                return op
        return None

    def selection(self) -> Dict[str, str]:
        """field → operation-name map (for constraint evaluation)."""
        return {op.field: op.op_name for op in self.operations}


class Disassembler:
    """The disassembly function derived from the bitfield assignments.

    Decoding is memoized by instruction word: real programs repeat words
    (loop bodies re-loaded across candidates, ``nop`` padding, common
    register moves), and :class:`DecodedInstruction` is immutable, so one
    decode per distinct word serves the whole session.  The LRU is
    per-instance — signatures depend on the description — and bounded by
    ``cache_size`` (0 disables memoization).
    """

    DEFAULT_CACHE_SIZE = 4096

    def __init__(self, desc: ast.Description,
                 table: Optional[SignatureTable] = None,
                 cache_size: int = DEFAULT_CACHE_SIZE):
        self.desc = desc
        self.table = table or SignatureTable(desc)
        self.cache_size = cache_size
        self.decode_hits = 0
        self.decode_misses = 0
        self._cache: "OrderedDict[int, DecodedInstruction]" = OrderedDict()

    # -- paper Fig. 4: disassemble(I) ---------------------------------------

    def disassemble(self, word: int) -> DecodedInstruction:
        """Decode one instruction word into per-field operations."""
        if self.cache_size:
            cached = self._cache.get(word)
            if cached is not None:
                self._cache.move_to_end(word)
                self.decode_hits += 1
                obs.add("disasm.decode_hits")
                return cached
        operations: List[DecodedOperation] = []
        for fld in self.desc.fields:
            operations.append(self._disassemble_field(word, fld))
        decoded = DecodedInstruction(word, tuple(operations))
        if self.cache_size:
            self.decode_misses += 1
            obs.add("disasm.decode_misses")
            self._cache[word] = decoded
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return decoded

    # -- paper Fig. 4: disassemble_field(s, f) ------------------------------

    def _disassemble_field(self, word: int, fld: ast.Field) -> DecodedOperation:
        matches = [
            op for op in fld.operations
            if self.table.operation(fld.name, op.name).matches(word)
        ]
        if len(matches) > 1:
            names = sorted(f"{fld.name}.{op.name}" for op in matches)
            raise AmbiguousEncodingError(
                f"AMBIGUOUS INSTRUCTION: word 0x{word:x} matches"
                f" {len(names)} operations in field {fld.name!r}:"
                f" {', '.join(names)} (assembly function is not"
                " decodable — see Axiom 1)",
                matches=tuple(names),
            )
        if not matches:
            raise DisassemblyError(
                f"ILLEGAL INSTRUCTION: word 0x{word:x} matches no operation"
                f" in field {fld.name!r}"
            )
        op = matches[0]
        signature = self.table.operation(fld.name, op.name)
        operands = self._decode_params(word, op.params, signature)
        return DecodedOperation(fld.name, op.name, operands)

    # -- paper Fig. 4: disassemble_ntl(s, n) --------------------------------

    def _disassemble_ntl(self, value: int, nt: ast.NonTerminal) -> Operand:
        matches = [
            option for option in nt.options
            if self.table.option(nt.name, option.label).matches(value)
        ]
        if len(matches) > 1:
            names = sorted(f"{nt.name}.{option.label}" for option in matches)
            raise AmbiguousEncodingError(
                f"AMBIGUOUS INSTRUCTION: value 0x{value:x} matches"
                f" {len(names)} options of non-terminal {nt.name!r}:"
                f" {', '.join(names)}",
                matches=tuple(names),
            )
        if not matches:
            raise DisassemblyError(
                f"ILLEGAL INSTRUCTION: value 0x{value:x} matches no option"
                f" of non-terminal {nt.name!r}"
            )
        option = matches[0]
        signature = self.table.option(nt.name, option.label)
        operands = self._decode_params(value, option.params, signature)
        return (option.label, operands)

    def _decode_params(self, word: int, params, signature: Signature):
        operands: Dict[str, Operand] = {}
        for param in params:
            ptype = self.desc.param_type(param)
            raw = signature.extract(word, param.name)
            if isinstance(ptype, ast.TokenDef):
                operands[param.name] = ptype.decode_value(raw)
            else:
                operands[param.name] = self._disassemble_ntl(raw, ptype)
        return operands


# ---------------------------------------------------------------------------
# Decodability analysis
# ---------------------------------------------------------------------------


def find_ambiguities(desc: ast.Description,
                     table: Optional[SignatureTable] = None) -> List[str]:
    """Report operation pairs whose constant signatures do not conflict.

    The paper guarantees a unique constant match "for a decodable assembly
    function"; this utility verifies that property for a description.  Two
    operations of the same field are distinguishable iff some bit is constant
    in both signatures with opposite values.  (An operation whose signature
    constants are a superset of another's — e.g. a specialised encoding —
    is reported, because match order then decides.)

    The check itself lives in :mod:`repro.analyze` as the decode-ambiguity
    pass (``ISDL101``/``ISDL102``); this shim keeps the historical
    ``List[str]`` surface for the GENSIM generator and existing callers.
    """
    from ..analyze.passes import PassContext, pass_decode_ambiguity

    ctx = PassContext(desc, table=table)
    return [d.message for d in pass_decode_ambiguity(ctx)]
