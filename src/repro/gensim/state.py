"""Processor-state emulation for XSIM simulators (paper Fig. 2, part 4).

State generation in GENSIM "is a simple matter of allocating sufficient
memory for each storage element defined in the ISDL description" (paper
§3.3.1); all accesses are routed through the monitors code.  :class:`State`
does exactly that: one Python integer per scalar storage, a list of integers
per addressed storage, every read/write funnelled through a single pair of
methods that resolve aliases, mask to the declared width, count accesses for
the utilization statistics, and notify the monitor hooks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..encoding.bits import get_bits, mask, set_bits
from ..errors import StateError
from ..isdl import ast
from .monitors import MonitorSet


class State:
    """The architectural state of one simulated processor instance."""

    def __init__(self, desc: ast.Description):
        self.desc = desc
        self.monitors = MonitorSet()
        self._scalars: Dict[str, int] = {}
        self._arrays: Dict[str, List[int]] = {}
        self.read_counts: Dict[str, int] = {}
        self.write_counts: Dict[str, int] = {}
        for storage in desc.storages.values():
            self.read_counts[storage.name] = 0
            self.write_counts[storage.name] = 0
            if storage.addressed:
                self._arrays[storage.name] = [0] * storage.depth
            else:
                self._scalars[storage.name] = 0

    # ------------------------------------------------------------------
    # Alias resolution
    # ------------------------------------------------------------------

    def _resolve(
        self,
        name: str,
        index: Optional[int],
        hi: Optional[int],
        lo: Optional[int],
    ) -> Tuple[ast.Storage, Optional[int], Optional[int], Optional[int]]:
        """Resolve *name* (storage or alias) to a concrete location."""
        storage = self.desc.storages.get(name)
        if storage is not None:
            return storage, index, hi, lo
        alias = self.desc.aliases.get(name)
        if alias is None:
            raise StateError(f"unknown storage {name!r}")
        storage = self.desc.storages[alias.storage]
        if index is not None:
            raise StateError(f"alias {name!r} cannot be indexed")
        base_index = alias.index if storage.addressed else None
        # A single [n] suffix on a scalar-storage alias selects one bit.
        alias_hi, alias_lo = alias.hi, alias.lo
        if not storage.addressed and alias.index is not None:
            alias_hi = alias_lo = alias.index
        if alias_lo is None:
            alias_lo = alias_hi
        if alias_hi is None:
            return storage, base_index, hi, lo
        if hi is None:
            return storage, base_index, alias_hi, alias_lo
        # Caller range is relative to the alias slice.
        return storage, base_index, alias_lo + hi, alias_lo + lo

    # ------------------------------------------------------------------
    # Reads and writes
    # ------------------------------------------------------------------

    def read(
        self,
        name: str,
        index: Optional[int] = None,
        hi: Optional[int] = None,
        lo: Optional[int] = None,
    ) -> int:
        """Read a state location; returns an unsigned integer."""
        storage, index, hi, lo = self._resolve(name, index, hi, lo)
        raw = self._read_element(storage, index)
        self.read_counts[storage.name] += 1
        if hi is None:
            return raw
        if lo is None:
            lo = hi
        return get_bits(raw, hi, lo)

    def write(
        self,
        name: str,
        value: int,
        index: Optional[int] = None,
        hi: Optional[int] = None,
        lo: Optional[int] = None,
    ) -> None:
        """Write a state location (masked to the destination width)."""
        storage, index, hi, lo = self._resolve(name, index, hi, lo)
        old = self._read_element(storage, index)
        if hi is None:
            new = value & mask(storage.width)
        else:
            if lo is None:
                lo = hi
            new = set_bits(old, hi, lo, value)
        self._write_element(storage, index, new)
        self.write_counts[storage.name] += 1
        if new != old:
            self.monitors.notify(storage.name, index, old, new)

    def _read_element(self, storage: ast.Storage, index: Optional[int]) -> int:
        if storage.addressed:
            if index is None:
                raise StateError(
                    f"addressed storage {storage.name!r} read without index"
                )
            array = self._arrays[storage.name]
            if not 0 <= index < len(array):
                raise StateError(
                    f"index {index} out of range for {storage.name!r}"
                    f" (depth {len(array)})"
                )
            return array[index]
        if index is not None:
            raise StateError(
                f"scalar storage {storage.name!r} read with index"
            )
        return self._scalars[storage.name]

    def _write_element(
        self, storage: ast.Storage, index: Optional[int], value: int
    ) -> None:
        if storage.addressed:
            if index is None:
                raise StateError(
                    f"addressed storage {storage.name!r} written without"
                    " index"
                )
            array = self._arrays[storage.name]
            if not 0 <= index < len(array):
                raise StateError(
                    f"index {index} out of range for {storage.name!r}"
                    f" (depth {len(array)})"
                )
            array[index] = value
        else:
            if index is not None:
                raise StateError(
                    f"scalar storage {storage.name!r} written with index"
                )
            self._scalars[storage.name] = value

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    @property
    def pc_name(self) -> str:
        return self.desc.program_counter().name

    @property
    def pc(self) -> int:
        return self.read(self.pc_name)

    @pc.setter
    def pc(self, value: int) -> None:
        self.write(self.pc_name, value)

    def dump(self) -> Dict[str, object]:
        """A snapshot of the whole state (for checkpointing and tests)."""
        snapshot: Dict[str, object] = dict(self._scalars)
        for name, array in self._arrays.items():
            snapshot[name] = list(array)
        return snapshot

    def restore(self, snapshot: Dict[str, object]) -> None:
        """Restore a snapshot produced by :meth:`dump` (no notifications)."""
        for name, value in snapshot.items():
            if name in self._arrays:
                self._arrays[name][:] = value  # type: ignore[index]
            else:
                self._scalars[name] = value  # type: ignore[assignment]

    def reset_counters(self) -> None:
        for name in self.read_counts:
            self.read_counts[name] = 0
            self.write_counts[name] = 0
