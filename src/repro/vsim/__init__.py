"""Netlist-level simulation of the HGEN hardware model (Table 1 baseline)."""

from .checker import CosimResult, compare_state, cosimulate
from .simulator import NetlistSimulator

__all__ = ["CosimResult", "compare_state", "cosimulate", "NetlistSimulator"]
