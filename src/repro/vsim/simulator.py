"""Netlist-level simulation of the HGEN hardware model.

This is the reproduction's stand-in for simulating the synthesizable Verilog
with Cadence Verilog-XL (paper Table 1): every cell of the structural
netlist is evaluated every cycle, exactly the work an HDL simulator performs
on the generated model.  The paper itself notes the duality (footnote 8:
"the synthesizable Verilog model is itself a simulator").

The cycle semantics mirror the XSIM scheduler: all cells evaluate against
the pre-cycle state; the PC gets its default increment; then due writes
commit in (delay, phase, program-order) order, so action results land before
side effects and latency-*L* results stay invisible for ``L - 1`` further
cycles.  On hazard-free programs (no stall cycles) the hardware model is
therefore bit-identical to the ILS — which is what the co-simulation checker
asserts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..encoding.bits import get_bits, mask, set_bits
from ..errors import SimulationError
from ..gensim.core import INTRINSIC_IMPLS, _BINOPS
from ..isdl import ast
from ..hgen.netlist import (
    Concat,
    Const,
    Decode,
    Netlist,
    PriorityMux,
    RegRead,
    Sext,
    Unit,
)


class NetlistSimulator:
    """Cycle-based evaluation of a :class:`~repro.hgen.netlist.Netlist`."""

    def __init__(self, desc: ast.Description, netlist: Netlist):
        self.desc = desc
        self.netlist = netlist
        self.cycle = 0
        self._values: List[int] = [0] * len(netlist.nets)
        self._scalars: Dict[str, int] = {}
        self._arrays: Dict[str, List[int]] = {}
        for storage in desc.storages.values():
            if storage.addressed:
                self._arrays[storage.name] = [0] * storage.depth
            else:
                self._scalars[storage.name] = 0
        # (due_cycle, phase, seq, storage, index, hi, lo, value)
        self._pending: List[Tuple] = []
        self._halt_flag = desc.attributes.get("halt_flag")
        self._pc = desc.program_counter().name

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------

    def read(self, name: str, index: Optional[int] = None) -> int:
        if name in self._arrays:
            return self._arrays[name][index]
        return self._scalars[name]

    def write(self, name: str, value: int, index: Optional[int] = None) -> None:
        storage = self.desc.storages[name]
        value &= mask(storage.width)
        if name in self._arrays:
            self._arrays[name][index] = value
        else:
            self._scalars[name] = value

    def load_words(self, words: Sequence[int], origin: int = 0) -> None:
        im = self.desc.instruction_memory()
        for offset, word in enumerate(words):
            self.write(im.name, word, origin + offset)
        self.write(self._pc, origin)

    @property
    def halted(self) -> bool:
        if self._halt_flag is None:
            return False
        return self.read(self._halt_flag) != 0

    def dump(self) -> Dict[str, object]:
        snapshot: Dict[str, object] = dict(self._scalars)
        for name, array in self._arrays.items():
            snapshot[name] = list(array)
        return snapshot

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Simulate one clock cycle of the hardware model."""
        values = self._values
        for cell in self.netlist.cells:
            out = cell.out
            if out is None:
                continue
            values[out.uid] = self._eval_cell(cell, values)
        # Gather this cycle's enabled writes.
        next_cycle = self.cycle + 1
        for write in self.netlist.writes:
            if not values[write.enable.uid]:
                continue
            index = None
            if write.index is not None:
                index = values[write.index.uid]
            self._pending.append(
                (
                    next_cycle + write.delay,
                    write.phase,
                    write.seq,
                    write.storage,
                    index,
                    write.hi,
                    write.lo,
                    values[write.value.uid],
                )
            )
        # Default PC increment, overridden by committed branch writes.
        size = values[self.netlist.size_net.uid] if self.netlist.size_net else 1
        pc_storage = self.desc.storages[self._pc]
        self._scalars[self._pc] = (
            self._scalars[self._pc] + size
        ) & mask(pc_storage.width)
        # Commit everything due at the end of this cycle.
        due = [w for w in self._pending if w[0] <= next_cycle]
        if due:
            self._pending = [w for w in self._pending if w[0] > next_cycle]
            for entry in sorted(due):
                self._commit(entry)
        self.cycle = next_cycle

    def _commit(self, entry) -> None:
        _, _, _, name, index, hi, lo, value = entry
        storage = self.desc.storages[name]
        if storage.addressed:
            array = self._arrays[name]
            index = (index or 0) % len(array)
            old = array[index]
            if hi is None:
                new = value & mask(storage.width)
            else:
                new = set_bits(old, hi, lo if lo is not None else hi, value)
            array[index] = new
        else:
            old = self._scalars[name]
            if hi is None:
                new = value & mask(storage.width)
            else:
                new = set_bits(old, hi, lo if lo is not None else hi, value)
            self._scalars[name] = new

    def run(self, max_cycles: int = 1_000_000) -> int:
        """Run until the halt flag rises; returns the cycle count."""
        while not self.halted:
            if self.cycle >= max_cycles:
                raise SimulationError(
                    f"hardware model did not halt within {max_cycles} cycles"
                )
            self.step()
        return self.cycle

    # ------------------------------------------------------------------
    # Cell evaluation
    # ------------------------------------------------------------------

    def _eval_cell(self, cell, values) -> int:
        if isinstance(cell, Const):
            return cell.value
        if isinstance(cell, RegRead):
            return self._eval_read(cell, values)
        if isinstance(cell, Unit):
            return self._eval_unit(cell, values)
        if isinstance(cell, Decode):
            word = values[cell.word.uid]
            for bit, required in cell.literals:
                if ((word >> bit) & 1) != required:
                    return 0
            if cell.base is not None and not values[cell.base.uid]:
                return 0
            return 1
        if isinstance(cell, Concat):
            out = 0
            for src, src_hi, src_lo, dst_lo in cell.parts:
                out |= get_bits(values[src.uid], src_hi, src_lo) << dst_lo
            return out
        if isinstance(cell, Sext):
            value = values[cell.src.uid] & mask(cell.from_width)
            if value & (1 << (cell.from_width - 1)):
                value -= 1 << cell.from_width
            return value
        if isinstance(cell, PriorityMux):
            for enable, value in cell.cases:
                if values[enable.uid]:
                    return values[value.uid]
            if cell.default is not None:
                return values[cell.default.uid]
            return 0
        raise SimulationError(f"unknown cell {cell!r}")

    def _eval_read(self, cell: RegRead, values) -> int:
        if cell.index is None:
            raw = self._scalars[cell.storage]
        else:
            array = self._arrays[cell.storage]
            raw = array[values[cell.index.uid] % len(array)]
        if cell.hi is not None:
            return get_bits(raw, cell.hi, cell.lo if cell.lo is not None else cell.hi)
        return raw

    def _eval_unit(self, cell: Unit, values) -> int:
        if cell.enable is not None and not values[cell.enable.uid]:
            return 0
        args = [values[net.uid] for net in cell.args]
        op = cell.op
        if op in _BINOPS:
            return _BINOPS[op](args[0], args[1])
        if op == "neg":
            return -args[0]
        if op == "not":
            return ~args[0]
        if op == "lnot":
            return int(not args[0])
        if op == "mux":
            return args[1] if args[0] else args[2]
        if op == "bus":
            return args[0]
        impl = INTRINSIC_IMPLS.get(op)
        if impl is None:
            raise SimulationError(f"unknown unit operation {op!r}")
        return impl(*args)
