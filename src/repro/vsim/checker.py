"""ILS ↔ hardware-model co-simulation (paper §3.1, §6.1).

XSIM simulators are "cycle-accurate and bit-true by construction"; the
hardware model implements the same description.  The checker runs a program
on both and asserts that every architectural storage element ends up
bit-identical.  It refuses programs with stall cycles: the ILS models stalls
statically while the single-issue hardware model has no interlock logic, so
only hazard-free programs are guaranteed to agree (all our co-simulation
workloads are).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import SimulationError
from ..gensim.xsim import XSim
from ..hgen.netlist import Netlist
from ..isdl import ast
from .simulator import NetlistSimulator


@dataclass
class CosimResult:
    """Outcome of one co-simulation run."""

    ils_cycles: int
    hw_cycles: int
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


def cosimulate(
    desc: ast.Description,
    netlist: Netlist,
    words: Sequence[int],
    origin: int = 0,
    max_steps: int = 200_000,
    preload: Optional[Dict[str, Dict[int, int]]] = None,
    xsim: Optional[XSim] = None,
) -> CosimResult:
    """Run *words* on both models and compare final architectural state.

    *preload* optionally initialises addressed storages (e.g. data memory)
    identically in both models: ``{"DM": {0: 123, 1: 456}}``.
    """
    ils = xsim or XSim(desc)
    hw = NetlistSimulator(desc, netlist)
    if preload:
        for storage, contents in preload.items():
            for index, value in contents.items():
                ils.write(storage, value, index)
                hw.write(storage, value, index)
    program = ils.load_words(words, origin)
    if any(program.stalls):
        raise SimulationError(
            "co-simulation requires a hazard-free program (the hardware"
            " model has no interlocks); this program has stall cycles"
        )
    hw.load_words(words, origin)
    ils.run_to_completion(max_steps)
    hw.run(max_steps)
    mismatches = compare_state(desc, ils, hw)
    return CosimResult(ils.cycle, hw.cycle, mismatches)


def compare_state(desc: ast.Description, ils: XSim,
                  hw: NetlistSimulator) -> List[str]:
    """Bit-compare every storage element of the two models."""
    mismatches = []
    for storage in desc.storages.values():
        if storage.addressed:
            for index in range(storage.depth):
                a = ils.read(storage.name, index)
                b = hw.read(storage.name, index)
                if a != b:
                    mismatches.append(
                        f"{storage.name}[{index}]: ils=0x{a:x} hw=0x{b:x}"
                    )
        else:
            a = ils.read(storage.name)
            b = hw.read(storage.name)
            if a != b:
                mismatches.append(
                    f"{storage.name}: ils=0x{a:x} hw=0x{b:x}"
                )
    return mismatches
