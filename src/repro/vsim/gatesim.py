"""Gate-level simulation of the synthesized hardware model.

The paper's Table 1 baseline simulates the *synthesizable Verilog* with
Cadence Verilog-XL — after synthesis that model is a sea of gates, and the
simulator pays for every one of them on every cycle.  This module
bit-blasts the HGEN netlist into two-state gate primitives (the same
decomposition the area model charges for: ripple/carry adders, XNOR-tree
comparators, barrel shifters, per-bit muxes, decode AND-trees) and executes
the flattened gate list each cycle.  Memories and floating-point units stay
functional macro models, exactly as vendor RAM/FPU models do in a gate
netlist.

The gate model is bit-true against the word-level model (and hence against
XSIM) for the RTL subset the example architectures use; unsupported
operators (division, signed comparison of sign-extended values, wide
multiplies) conservatively fall back to functional macro evaluation and are
reported in :attr:`GateNetlist.macro_cells`.

Widths: the word-level evaluator works on unbounded integers; gates work at
each net's declared width in two's complement.  Sign-extended nets carry a
``signed`` mark so widening extends the sign bit — arithmetic then matches
the unbounded model wherever results are eventually masked to a storage
width (which is everywhere, by construction of the write path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..encoding.bits import mask
from ..errors import SimulationError
from ..gensim.core import INTRINSIC_IMPLS, _BINOPS
from ..isdl import ast
from ..hgen.netlist import (
    Concat,
    Const,
    Decode,
    Net,
    Netlist,
    PriorityMux,
    RegRead,
    Sext,
    Unit,
)
from .simulator import NetlistSimulator

# gate opcodes (two-input unless noted)
G_AND, G_OR, G_XOR, G_NOT, G_MUX, G_SET = range(6)


@dataclass
class _Sig:
    """Bit signals of one net: indices into the simulator's bit array."""

    bits: Tuple[int, ...]
    signed: bool = False


class GateNetlist:
    """The flattened gate program for one processor netlist."""

    def __init__(self, desc: ast.Description, netlist: Netlist):
        self.desc = desc
        self.netlist = netlist
        #: flat gate list: (opcode, out, a, b) — b unused for NOT/SET
        self.gates: List[Tuple[int, int, int, int]] = []
        #: functional steps: (kind, cell, inputs, out_bits)
        self.functional: List[Tuple] = []
        #: gate-list position each functional step must run after
        self.functional_positions: List[int] = []
        self.macro_cells: List[str] = []
        self._signals: Dict[int, _Sig] = {}
        self._bit_count = 2  # bit 0 = constant 0, bit 1 = constant 1
        self._build()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _new_bits(self, count: int) -> List[int]:
        start = self._bit_count
        self._bit_count += count
        return list(range(start, start + count))

    def _sig_of(self, net: Net) -> _Sig:
        sig = self._signals.get(net.uid)
        if sig is None:
            raise SimulationError(
                f"net {net.name!r} used before it was driven"
            )
        return sig

    def _define(self, net: Net, sig: _Sig) -> None:
        self._signals[net.uid] = sig

    def _bit_at(self, sig: _Sig, position: int) -> int:
        """Bit *position* of a signal, extending per signedness."""
        if position < len(sig.bits):
            return sig.bits[position]
        if sig.signed and sig.bits:
            return sig.bits[-1]
        return 0  # constant-zero bit

    def _gate(self, opcode: int, a: int, b: int = 0) -> int:
        out = self._new_bits(1)[0]
        self.gates.append((opcode, out, a, b))
        return out

    def _mux_bit(self, sel: int, if1: int, if0: int) -> int:
        """out = sel ? if1 : if0 built from AND/OR/NOT gates."""
        not_sel = self._gate(G_NOT, sel)
        a = self._gate(G_AND, sel, if1)
        b = self._gate(G_AND, not_sel, if0)
        return self._gate(G_OR, a, b)

    def _reduce(self, opcode: int, bits: Sequence[int], empty: int) -> int:
        if not bits:
            return empty
        acc = bits[0]
        for bit in bits[1:]:
            acc = self._gate(opcode, acc, bit)
        return acc

    # ------------------------------------------------------------------
    # Cell expansion
    # ------------------------------------------------------------------

    def _build(self) -> None:
        for cell in self.netlist.cells:
            if cell.out is None:
                continue
            handler = getattr(self, f"_blast_{type(cell).__name__.lower()}")
            handler(cell)

    def _blast_const(self, cell: Const) -> None:
        width = cell.out.width
        bits = tuple(
            1 if (cell.value >> i) & 1 else 0 for i in range(width)
        )
        self._define(cell.out, _Sig(bits))

    def _blast_concat(self, cell: Concat) -> None:
        width = cell.out.width
        bits = [0] * width
        for src, hi, lo, dst_lo in cell.parts:
            sig = self._sig_of(src)
            for k in range(hi - lo + 1):
                if dst_lo + k < width:
                    bits[dst_lo + k] = self._bit_at(sig, lo + k)
        self._define(cell.out, _Sig(tuple(bits)))

    def _blast_sext(self, cell: Sext) -> None:
        sig = self._sig_of(cell.src)
        bits = tuple(
            self._bit_at(sig, i) for i in range(cell.from_width)
        )
        self._define(cell.out, _Sig(bits, signed=True))

    def _blast_decode(self, cell: Decode) -> None:
        word = self._sig_of(cell.word)
        literals = []
        for bit, value in cell.literals:
            signal = self._bit_at(word, bit)
            if value == 0:
                signal = self._gate(G_NOT, signal)
            literals.append(signal)
        if cell.base is not None:
            literals.append(self._bit_at(self._sig_of(cell.base), 0))
        out = self._reduce(G_AND, literals, empty=1)
        self._define(cell.out, _Sig((out,)))

    def _blast_prioritymux(self, cell: PriorityMux) -> None:
        width = cell.out.width
        if cell.default is not None:
            current = [
                self._bit_at(self._sig_of(cell.default), i)
                for i in range(width)
            ]
        else:
            current = [0] * width
        for enable, value in reversed(cell.cases):
            sel = self._bit_at(self._sig_of(enable), 0)
            value_sig = self._sig_of(value)
            current = [
                self._mux_bit(sel, self._bit_at(value_sig, i), current[i])
                for i in range(width)
            ]
        self._define(cell.out, _Sig(tuple(current)))

    def _blast_regread(self, cell: RegRead) -> None:
        # Memories/register files are functional macro models.
        out_bits = self._new_bits(cell.out.width)
        self._define(cell.out, _Sig(tuple(out_bits)))
        index_sig = (
            self._sig_of(cell.index) if cell.index is not None else None
        )
        self.functional_positions.append(len(self.gates))
        self.functional.append(("read", cell, index_sig, out_bits))

    # -- units ---------------------------------------------------------

    def _blast_unit(self, cell: Unit) -> None:
        op = cell.op
        args = [self._sig_of(net) for net in cell.args]
        width = max(cell.out.width, 1)
        builder = _GATE_BUILDERS.get(op)
        if builder is None or self._needs_fallback(op, args):
            self._functional_unit(cell, args)
            return
        bits, signed = builder(self, args, width)
        self._define(cell.out, _Sig(tuple(bits), signed))

    def _needs_fallback(self, op: str, args: List[_Sig]) -> bool:
        # Signed magnitude comparison of sign-extended inputs needs a
        # signed comparator; fall back to the functional model.
        if op in ("<", "<=", ">", ">=", "min", "max", "abs"):
            return any(sig.signed for sig in args)
        return False

    def _functional_unit(self, cell: Unit, args: List[_Sig]) -> None:
        self.macro_cells.append(f"{cell.unit_class}:{cell.op}")
        out_bits = self._new_bits(cell.out.width)
        self._define(
            cell.out,
            _Sig(tuple(out_bits), signed=any(a.signed for a in args)),
        )
        self.functional_positions.append(len(self.gates))
        self.functional.append(("unit", cell, args, out_bits))

    # -- gate builders for each operator --------------------------------

    def _adder_bits(self, a: _Sig, b: _Sig, width: int,
                    carry_in: int = 0, invert_b: bool = False):
        """Ripple-carry adder; returns (sum bits, carry-out)."""
        carry = carry_in
        out = []
        for i in range(width):
            bit_a = self._bit_at(a, i)
            bit_b = self._bit_at(b, i)
            if invert_b:
                bit_b = self._gate(G_NOT, bit_b)
            ab = self._gate(G_XOR, bit_a, bit_b)
            out.append(self._gate(G_XOR, ab, carry))
            gen = self._gate(G_AND, bit_a, bit_b)
            prop = self._gate(G_AND, ab, carry)
            carry = self._gate(G_OR, gen, prop)
        return out, carry

    def _equal_bit(self, a: _Sig, b: _Sig, width: int) -> int:
        xors = [
            self._gate(
                G_XOR, self._bit_at(a, i), self._bit_at(b, i)
            )
            for i in range(width)
        ]
        any_diff = self._reduce(G_OR, xors, empty=0)
        return self._gate(G_NOT, any_diff)

    def _shift_bits(self, a: _Sig, amount: _Sig, width: int,
                    left: bool) -> List[int]:
        """Barrel shifter; amounts >= width produce zero."""
        import math

        stages = max(int(math.ceil(math.log2(max(width, 2)))), 1)
        current = [self._bit_at(a, i) for i in range(width)]
        for stage in range(stages):
            shift = 1 << stage
            sel = self._bit_at(amount, stage)
            moved = []
            for i in range(width):
                src = i - shift if left else i + shift
                in_range = 0 <= src < width
                shifted_bit = current[src] if in_range else 0
                moved.append(self._mux_bit(sel, shifted_bit, current[i]))
            current = moved
        # any amount bit beyond the stages zeroes the result
        high = [
            self._bit_at(amount, i)
            for i in range(stages, len(amount.bits))
        ]
        if high:
            overflow = self._reduce(G_OR, high, empty=0)
            keep = self._gate(G_NOT, overflow)
            current = [self._gate(G_AND, bit, keep) for bit in current]
        return current


def _build_add(gn: GateNetlist, args, width):
    bits, _ = gn._adder_bits(args[0], args[1], width)
    return bits, False


def _build_sub(gn: GateNetlist, args, width):
    bits, _ = gn._adder_bits(args[0], args[1], width, carry_in=1,
                             invert_b=True)
    return bits, False


def _build_neg(gn: GateNetlist, args, width):
    zero = _Sig(())
    bits, _ = gn._adder_bits(zero, args[0], width, carry_in=1,
                             invert_b=True)
    return bits, False


def _build_bitwise(opcode):
    def build(gn: GateNetlist, args, width):
        return [
            gn._gate(
                opcode, gn._bit_at(args[0], i), gn._bit_at(args[1], i)
            )
            for i in range(width)
        ], False

    return build


def _build_not(gn: GateNetlist, args, width):
    return [
        gn._gate(G_NOT, gn._bit_at(args[0], i)) for i in range(width)
    ], False


def _build_eq(gn: GateNetlist, args, width):
    span = max(len(args[0].bits), len(args[1].bits), 1)
    return [gn._equal_bit(args[0], args[1], span)], False


def _build_ne(gn: GateNetlist, args, width):
    span = max(len(args[0].bits), len(args[1].bits), 1)
    return [gn._gate(G_NOT, gn._equal_bit(args[0], args[1], span))], False


def _build_ult(gn: GateNetlist, args, width):
    span = max(len(args[0].bits), len(args[1].bits), 1)
    _, carry = gn._adder_bits(args[0], args[1], span, carry_in=1,
                              invert_b=True)
    return [gn._gate(G_NOT, carry)], False  # borrow = !carry


def _build_ule(gn: GateNetlist, args, width):
    lt = _build_ult(gn, args, width)[0][0]
    eq = _build_eq(gn, args, width)[0][0]
    return [gn._gate(G_OR, lt, eq)], False


def _build_ugt(gn: GateNetlist, args, width):
    le = _build_ule(gn, args, width)[0][0]
    return [gn._gate(G_NOT, le)], False


def _build_uge(gn: GateNetlist, args, width):
    lt = _build_ult(gn, args, width)[0][0]
    return [gn._gate(G_NOT, lt)], False


def _build_shl(gn: GateNetlist, args, width):
    return gn._shift_bits(args[0], args[1], width, left=True), False


def _build_shr(gn: GateNetlist, args, width):
    return gn._shift_bits(args[0], args[1], width, left=False), False


def _build_logic_and(gn: GateNetlist, args, width):
    a = gn._reduce(G_OR, args[0].bits, empty=0)
    b = gn._reduce(G_OR, args[1].bits, empty=0)
    return [gn._gate(G_AND, a, b)], False


def _build_logic_or(gn: GateNetlist, args, width):
    a = gn._reduce(G_OR, args[0].bits, empty=0)
    b = gn._reduce(G_OR, args[1].bits, empty=0)
    return [gn._gate(G_OR, a, b)], False


def _build_lnot(gn: GateNetlist, args, width):
    a = gn._reduce(G_OR, args[0].bits, empty=0)
    return [gn._gate(G_NOT, a)], False


def _build_mux(gn: GateNetlist, args, width):
    sel = gn._reduce(G_OR, args[0].bits, empty=0)
    return [
        gn._mux_bit(
            sel, gn._bit_at(args[1], i), gn._bit_at(args[2], i)
        )
        for i in range(width)
    ], args[1].signed or args[2].signed


def _build_bus(gn: GateNetlist, args, width):
    return [gn._bit_at(args[0], i) for i in range(width)], args[0].signed


# carry/carryc/borrow/overflow intrinsics take a constant width argument;
# they occur once per flag-setting operation and are evaluated as
# functional macro cells (the adder they imply is already charged by the
# area model through their unit class).

_GATE_BUILDERS = {
    "+": _build_add,
    "-": _build_sub,
    "neg": _build_neg,
    "&": _build_bitwise(G_AND),
    "|": _build_bitwise(G_OR),
    "^": _build_bitwise(G_XOR),
    "not": _build_not,
    "==": _build_eq,
    "!=": _build_ne,
    "<": _build_ult,
    "<=": _build_ule,
    ">": _build_ugt,
    ">=": _build_uge,
    "<<": _build_shl,
    ">>": _build_shr,
    "&&": _build_logic_and,
    "||": _build_logic_or,
    "lnot": _build_lnot,
    "mux": _build_mux,
    "bus": _build_bus,
}


class GateLevelSimulator(NetlistSimulator):
    """Cycle-based two-state simulation of the bit-blasted netlist.

    Inherits the storage model, write-back queue and PC sequencing from the
    word-level :class:`NetlistSimulator`; only combinational evaluation is
    replaced by the flat gate program.  Functional steps (memory reads,
    macro cells) assemble their operands from bit signals and scatter their
    results back.
    """

    def __init__(self, desc: ast.Description, netlist: Netlist):
        super().__init__(desc, netlist)
        self.gate_netlist = GateNetlist(desc, netlist)
        self._bits = [0, 1] + [0] * (self.gate_netlist._bit_count - 2)
        # Evaluation schedule: gates run in creation order, interleaved
        # with the functional steps at the gate positions they were
        # recorded at (cells are built in topological order, so every
        # signal a step consumes is produced by an earlier span or step).
        spans = []
        cursor = 0
        for position, step in zip(
            self.gate_netlist.functional_positions,
            self.gate_netlist.functional,
        ):
            spans.append((cursor, position, step))
            cursor = position
        spans.append((cursor, len(self.gate_netlist.gates), None))
        self._spans = spans

    @property
    def gate_count(self) -> int:
        return len(self.gate_netlist.gates)

    def step(self) -> None:  # hot loop deliberately kept flat
        bits = self._bits
        gates = self.gate_netlist.gates
        for start, end, step_entry in self._spans:
            self._eval_gates(gates, bits, start, end)
            if step_entry is not None:
                self._eval_functional(step_entry, bits)
        # writes, PC update, commits: reuse the word-level machinery by
        # assembling the needed net values.
        self._commit_cycle_from_bits(bits)

    def _eval_gates(self, gates, bits, start, end) -> None:
        for opcode, out, a, b in gates[start:end]:
            if opcode == G_AND:
                bits[out] = bits[a] & bits[b]
            elif opcode == G_OR:
                bits[out] = bits[a] | bits[b]
            elif opcode == G_XOR:
                bits[out] = bits[a] ^ bits[b]
            else:  # G_NOT
                bits[out] = 1 - bits[a]

    def _eval_functional(self, entry, bits) -> None:
        kind = entry[0]
        if kind == "read":
            _, cell, index_sig, out_bits = entry
            if index_sig is None:
                raw = self._read_storage(cell)
            else:
                index = self._assemble(index_sig, bits)
                raw = self._read_indexed(cell, index)
            for i, bit_index in enumerate(out_bits):
                bits[bit_index] = (raw >> i) & 1
        else:  # macro unit
            _, cell, args, out_bits = entry
            values = [self._assemble(sig, bits) for sig in args]
            result = self._eval_unit_value(cell, values)
            for i, bit_index in enumerate(out_bits):
                bits[bit_index] = (result >> i) & 1

    def _assemble(self, sig: _Sig, bits) -> int:
        value = 0
        for i, bit_index in enumerate(sig.bits):
            if bits[bit_index]:
                value |= 1 << i
        if sig.signed and sig.bits and bits[sig.bits[-1]]:
            value -= 1 << len(sig.bits)
        return value

    def _read_storage(self, cell: RegRead) -> int:
        raw = self._scalars[cell.storage]
        return self._slice_read(cell, raw)

    def _read_indexed(self, cell: RegRead, index: int) -> int:
        array = self._arrays[cell.storage]
        raw = array[index % len(array)]
        return self._slice_read(cell, raw)

    @staticmethod
    def _slice_read(cell: RegRead, raw: int) -> int:
        if cell.hi is not None:
            lo = cell.lo if cell.lo is not None else cell.hi
            return (raw >> lo) & mask(cell.hi - lo + 1)
        return raw

    def _eval_unit_value(self, cell: Unit, values) -> int:
        op = cell.op
        if op in _BINOPS:
            return _BINOPS[op](values[0], values[1])
        if op == "neg":
            return -values[0]
        if op == "not":
            return ~values[0]
        if op == "lnot":
            return int(not values[0])
        if op == "mux":
            return values[1] if values[0] else values[2]
        if op == "bus":
            return values[0]
        impl = INTRINSIC_IMPLS.get(op)
        if impl is None:
            raise SimulationError(f"unknown unit operation {op!r}")
        return impl(*values)

    def _commit_cycle_from_bits(self, bits) -> None:
        """Write-back using values assembled from the gate signals."""
        gn = self.gate_netlist
        next_cycle = self.cycle + 1
        for write in self.netlist.writes:
            enable_sig = gn._signals[write.enable.uid]
            if not self._assemble(enable_sig, bits):
                continue
            index = None
            if write.index is not None:
                index = self._assemble(
                    gn._signals[write.index.uid], bits
                )
            value = self._assemble(gn._signals[write.value.uid], bits)
            self._pending.append(
                (
                    next_cycle + write.delay,
                    write.phase,
                    write.seq,
                    write.storage,
                    index,
                    write.hi,
                    write.lo,
                    value,
                )
            )
        size = 1
        if self.netlist.size_net is not None:
            size = self._assemble(
                gn._signals[self.netlist.size_net.uid], bits
            )
        pc_storage = self.desc.storages[self._pc]
        self._scalars[self._pc] = (
            self._scalars[self._pc] + size
        ) & mask(pc_storage.width)
        due = [w for w in self._pending if w[0] <= next_cycle]
        if due:
            self._pending = [w for w in self._pending if w[0] > next_cycle]
            for entry in sorted(due):
                self._commit(entry)
        self.cycle = next_cycle
