"""Search-strategy comparison under a fixed evaluation budget.

Every registered strategy explores the same design point (SPAM2 under
the integer workloads) with the same round and measurement budget;
measured: the best scalar cost each finds, the size of the non-dominated
cost/cycle-time/power/area frontier each uncovers, and the wall-clock
per run — greedy (the paper's Figure-1 loop) is the baseline.  The
acceptance bar from the strategy-API redesign is asserted here and
recorded in ``BENCH_strategies.json``: the Pareto search's frontier must
contain a point no worse in cost than greedy's best, and must uncover a
strictly larger frontier.
"""

import time

from conftest import record, record_json

from repro.arch import description_for
from repro.codegen import Cond, KernelBuilder, Opcode
from repro.explore import CostWeights, Explorer, strategies
from repro.explore.pareto import objectives

ARCH = "spam2"
MAX_ITERATIONS = 4
MAX_EVALUATIONS = 64
SEED = 0
WEIGHTS = CostWeights(1.0, 0.5, 0.3)
TABLE = "Exploration strategies — same budget, same design point"


def _kernels():
    K = KernelBuilder("sum")
    cnt = K.li(10)
    acc = K.li(0)
    K.label("loop")
    K.binary_into(acc, Opcode.ADD, acc, cnt)
    K.binary_into(cnt, Opcode.SUB, cnt, 1)
    K.cbr(Cond.NE, cnt, 0, "loop")
    K.store(K.li(0), acc)
    return [K.build()]


def test_strategy_shootout():
    kernels = _kernels()
    results = {}
    for name in strategies.available():
        explorer = Explorer(kernels, WEIGHTS, parallel="serial")
        start = time.perf_counter()
        log = explorer.explore(
            description_for(ARCH),
            max_iterations=MAX_ITERATIONS,
            strategy=name,
            seed=SEED,
            max_evaluations=MAX_EVALUATIONS,
        )
        seconds = time.perf_counter() - start
        frontier = log.frontier()
        results[name] = {
            "best_cost": log.best.cost(WEIGHTS),
            "best_derived_by": log.best.derived_by,
            "improvement": log.improvement,
            "iterations": log.iterations,
            "evaluations": log.evaluations,
            "cache_hits": log.cache_hits,
            "trajectories": len(log.trajectories),
            "frontier_size": len(frontier),
            "frontier": [
                {
                    "derived_by": candidate.derived_by,
                    "objectives": list(
                        objectives(candidate.evaluation, WEIGHTS)
                    ),
                }
                for candidate in frontier
            ],
            "seconds": seconds,
        }

    greedy = results["greedy"]
    for name, row in results.items():
        versus = row["best_cost"] / greedy["best_cost"]
        record(
            TABLE,
            f"- `{name}`: best cost **{row['best_cost']:,.1f}**"
            f" ({versus:.3f}x of greedy),"
            f" frontier {row['frontier_size']} point(s),"
            f" {row['evaluations']} evaluation(s)"
            f" over {row['iterations']} round(s)"
            f" in {row['seconds']:.1f} s",
        )

    # The redesign's acceptance bar, measured where CI can diff it:
    pareto = results["pareto"]
    assert pareto["best_cost"] <= greedy["best_cost"], (
        "the Pareto frontier must contain a point no worse in cost"
        " than greedy's best under the same budget"
    )
    assert pareto["frontier_size"] > greedy["frontier_size"], (
        "the multi-objective search must uncover a larger"
        " non-dominated frontier than the single-trajectory baseline"
    )
    for name, row in results.items():
        assert row["improvement"] >= 1.0, f"{name} made things worse"
        assert row["evaluations"] <= MAX_EVALUATIONS

    record_json("strategies", {
        "config": {
            "arch": ARCH,
            "max_iterations": MAX_ITERATIONS,
            "max_evaluations": MAX_EVALUATIONS,
            "seed": SEED,
            "weights": {"runtime": WEIGHTS.runtime,
                        "area": WEIGHTS.area,
                        "power": WEIGHTS.power},
            "kernels": [k.name for k in _kernels()],
        },
        "baseline": "greedy",
        "strategies": results,
        "pareto_vs_greedy_cost": pareto["best_cost"] / greedy["best_cost"],
        "pareto_frontier_size": pareto["frontier_size"],
    })
