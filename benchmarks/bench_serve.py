"""Evaluation-service throughput: coalescing versus a no-dedup baseline.

A duplicate-heavy burst — 32 jobs over only 4 unique candidates, the
shape of many exploration clients racing over a shared frontier — is
driven over HTTP twice: once against a default service (in-flight
coalescing + shared evaluation memo) and once against a baseline with
both forms of dedup off, so every duplicate pays a full measurement.

Each client fires its submissions first and polls afterwards, the way a
batch driver does, so duplicates really are in flight together.

Measured: jobs/s throughput, client-observed p50/p95 job latency, the
coalescing hit rate, and — via the service's own counters — that the
coalesced run performs *exactly one* toolchain evaluation per unique
candidate.  ``REPRO_BENCH_SMOKE=1`` shrinks the workload for a fast
low-confidence run (CI smoke mode).
"""

import os
import threading
import time

from conftest import record, record_json

from repro.serve import (
    EvaluationService,
    ServeClient,
    ServiceConfig,
    serve_in_thread,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: 4 unique candidates ...
CANDIDATES = ("spam2", "spam", "risc16", "acc8")
#: ... duplicated across 8 clients = a 32-job burst
CLIENTS = 8
#: sized so the simulation re-run dominates the per-job cost — that is
#: exactly the work dedup saves
WORKLOADS = ["sum:200"] if SMOKE else ["sum:200", "blockmove:64"]
MAX_STEPS = 200_000


def _service_config(**overrides):
    base = dict(workers=4, max_queue_depth=64, static_check=False,
                batch_size=1)
    base.update(overrides)
    return ServiceConfig(**base)


def _run_burst(config):
    """Drive the 32-job burst through HTTP; returns timing + counters."""
    service = EvaluationService(config)
    server, _ = serve_in_thread(service)
    latencies = []
    failures = []
    lock = threading.Lock()
    barrier = threading.Barrier(CLIENTS)

    def client_thread(index):
        client = ServeClient(server.url, timeout=60.0)
        barrier.wait()
        submitted = []  # (job id, submit timestamp), fire first...
        for step in range(len(CANDIDATES)):
            arch = CANDIDATES[(index + step) % len(CANDIDATES)]
            begun = time.perf_counter()
            answer = client.submit(
                {"arch": arch, "workloads": WORKLOADS,
                 "max_steps": MAX_STEPS, "timeout_s": 120.0},
            )
            submitted.append((answer["id"], begun))
        for job_id, begun in submitted:  # ...poll afterwards
            record_ = client.wait(job_id, timeout=300.0,
                                  poll_initial_s=0.005)
            elapsed = time.perf_counter() - begun
            with lock:
                latencies.append(elapsed)
                if record_["state"] != "succeeded":
                    failures.append(record_)

    threads = [threading.Thread(target=client_thread, args=(i,))
               for i in range(CLIENTS)]
    begun = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - begun
    counters = service.metrics_snapshot().counters
    server.shutdown_service(drain=True, timeout=30.0)
    assert not failures, failures[:3]
    return {
        "wall_s": wall,
        "jobs_per_s": len(latencies) / wall,
        "p50_ms": _percentile(latencies, 50) * 1000,
        "p95_ms": _percentile(latencies, 95) * 1000,
        "evaluations_run": int(counters.get("serve.evaluations_run", 0)),
        "jobs_accepted": int(counters.get("serve.jobs_accepted", 0)),
        "jobs_coalesced": int(counters.get("serve.jobs_coalesced", 0)),
    }


def _percentile(values, pct):
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(pct / 100 * (len(ordered) - 1)))
    return ordered[index]


def test_coalescing_throughput_vs_no_dedup_baseline():
    total = CLIENTS * len(CANDIDATES)
    coalesced = _run_burst(_service_config())
    baseline = _run_burst(_service_config(
        coalesce=False, share_evaluations=False,
    ))

    # dedup exactness: one toolchain evaluation per unique candidate,
    # every duplicate either coalesced in flight or served from cache
    assert coalesced["evaluations_run"] == len(CANDIDATES)
    assert coalesced["jobs_accepted"] + coalesced["jobs_coalesced"] \
        == total
    # the baseline honestly paid for every duplicate
    assert baseline["evaluations_run"] == total

    speedup = coalesced["jobs_per_s"] / baseline["jobs_per_s"]
    hit_rate = coalesced["jobs_coalesced"] / total
    assert speedup >= 2.0, (
        f"coalescing speedup {speedup:.2f}x < 2x"
        f" ({coalesced['jobs_per_s']:.1f} vs"
        f" {baseline['jobs_per_s']:.1f} jobs/s)"
    )

    table = "Evaluation service: 32-job burst, 4 unique candidates"
    record(table,
           f"- coalescing on:  {coalesced['jobs_per_s']:8.1f} jobs/s, "
           f"p50 {coalesced['p50_ms']:7.1f} ms, "
           f"p95 {coalesced['p95_ms']:7.1f} ms, "
           f"{coalesced['evaluations_run']} toolchain runs")
    record(table,
           f"- no-dedup base:  {baseline['jobs_per_s']:8.1f} jobs/s, "
           f"p50 {baseline['p50_ms']:7.1f} ms, "
           f"p95 {baseline['p95_ms']:7.1f} ms, "
           f"{baseline['evaluations_run']} toolchain runs")
    record(table,
           f"- speedup {speedup:.1f}x, in-flight coalescing hit rate"
           f" {hit_rate * 100:.0f}%")
    record_json("serve", {
        "jobs": total,
        "unique_candidates": len(CANDIDATES),
        "workloads": WORKLOADS,
        "smoke": SMOKE,
        "coalesced": coalesced,
        "baseline": baseline,
        "speedup": speedup,
        "coalescing_hit_rate": hit_rate,
    })
