"""Long-running measurement kernels for the speed benchmarks.

Table 1 measures *simulation speed* (cycles per second), so the programs
here are steady-state loops long enough to amortize load-time costs —
roughly a thousand cycles each, exercising the whole datapath (ALU, memory,
moves, FP where available, and branches).
"""

from __future__ import annotations

from repro.arch import description_for
from repro.asm import Assembler

SPEED_SOURCES = {
    "spam": """
; SPAM steady-state mix: 4 ops + moves per iteration
        ldi r0, #200
        ldi r1, #0
loop:   add r1, r1, r0 | fadd r8, r9, r10 | mov r11, r12
        ld r4, (r2) | xor r5, r5, #21
        st (r3), r1 | shl r6, r6, #1
        sub r0, r0, #1
        bnez r0, loop - .
        halt
""",
    "spam2": """
; SPAM2 steady-state mix
        ldi r0, #200
        ldi r1, #0
loop:   ld r4, (r2) | add r1, r1, r0 | mov r6, r1
        st (r3), r6 | and r5, r1, #15
        sub r0, r0, #1
        bnz loop - .
        halt
""",
    "risc16": """
; RISC16 steady-state mix
        ldi r0, #200
        ldi r1, #0
loop:   add r1, r1, r0
        ld r4, (r2)
        st (r3), r1
        xor r5, r1, #85
        sub r0, r0, #1
        bne loop - .
        halt
""",
    "acc8": """
; ACC8 steady-state mix
        ldi #200
        sta 0
loop:   lda 1
        add 2
        sta 1
        lda 0
        sub 3
        sta 0
        bnz loop - 0 + loop     ; absolute target
        halt
""",
}

# ACC8 branches are absolute; rewrite without the relative idiom.
SPEED_SOURCES["acc8"] = """
; ACC8 steady-state mix (absolute branch targets)
        ldi #200
        sta 0
loop:   lda 1
        add 2
        sta 1
        lda 0
        sub 3
        sta 0
        bnz loop
        halt
"""


def speed_program(arch: str):
    """Assemble the steady-state kernel for *arch*; returns the program."""
    desc = description_for(arch)
    source = SPEED_SOURCES[arch]
    program = Assembler(desc).assemble(source, filename=f"{arch}-speed.s")
    return desc, program


def preload_for(arch: str):
    """Data-memory preload so loads read deterministic values."""
    if arch == "acc8":
        return {"DM": {1: 0, 2: 3, 3: 1, 0: 0}}
    return {"DM": {0: 7, 1: 9}}
