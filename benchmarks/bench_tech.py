"""Technology sweeps — N operating points from ONE synthesis.

The economic claim behind :mod:`repro.tech`: once a design is
synthesized in the baseline process, projecting it into a scaled node
and solving DVFS operating points is closed-form arithmetic — a sweep
of N points must cost one synthesis plus N cheap re-estimates, not N
synthesis runs.  This benchmark times both sides of that ratio and
**asserts the amortization** (``hgen.syntheses`` stays at the single
baseline run while the sweep executes), so a regression that quietly
re-synthesizes per point fails CI instead of just slowing it down.

Also recorded: the Pareto-frontier growth from sweeping nodes — the
pinned baseline contributes one point; adding scaled nodes must add
non-dominated points.  ``REPRO_BENCH_SMOKE=1`` shrinks the budget grid
for a fast low-confidence run (CI smoke mode).
"""

import os
import time

from conftest import record, record_json

from repro import obs
from repro.arch import description_for
from repro.codegen import Cond, KernelBuilder, Opcode
from repro.explore import Explorer
from repro.explore.pareto import frontier, objectives
from repro.hgen import synthesize
from repro.tech import TechSpec, dvfs_sweep, tech_model

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

NODES = (45, 22, 10)
BUDGETS = ([None, 4.0, 1.0] if SMOKE
           else [None, 8.0, 6.0, 4.0, 2.0, 1.0, 0.5, 0.25])


def sum_kernel(n=8):
    K = KernelBuilder("sum")
    cnt = K.li(n)
    acc = K.li(0)
    K.label("loop")
    K.binary_into(acc, Opcode.ADD, acc, cnt)
    K.binary_into(cnt, Opcode.SUB, cnt, 1)
    K.cbr(Cond.NE, cnt, 0, "loop")
    K.store(K.li(0), acc)
    return K.build()


def test_dvfs_sweep_amortizes_synthesis():
    desc = description_for("spam2")

    start = time.perf_counter()
    model = synthesize(desc)
    synthesis_s = time.perf_counter() - start

    obs.enable()
    try:
        with obs.capture() as cap:
            start = time.perf_counter()
            points = {}
            for node in NODES:
                points[node] = dvfs_sweep(model, tech_model(node, "HP"),
                                          BUDGETS)
            sweep_s = time.perf_counter() - start
    finally:
        obs.disable(reset=True)

    n_points = sum(len(p) for p in points.values())
    assert n_points == len(NODES) * len(BUDGETS)
    # THE acceptance bar: the sweep re-projects the one baseline
    # synthesis; it never synthesizes again.
    syntheses = cap.snapshot.counters.get("hgen.syntheses", 0.0)
    assert syntheses == 0.0, (
        f"dvfs_sweep re-synthesized {syntheses:.0f} time(s)"
    )
    per_point_us = sweep_s / n_points * 1e6

    # frontier growth: each node added to the sweep grows the Pareto
    # frontier over (cost, cycle_ns, power_mw, die_size)
    explorer = Explorer([sum_kernel()], parallel="serial")
    specs = [None] + [TechSpec(node, flavor)
                      for node in NODES for flavor in ("HP", "LP")]
    candidates = explorer.tech_sweep(desc, specs)
    evaluations = [c.evaluation for c in candidates]
    frontier_sizes = []
    for upto in range(1, len(evaluations) + 1):
        frontier_sizes.append(
            len(frontier(evaluations[:upto], key=objectives))
        )
    assert frontier_sizes[0] == 1
    assert frontier_sizes[-1] > 1, "sweeping nodes must grow the frontier"
    record(
        "Technology sweeps — synthesis amortization",
        f"- **spam2**: 1 synthesis ({synthesis_s:.3f} s) drives"
        f" {n_points} operating points across {len(NODES)} nodes"
        f" ({per_point_us:.0f} µs/point,"
        f" {synthesis_s / max(sweep_s, 1e-9):,.0f}x the sweep);"
        f" frontier {frontier_sizes[0]} -> {frontier_sizes[-1]} point(s)",
    )
    record_json("tech", {
        "config": {
            "arch": "spam2",
            "nodes": list(NODES),
            "budgets": [b if b is not None else "none" for b in BUDGETS],
            "smoke": SMOKE,
        },
        "synthesis_s": synthesis_s,
        "sweep_s": sweep_s,
        "operating_points": n_points,
        "per_point_us": per_point_us,
        "syntheses_during_sweep": syntheses,
        "sweep_points_counter": cap.snapshot.counters.get(
            "tech.sweep_points", 0.0
        ),
        "frontier_sizes": frontier_sizes,
    })
