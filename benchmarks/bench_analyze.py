"""Static-analysis engine cost (repro.analyze).

Two questions, answered on the SPAM-2 description:

1. What does one full `analyze()` run cost cold, and what does the
   fingerprint-memoized `check_static()` path cost once the artifact
   cache is warm?
2. What does whole-program dataflow analysis (`program_facts`) cost
   cold, and how much of that does the delta-aware incremental path
   recover when re-analysing a near-identical mutated description
   against a parent-warmed cache?
3. What does the exploration validity gate add to a *serial* candidate
   sweep?  A sweep of distinct (mutated) candidates is evaluated twice
   on the same `ParallelEvaluator` configuration — gate on vs gate off,
   fresh caches each trial, best-of-N timing — and the relative
   overhead must stay under 5%.

``BENCH_analyze.json`` carries the machine-readable results.  Set
``REPRO_BENCH_SMOKE=1`` for a fast low-confidence run (CI smoke mode).
"""

import os
import time

from conftest import record, record_json

from repro.analyze import analyze, check_static, program_facts
from repro.arch import description_for
from repro.arch.workloads import workloads_for
from repro.asm import Assembler
from repro.cache import ArtifactCache
from repro.codegen import Cond, KernelBuilder, Opcode
from repro.explore.parallel import EvalRequest, ParallelEvaluator
from repro.explore.transforms import narrow_register_file, resize_memory

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
TRIALS = 4 if not SMOKE else 1
REPEATS = 50 if not SMOKE else 10
TABLE = "Static analysis (SPAM-2)"

MAX_GATE_OVERHEAD = 0.05

_results = {}


def _sum_kernel(name, count):
    builder = KernelBuilder(name)
    cnt = builder.li(count)
    acc = builder.li(0)
    builder.label("loop")
    builder.binary_into(acc, Opcode.ADD, acc, cnt)
    builder.binary_into(cnt, Opcode.SUB, cnt, 1)
    builder.cbr(Cond.NE, cnt, 0, "loop")
    builder.store(builder.li(0), acc)
    return builder.build()


def _kernels():
    counts = (40, 60, 80, 100, 120, 140, 160, 180)
    return [_sum_kernel(f"sum{n}", n) for n in counts]


def _candidates():
    """Four structurally distinct, valid SPAM-2 derivatives."""
    base = description_for("spam2")
    return [
        EvalRequest(base, "initial"),
        EvalRequest(narrow_register_file(base, 4), "narrow_rf"),
        EvalRequest(resize_memory(base, "DM", 128), "resize_dm"),
        EvalRequest(resize_memory(base, "IM", 256), "resize_im"),
    ]


def _best_of(fn, trials):
    times = []
    for _ in range(trials):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_cold_vs_fingerprint_cached_analysis():
    desc = description_for("spam2")
    cold = _best_of(lambda: analyze(desc), TRIALS * 3) / 1  # one run timed

    cache = ArtifactCache()
    first = check_static(desc, cache=cache)  # populate the cache
    assert first.ok()

    def warm():
        for _ in range(REPEATS):
            check_static(desc, cache=cache)

    cached = _best_of(warm, TRIALS) / REPEATS
    assert cache.stats.hits_by_kind["analysis"] >= REPEATS

    speedup = cold / cached if cached else float("inf")
    _results["analysis_cold_s"] = cold
    _results["analysis_cached_s"] = cached
    _results["analysis_cache_speedup"] = speedup
    record(TABLE, f"* full `analyze()` cold: {cold * 1e3:.2f} ms; "
                  f"fingerprint-cached `check_static()`: "
                  f"{cached * 1e6:.1f} us ({speedup:.0f}x)")
    # a warm gate consult must be far cheaper than a cold analysis run
    assert cached < cold
    assert speedup > 5, f"memoization buys only {speedup:.1f}x"


def _workload_programs(arch):
    desc = description_for(arch)
    assembler = Assembler(desc)
    programs = []
    for workload in workloads_for(arch):
        program = assembler.assemble(workload.source,
                                     filename=f"{workload.name}.s")
        programs.append((workload.name, tuple(program.words),
                         program.origin))
    return desc, programs


def test_dataflow_cold_vs_incremental():
    desc, programs = _workload_programs("spam2")
    # a structural mutation that leaves every operation's RTL untouched:
    # the per-op fingerprint units all carry over to the child
    child = resize_memory(desc, "DM", 128)

    def cold(target, parent=None, cache=None):
        cache = cache if cache is not None else ArtifactCache()
        for name, words, origin in programs:
            program_facts(target, words, origin, name=name,
                          cache=cache, parent=parent)
        return cache

    cold_t = _best_of(lambda: cold(desc), TRIALS * 2)

    # The incremental path needs a parent-warmed cache, and a repeat
    # call with the same (desc, words) pair is a memo hit rather than a
    # delta build — so each trial rebuilds the warm cache outside the
    # timed region.
    times = []
    reused = rebuilt = 0
    for _ in range(TRIALS * 2):
        cache = cold(desc)
        before_reused = cache.stats.units_reused["facts"]
        before_rebuilt = cache.stats.units_rebuilt["facts"]
        start = time.perf_counter()
        cold(child, parent=desc, cache=cache)
        times.append(time.perf_counter() - start)
        reused = cache.stats.units_reused["facts"] - before_reused
        rebuilt = cache.stats.units_rebuilt["facts"] - before_rebuilt
    incremental_t = min(times)
    assert reused > 0, "delta analysis reused no per-op facts"

    speedup = cold_t / incremental_t if incremental_t else float("inf")
    _results["dataflow_cold_s"] = cold_t
    _results["dataflow_incremental_s"] = incremental_t
    _results["dataflow_incremental_speedup"] = speedup
    _results["dataflow_units_reused"] = reused
    _results["dataflow_units_rebuilt"] = rebuilt
    _results["dataflow_programs"] = len(programs)
    record(TABLE, f"* `program_facts` over {len(programs)} workloads: "
                  f"{cold_t * 1e3:.2f} ms cold; delta re-analysis vs "
                  f"parent: {incremental_t * 1e3:.2f} ms "
                  f"({speedup:.1f}x, {reused} op facts reused, "
                  f"{rebuilt} rebuilt)")
    # reusing untouched per-op facts must at least not cost extra
    assert incremental_t <= cold_t * 1.10


def test_gate_overhead_on_serial_sweep():
    kernels = _kernels()
    requests = _candidates()

    def sweep(static_check):
        evaluator = ParallelEvaluator(
            kernels, cache=ArtifactCache(), mode="serial",
            static_check=static_check,
        )
        results = evaluator.evaluate_many(requests)
        assert all(r.ok for r in results), [r.error for r in results]

    # warm each flavour once so lazy imports land outside the timed
    # region, then interleave trials ABBA-style so drift in machine
    # speed hits both flavours equally; min-of-many damps the rest
    sweep(True)
    sweep(False)
    times = {True: [], False: []}
    for _ in range(TRIALS):
        for flag in (True, False, False, True):
            start = time.perf_counter()
            sweep(flag)
            times[flag].append(time.perf_counter() - start)
    gated = min(times[True])
    ungated = min(times[False])

    # The gate's true cost is a few ms against a few hundred ms of
    # evaluation, so the paired difference of two large timings is
    # noise-dominated on a shared machine.  Assert instead on a direct,
    # conservative upper bound: the full cold gate work for the sweep
    # (fresh cache, every candidate analysed from scratch — in the real
    # sweep the signature table it builds is even reused by evaluation)
    # over the ungated sweep time.
    def gate_work():
        cache = ArtifactCache()
        for request in requests:
            check_static(request.desc, cache=cache)

    gate = _best_of(gate_work, TRIALS * 2)
    overhead = gate / ungated
    _results["sweep_gated_s"] = gated
    _results["sweep_ungated_s"] = ungated
    _results["gate_work_s"] = gate
    _results["gate_overhead"] = overhead
    _results["paired_overhead"] = (gated - ungated) / ungated
    _results["candidates"] = len(requests)
    _results["kernels"] = len(kernels)
    record(TABLE, f"* validity gate on a serial {len(requests)}-candidate "
                  f"sweep: {gate * 1e3:.1f} ms of gate work against "
                  f"{ungated * 1e3:.1f} ms of evaluation "
                  f"({overhead:.1%} overhead)")
    record_json("analyze", dict(_results, smoke=SMOKE))
    assert overhead < MAX_GATE_OVERHEAD, (
        f"static-analysis gate costs {overhead:.1%} on a serial sweep"
        f" (budget {MAX_GATE_OVERHEAD:.0%})"
    )
