"""Ablation — the resource-sharing pass (paper §4.1.1–4.1.2, Fig. 5).

The paper argues direct synthesis from ISDL is viable *because* the
resource-sharing problem can be solved with the compatibility-matrix /
maximal-clique formulation, and that constraints expose extra sharing
(the move-bus example of §4.1.1).  Measured here:

* die size with sharing off (the "naive scheme [that] would generate
  additional data-paths"), on, and on-without-constraints;
* the functional-unit instance count collapse;
* the synthesis-time cost of the clique pass.
"""

import pytest

from conftest import record, record_json

from repro.arch import description_for
from repro.hgen import synthesize

_results = {}


@pytest.mark.parametrize(
    "mode",
    ["naive", "sharing_no_constraints", "sharing_full"],
)
def test_sharing_ablation(benchmark, mode):
    desc = description_for("spam")
    share = mode != "naive"
    use_constraints = mode == "sharing_full"

    model = benchmark(
        lambda: synthesize(desc, share=share, use_constraints=use_constraints)
    )
    _results[mode] = model
    record(
        "Ablation — resource sharing (SPAM)",
        f"- {mode:24s}: core die {model.core_die_size:>9,.0f} cells,"
        f" {model.shared_unit_count:>3d} FU instances,"
        f" cycle {model.cycle_ns:.1f} ns,"
        f" synthesis {benchmark.stats.stats.mean:.3f} s",
    )
    if len(_results) == 3:
        naive = _results["naive"]
        noc = _results["sharing_no_constraints"]
        full = _results["sharing_full"]
        record(
            "Ablation — resource sharing (SPAM)",
            f"- sharing saves **{naive.core_die_size - full.core_die_size:,.0f}"
            f" cells** ({(1 - full.core_die_size / naive.core_die_size) * 100:.0f}%"
            " of the naive core); constraints contribute"
            f" {noc.core_die_size - full.core_die_size:,.0f} cells of that"
            " (the §4.1.1 move-bus effect)",
        )
        assert full.shared_unit_count < naive.shared_unit_count
        assert full.core_die_size < naive.core_die_size
        assert full.core_die_size <= noc.core_die_size
        record_json("ablation_sharing", {
            "config": {"arch": "spam"},
            "rows": {
                mode: {
                    "core_die_size": m.core_die_size,
                    "fu_instances": m.shared_unit_count,
                    "cycle_ns": m.cycle_ns,
                }
                for mode, m in _results.items()
            },
            "sharing_saves_cells":
                naive.core_die_size - full.core_die_size,
        })
