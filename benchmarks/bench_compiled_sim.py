"""Future work (paper §6.2) — "Additional speedups can be obtained by a
move to compiled-code simulators."

Measured: the three simulator generations on the same SPAM kernel —

1. interpretive processing core (walks the RTL AST each execution),
2. the generated core (per-operation compiled routines — the paper's XSIM
   structure, and our default),
3. the program-specialized compiled-code simulator (the future-work mode:
   operand constants burned in, monitor hooks traded away).
"""

import pytest

from conftest import record, record_json
from _kernels import preload_for, speed_program

from repro.gensim import simulator_for

ARCH = "spam"

_speeds = {}

#: result-table mode -> Simulator-protocol backend name.  All three
#: generations run through the same protocol surface — no special-casing.
_BACKENDS = {
    "interpretive": "interpretive",
    "generated": "xsim",
    "compiled_code": "compiled",
}


def _preload(sim):
    for storage, contents in preload_for(ARCH).items():
        for index, value in contents.items():
            sim.write(storage, value, index)


def _run(backend):
    desc, program = speed_program(ARCH)
    sim = simulator_for(desc, backend)
    _preload(sim)
    sim.load_words(program.words, program.origin)
    sim.run_to_completion()
    return sim.stats.cycles


@pytest.mark.parametrize(
    "mode", ["interpretive", "generated", "compiled_code"]
)
def test_simulator_generations(benchmark, mode):
    cycles = benchmark(lambda: _run(_BACKENDS[mode]))
    cps = cycles / benchmark.stats.stats.mean
    _speeds[mode] = cps
    labels = {
        "interpretive": "interpretive core (RTL AST walk)",
        "generated": "generated core (paper's XSIM; default)",
        "compiled_code": "compiled-code simulator (paper §6.2 future work)",
    }
    record(
        "Future work — compiled-code simulation (SPAM)",
        f"- {labels[mode]}: **{cps:,.0f} cycles/sec**",
    )
    if len(_speeds) == 3:
        gain = _speeds["compiled_code"] / _speeds["generated"]
        record(
            "Future work — compiled-code simulation (SPAM)",
            f"- compiled-code over XSIM: **{gain:.1f}x** — confirming the"
            " paper's expectation of further 'additional speedups'",
        )
        assert _speeds["compiled_code"] > _speeds["generated"]
        assert _speeds["generated"] >= _speeds["interpretive"] * 0.9
        record_json("compiled_sim", {
            "config": {"arch": ARCH, "backends": _BACKENDS},
            "cycles_per_second": dict(_speeds),
            "compiled_over_generated": gain,
        })
