"""Figure 1 — architecture exploration by iterative improvement.

One full turn of the crank the paper's methodology enables: retarget the
compiler, simulate, synthesize, cost, transform, repeat.  Measured: the
wall-clock of a complete multi-candidate exploration (the rapid-evaluation
claim of §1) and the cost improvement it finds when specialising the
4-way FP SPAM for an integer workload.
"""

import pytest

from conftest import record

from repro.arch import description_for
from repro.codegen import Cond, KernelBuilder, Opcode
from repro.explore import CostWeights, Explorer


def _kernels():
    K = KernelBuilder("sum")
    cnt = K.li(10)
    acc = K.li(0)
    K.label("loop")
    K.binary_into(acc, Opcode.ADD, acc, cnt)
    K.binary_into(cnt, Opcode.SUB, cnt, 1)
    K.cbr(Cond.NE, cnt, 0, "loop")
    K.store(K.li(0), acc)
    sum_kernel = K.build()

    K = KernelBuilder("memcpy")
    src = K.li(0)
    dst = K.li(32)
    cnt = K.li(8)
    K.label("loop")
    K.store(dst, K.load(src))
    K.binary_into(src, Opcode.ADD, src, 1)
    K.binary_into(dst, Opcode.ADD, dst, 1)
    K.binary_into(cnt, Opcode.SUB, cnt, 1)
    K.cbr(Cond.NE, cnt, 0, "loop")
    memcpy = K.build()
    return [sum_kernel, memcpy]


def test_exploration_loop(benchmark):
    kernels = _kernels()

    def explore():
        explorer = Explorer(kernels, CostWeights(1.0, 0.5, 0.3))
        return explorer.explore(
            description_for("spam"), max_iterations=3
        )

    log = benchmark.pedantic(explore, rounds=2, iterations=1)
    candidates = len(log.accepted) + len(log.rejected)
    record(
        "Figure 1 — exploration by iterative improvement",
        f"- specialising SPAM for integer kernels:"
        f" {log.iterations} iterations,"
        f" {candidates}+ candidates evaluated"
        f" (each = compile + simulate + synthesize),"
        f" **{log.improvement:.2f}x** cost reduction,"
        f" {benchmark.stats.stats.mean:.1f} s per full exploration",
    )
    first = log.accepted[0].evaluation
    best = log.best.evaluation
    record(
        "Figure 1 — exploration by iterative improvement",
        f"- initial: {first.summary()}",
    )
    record(
        "Figure 1 — exploration by iterative improvement",
        f"- final:   {best.summary()}"
        f" (derived by: {' → '.join(c.derived_by for c in log.accepted[1:])})",
    )
    assert log.improvement > 1.0
    assert best.die_size < first.die_size
