"""Figure 1 — architecture exploration by iterative improvement.

One full turn of the crank the paper's methodology enables: retarget the
compiler, simulate, synthesize, cost, transform, repeat.  Measured: the
wall-clock of a complete multi-candidate exploration (the rapid-evaluation
claim of §1), the cost improvement it finds when specialising the 4-way FP
SPAM for an integer workload, and the speedup of the parallel
cache-backed evaluation engine over the seed's serial from-scratch path —
with bit-true identical trajectories.
"""

import time

import pytest

from conftest import record, record_json

from repro import obs
from repro.arch import description_for
from repro.cache import ArtifactCache
from repro.codegen import Cond, KernelBuilder, Opcode
from repro.explore import CostWeights, Explorer, ParallelEvaluator
from repro.isdl import fingerprint


def _kernels():
    K = KernelBuilder("sum")
    cnt = K.li(10)
    acc = K.li(0)
    K.label("loop")
    K.binary_into(acc, Opcode.ADD, acc, cnt)
    K.binary_into(cnt, Opcode.SUB, cnt, 1)
    K.cbr(Cond.NE, cnt, 0, "loop")
    K.store(K.li(0), acc)
    sum_kernel = K.build()

    K = KernelBuilder("memcpy")
    src = K.li(0)
    dst = K.li(32)
    cnt = K.li(8)
    K.label("loop")
    K.store(dst, K.load(src))
    K.binary_into(src, Opcode.ADD, src, 1)
    K.binary_into(dst, Opcode.ADD, dst, 1)
    K.binary_into(cnt, Opcode.SUB, cnt, 1)
    K.cbr(Cond.NE, cnt, 0, "loop")
    memcpy = K.build()
    return [sum_kernel, memcpy]


def test_exploration_loop(benchmark):
    kernels = _kernels()

    def explore():
        explorer = Explorer(kernels, CostWeights(1.0, 0.5, 0.3))
        return explorer.explore(
            description_for("spam"), max_iterations=3
        )

    log = benchmark.pedantic(explore, rounds=2, iterations=1)
    candidates = len(log.accepted) + len(log.rejected)
    record(
        "Figure 1 — exploration by iterative improvement",
        f"- specialising SPAM for integer kernels:"
        f" {log.iterations} iterations,"
        f" {candidates}+ candidates evaluated"
        f" (each = compile + simulate + synthesize),"
        f" **{log.improvement:.2f}x** cost reduction,"
        f" {benchmark.stats.stats.mean:.1f} s per full exploration",
    )
    first = log.accepted[0].evaluation
    best = log.best.evaluation
    record(
        "Figure 1 — exploration by iterative improvement",
        f"- initial: {first.summary()}",
    )
    record(
        "Figure 1 — exploration by iterative improvement",
        f"- final:   {best.summary()}"
        f" (derived by: {' → '.join(c.derived_by for c in log.accepted[1:])})",
    )
    assert log.improvement > 1.0
    assert best.die_size < first.die_size

    # one instrumented re-run feeds the machine-readable result: the same
    # sweep with repro.obs on, its merged profile attached to the payload
    obs.enable(registry=obs.MetricsRegistry())
    try:
        obs_log = Explorer(kernels, CostWeights(1.0, 0.5, 0.3)).explore(
            description_for("spam"), max_iterations=3
        )
        snapshot = obs.registry().snapshot()
    finally:
        obs.disable(reset=True)
    record_json("exploration", {
        "config": {"arch": "spam", "max_iterations": 3,
                   "kernels": [k.name for k in kernels]},
        "mean_seconds": benchmark.stats.stats.mean,
        "iterations": log.iterations,
        "candidates": candidates,
        "improvement": log.improvement,
        "obs": snapshot.to_dict(),
        "obs_profiled_candidates": len(obs_log.profiles),
    })


def test_parallel_engine_speedup(benchmark):
    """Serial-vs-parallel and cold-vs-warm-cache engine comparison.

    The same sweep runs three ways: the seed's serial no-cache path, the
    parallel engine with a cold cache, and the parallel engine re-using
    that cache (the steady state inside a long exploration campaign).
    Results must be bit-true identical; the warm engine must be ≥2x
    faster than the seed path.
    """
    kernels = _kernels()
    weights = CostWeights(1.0, 0.5, 0.3)
    initial = description_for("spam")

    def sweep(explorer):
        start = time.perf_counter()
        log = explorer.explore(initial, max_iterations=3)
        return log, time.perf_counter() - start

    serial = Explorer(
        kernels, weights,
        evaluator=ParallelEvaluator(
            kernels, weights=weights, cache=None, mode="serial"
        ),
    )
    serial_log, serial_s = sweep(serial)

    cache = ArtifactCache()
    cold_log, cold_s = sweep(Explorer(kernels, weights, cache=cache))
    warm_log = benchmark.pedantic(
        lambda: Explorer(kernels, weights, cache=cache).explore(
            initial, max_iterations=3
        ),
        rounds=2, iterations=1,
    )
    warm_s = benchmark.stats.stats.mean

    # bit-true: same chosen architecture, same cycle counts, same path
    for log in (cold_log, warm_log):
        assert fingerprint(log.best.desc) == fingerprint(serial_log.best.desc)
        assert log.best.evaluation.cycles == serial_log.best.evaluation.cycles
        assert [c.derived_by for c in log.accepted] == [
            c.derived_by for c in serial_log.accepted
        ]
        assert not log.errors

    warm_speedup = serial_s / warm_s
    record(
        "Parallel cache-backed exploration engine",
        f"- seed serial path: {serial_s:.2f} s;"
        f" parallel cold cache: {cold_s:.2f} s;"
        f" parallel warm cache: {warm_s:.3f} s"
        f" (**{warm_speedup:.1f}x** vs seed)",
    )
    record(
        "Parallel cache-backed exploration engine",
        f"- identical trajectories, best = {serial_log.best.desc.name},"
        f" {serial_log.best.evaluation.cycles} cycles;"
        f" {cache.stats.hits} cache hits /"
        f" {cache.stats.misses} misses"
        f" ({cache.stats.hit_rate * 100:.0f}%)",
    )
    assert warm_speedup >= 2.0
    assert cache.stats.hits > 0
    record_json("exploration_engine", {
        "config": {"arch": "spam", "max_iterations": 3},
        "serial_seconds": serial_s,
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "warm_speedup": warm_speedup,
        "cache_hits": cache.stats.hits,
        "cache_misses": cache.stats.misses,
        "cache_hit_rate": cache.stats.hit_rate,
    })
