"""Figure 1 — architecture exploration by iterative improvement.

One full turn of the crank the paper's methodology enables: retarget the
compiler, simulate, synthesize, cost, transform, repeat.  Measured: the
wall-clock of a complete multi-candidate exploration (the rapid-evaluation
claim of §1), the cost improvement it finds when specialising the 4-way FP
SPAM for an integer workload, and the speedup of the parallel
cache-backed evaluation engine over the seed's serial from-scratch path —
with bit-true identical trajectories.
"""

import os
import time

import pytest

from conftest import record, record_json

from repro import obs
from repro.arch import description_for
from repro.cache import ArtifactCache
from repro.codegen import Cond, KernelBuilder, Opcode
from repro.explore import (
    CostWeights,
    Explorer,
    ParallelEvaluator,
    evaluate,
    transforms,
)
from repro.isdl import fingerprint

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


def _kernels():
    K = KernelBuilder("sum")
    cnt = K.li(10)
    acc = K.li(0)
    K.label("loop")
    K.binary_into(acc, Opcode.ADD, acc, cnt)
    K.binary_into(cnt, Opcode.SUB, cnt, 1)
    K.cbr(Cond.NE, cnt, 0, "loop")
    K.store(K.li(0), acc)
    sum_kernel = K.build()

    K = KernelBuilder("memcpy")
    src = K.li(0)
    dst = K.li(32)
    cnt = K.li(8)
    K.label("loop")
    K.store(dst, K.load(src))
    K.binary_into(src, Opcode.ADD, src, 1)
    K.binary_into(dst, Opcode.ADD, dst, 1)
    K.binary_into(cnt, Opcode.SUB, cnt, 1)
    K.cbr(Cond.NE, cnt, 0, "loop")
    memcpy = K.build()
    return [sum_kernel, memcpy]


def test_exploration_loop(benchmark):
    kernels = _kernels()

    def explore():
        explorer = Explorer(kernels, CostWeights(1.0, 0.5, 0.3))
        return explorer.explore(
            description_for("spam"), max_iterations=3
        )

    log = benchmark.pedantic(explore, rounds=2, iterations=1)
    candidates = len(log.accepted) + len(log.rejected)
    record(
        "Figure 1 — exploration by iterative improvement",
        f"- specialising SPAM for integer kernels:"
        f" {log.iterations} iterations,"
        f" {candidates}+ candidates evaluated"
        f" (each = compile + simulate + synthesize),"
        f" **{log.improvement:.2f}x** cost reduction,"
        f" {benchmark.stats.stats.mean:.1f} s per full exploration",
    )
    first = log.accepted[0].evaluation
    best = log.best.evaluation
    record(
        "Figure 1 — exploration by iterative improvement",
        f"- initial: {first.summary()}",
    )
    record(
        "Figure 1 — exploration by iterative improvement",
        f"- final:   {best.summary()}"
        f" (derived by: {' → '.join(c.derived_by for c in log.accepted[1:])})",
    )
    assert log.improvement > 1.0
    assert best.die_size < first.die_size

    # one instrumented re-run feeds the machine-readable result: the same
    # sweep with repro.obs on, its merged profile attached to the payload
    obs.enable(registry=obs.MetricsRegistry())
    try:
        obs_log = Explorer(kernels, CostWeights(1.0, 0.5, 0.3)).explore(
            description_for("spam"), max_iterations=3
        )
        snapshot = obs.registry().snapshot()
    finally:
        obs.disable(reset=True)
    record_json("exploration", {
        "config": {"arch": "spam", "max_iterations": 3,
                   "kernels": [k.name for k in kernels]},
        "mean_seconds": benchmark.stats.stats.mean,
        "iterations": log.iterations,
        "candidates": candidates,
        "improvement": log.improvement,
        "obs": snapshot.to_dict(),
        "obs_profiled_candidates": len(obs_log.profiles),
    })


def test_parallel_engine_speedup(benchmark):
    """Serial-vs-parallel and cold-vs-warm-cache engine comparison.

    The same sweep runs three ways: the seed's serial no-cache path, the
    parallel engine with a cold cache, and the parallel engine re-using
    that cache (the steady state inside a long exploration campaign).
    Results must be bit-true identical; the warm engine must be ≥2x
    faster than the seed path.
    """
    kernels = _kernels()
    weights = CostWeights(1.0, 0.5, 0.3)
    initial = description_for("spam")

    def sweep(explorer):
        start = time.perf_counter()
        log = explorer.explore(initial, max_iterations=3)
        return log, time.perf_counter() - start

    serial = Explorer(
        kernels, weights,
        evaluator=ParallelEvaluator(
            kernels, weights=weights, cache=None, mode="serial"
        ),
    )
    serial_log, serial_s = sweep(serial)

    cache = ArtifactCache()
    cold_log, cold_s = sweep(Explorer(kernels, weights, cache=cache))
    warm_log = benchmark.pedantic(
        lambda: Explorer(kernels, weights, cache=cache).explore(
            initial, max_iterations=3
        ),
        rounds=2, iterations=1,
    )
    warm_s = benchmark.stats.stats.mean

    # bit-true: same chosen architecture, same cycle counts, same path
    for log in (cold_log, warm_log):
        assert fingerprint(log.best.desc) == fingerprint(serial_log.best.desc)
        assert log.best.evaluation.cycles == serial_log.best.evaluation.cycles
        assert [c.derived_by for c in log.accepted] == [
            c.derived_by for c in serial_log.accepted
        ]
        assert not log.errors

    warm_speedup = serial_s / warm_s
    record(
        "Parallel cache-backed exploration engine",
        f"- seed serial path: {serial_s:.2f} s;"
        f" parallel cold cache: {cold_s:.2f} s;"
        f" parallel warm cache: {warm_s:.3f} s"
        f" (**{warm_speedup:.1f}x** vs seed)",
    )
    record(
        "Parallel cache-backed exploration engine",
        f"- identical trajectories, best = {serial_log.best.desc.name},"
        f" {serial_log.best.evaluation.cycles} cycles;"
        f" {cache.stats.hits} cache hits /"
        f" {cache.stats.misses} misses"
        f" ({cache.stats.hit_rate * 100:.0f}%)",
    )
    assert warm_speedup >= 2.0
    assert cache.stats.hits > 0
    record_json("exploration_engine", {
        "config": {"arch": "spam", "max_iterations": 3},
        "serial_seconds": serial_s,
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "warm_speedup": warm_speedup,
        "cache_hits": cache.stats.hits,
        "cache_misses": cache.stats.misses,
        "cache_hit_rate": cache.stats.hit_rate,
    })


def _loop_kernel(n, name="sum"):
    K = KernelBuilder(name)
    cnt = K.li(n)
    acc = K.li(0)
    K.label("loop")
    K.binary_into(acc, Opcode.ADD, acc, cnt)
    K.binary_into(cnt, Opcode.SUB, cnt, 1)
    K.cbr(Cond.NE, cnt, 0, "loop")
    K.store(K.li(0), acc)
    return K.build()


def test_incremental_reevaluation_speedup(benchmark):
    """Cold vs incremental vs exact-warm for one local mutation.

    The steady state of an exploration sweep is "re-measure a child that
    differs from its parent by one transform".  With the parent threaded
    through, the fingerprint delta lets the pipeline rebuild only the
    touched units and adopt the parent's simulation outright (the
    mutation drops an operation the kernels never execute).  The
    incremental tier must be ≥3x faster than cold while producing an
    identical evaluation; exact-warm (same fingerprint again) is a pure
    lookup and must beat both.
    """
    # The equal-to-cold debug net would re-run every timed incremental
    # evaluation cold and flatten the very speedup being measured —
    # strip it for the timing section, exercise it once at the end.
    check_flag = os.environ.pop("REPRO_INCREMENTAL_CHECK", None)

    iterations = 400 if SMOKE else 2000
    kernels = [_loop_kernel(iterations)]
    parent = description_for("risc16")
    parent_eval = evaluate(parent, kernels)

    child = None
    for fname, oname in sorted(parent_eval.stats.unused_operations(parent)):
        candidate = transforms.drop_operation(parent, fname, oname)
        if evaluate(candidate, kernels).feasible:
            child = candidate
            break
    assert child is not None, "no droppable unused operation"

    cold_s = min(
        _timed(lambda: evaluate(child, kernels))[1] for _ in range(3)
    )
    cold = evaluate(child, kernels)

    def warmed_cache():
        cache = ArtifactCache()
        evaluate(parent, kernels, cache=cache)
        return (cache,), {}

    def reevaluate(cache):
        return evaluate(child, kernels, cache=cache, parent=parent)

    incr = benchmark.pedantic(
        reevaluate, setup=warmed_cache, rounds=3, iterations=1
    )
    incr_s = benchmark.stats.stats.min

    # exact-warm: the child's whole evaluation is now memoized
    cache = warmed_cache()[0][0]
    reevaluate(cache)
    warm, warm_s = _timed(lambda: reevaluate(cache))

    for field in ("feasible", "cycles", "stall_cycles", "cycle_ns",
                  "die_size", "power_mw", "verilog_lines"):
        assert getattr(incr, field) == getattr(cold, field), field
        assert getattr(warm, field) == getattr(cold, field), field
    assert cache.stats.incremental_builds["sim"] >= 1  # sim adopted

    speedup = cold_s / incr_s
    record(
        "Incremental re-evaluation (fingerprint-delta reuse)",
        f"- single local mutation on RISC16 ({iterations}-iteration"
        f" kernel): cold {cold_s * 1000:.0f} ms, incremental"
        f" {incr_s * 1000:.1f} ms (**{speedup:.1f}x**), exact-warm"
        f" {warm_s * 1000:.2f} ms",
    )
    assert speedup >= 3.0, f"incremental tier regressed: {speedup:.2f}x"
    assert warm_s < incr_s

    # one run through the equal-to-cold debug net (asserts internally)
    if check_flag is not None:
        os.environ["REPRO_INCREMENTAL_CHECK"] = check_flag
        checked = reevaluate(warmed_cache()[0][0])
        assert checked.cycles == cold.cycles

    record_json("exploration_incremental", {
        "config": {"arch": "risc16", "kernel_iterations": iterations,
                   "mutation": child.name, "smoke": SMOKE},
        "cold_seconds": cold_s,
        "incremental_seconds": incr_s,
        "exact_warm_seconds": warm_s,
        "incremental_speedup": speedup,
        "sim_adoptions": cache.stats.incremental_builds["sim"],
        "units_reused": dict(cache.stats.units_reused),
        "units_rebuilt": dict(cache.stats.units_rebuilt),
    })


def _timed(thunk):
    start = time.perf_counter()
    result = thunk()
    return result, time.perf_counter() - start
