"""Ablation — off-line disassembly (paper §3.1).

"They also provide fast execution times and perform disassembly off-line to
improve speed."  Measured: the generated simulator with its load-time
disassembly versus a variant that re-decodes the fetched instruction word
on every cycle (what a naive interpretive simulator does).
"""

import pytest

from conftest import record, record_json
from _kernels import preload_for, speed_program

from repro.gensim.disassembler import Disassembler
from repro.gensim.xsim import XSim

ARCH = "spam"

_speeds = {}


def _fresh():
    desc, program = speed_program(ARCH)
    sim = XSim(desc)
    for storage, contents in preload_for(ARCH).items():
        for index, value in contents.items():
            sim.write(storage, value, index)
    sim.load_words(program.words, program.origin)
    return sim


def _run_online_decode(sim):
    """Execute with per-fetch decoding instead of the load-time tables."""
    scheduler = sim.scheduler
    program = scheduler.program
    im_name = sim.desc.instruction_memory().name
    # the simulator's own disassembler memoizes by word, which would turn
    # every repeated fetch into a dict hit — the ablation measures the
    # paper's genuine decode-every-cycle cost, so decode unmemoized
    decoder = Disassembler(sim.desc, sim.disassembler.table, cache_size=0)
    while True:
        scheduler._commit_due()
        if scheduler.halted:
            break
        address = sim.state.pc
        scheduler._charge_stalls(address)
        # On-line decode: fetch the word and disassemble it NOW.
        word = sim.state.read(im_name, address)
        decoded = decoder.disassemble(word)
        prepared = scheduler._prepare(decoded)
        result = scheduler.core.execute(sim.state, prepared.selections)
        scheduler._record(address, prepared, result)
        retire = scheduler.cycle + result.cycles
        scheduler._schedule_writes(result.action_writes, retire)
        scheduler._schedule_writes(result.side_effect_writes, retire)
        scheduler.cycle = retire
        sim.state.pc = address + prepared.size
    scheduler.drain()
    return scheduler.cycle


def test_offline_disassembly(benchmark):
    def run():
        sim = _fresh()
        sim.run_to_completion()
        return sim.stats.cycles

    cycles = benchmark(run)
    cps = cycles / benchmark.stats.stats.mean
    _speeds["offline"] = cps
    record(
        "Ablation — off-line disassembly (SPAM)",
        f"- off-line (decode once at load): **{cps:,.0f} cycles/sec**",
    )


def test_online_decode(benchmark):
    def run():
        sim = _fresh()
        return _run_online_decode(sim)

    cycles = benchmark(run)
    cps = cycles / benchmark.stats.stats.mean
    _speeds["online"] = cps
    record(
        "Ablation — off-line disassembly (SPAM)",
        f"- on-line (decode every fetch):   **{cps:,.0f} cycles/sec**",
    )
    if "offline" in _speeds:
        gain = _speeds["offline"] / cps
        record(
            "Ablation — off-line disassembly (SPAM)",
            f"- off-line disassembly is **{gain:.1f}x** faster — the"
            " paper's rationale for decoding at load time",
        )
        record_json("ablation_disassembly", {
            "config": {"arch": ARCH},
            "cycles_per_second": dict(_speeds),
            "offline_gain": gain,
        })
        assert gain > 1.5


def test_online_decode_matches_results():
    """The ablation variant is still architecturally correct."""
    reference = _fresh()
    reference.run_to_completion()
    online = _fresh()
    cycles = _run_online_decode(online)
    assert cycles == reference.stats.cycles
    assert online.state.dump() == reference.state.dump()
