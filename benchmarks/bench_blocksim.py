"""Block-compiled simulation speed (paper §6.2, one generation further).

The compiled-code simulator burns operands into per-instruction closures;
the block backend goes one step further and compiles whole basic blocks
into single exec-generated Python functions with one batched write-back
per exit.  Measured here, per Table-1 architecture: cycles/second for the
compiled backend vs the block backend on the same steady-state kernels,
plus a bit-for-bit state check between the two.

A third question rides along: what do dataflow proof certificates buy?
A certified simulator (``proofs=True``) elides the per-dispatch deopt
guards and fuses superblock chains; on a hot loop split across
jump-joined blocks it must beat the guarded simulator by at least
1.05x while producing the identical run.

``BENCH_blocksim.json`` carries the machine-readable results; CI's
bench-regression job fails the build if the block backend drops under a
2x speedup or the architectural state diverges.  Set
``REPRO_BENCH_SMOKE=1`` for a fast low-confidence run (CI smoke mode).
"""

import os
import time

import pytest

from conftest import record, record_json
from _kernels import preload_for, speed_program

from repro.arch import description_for
from repro.asm import Assembler
from repro.gensim import simulator_for
from repro.gensim.blocksim import BlockSimulator

ARCHES = ["risc16", "acc8", "spam", "spam2"]
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
TABLE = "Block-compiled simulation (Table-1 architectures)"

MIN_ELISION_SPEEDUP = 1.05

#: hot loop split across blocks joined by unconditional jumps: the
#: certified simulator fuses the chain and runs it guard-free
ELIDE_SOURCE = """
        ldi r0, #200
        ldi r1, #0
        ldi r2, #0
        jmp loop
loop:   add r1, r1, r0
        jmp body
body:   sub r0, r0, #1
        bne loop - .
        st (r2), r1
        halt
"""

_speeds = {}
_state_match = {}
_block_stats = {}
_proof_results = {}


def _fresh(arch, backend):
    desc, program = speed_program(arch)
    sim = simulator_for(desc, backend)
    for storage, contents in preload_for(arch).items():
        for index, value in contents.items():
            sim.write(storage, value, index)
    sim.load_words(program.words, program.origin)
    return desc, sim


def _rerun(desc, sim):
    # The halt flag persists across reset() by design — clear it or the
    # rerun halts on entry with zero cycles.
    sim.write(desc.attributes["halt_flag"], 0)
    sim.reset()
    return sim.run_to_completion().cycles


def _states_equal(desc, a, b):
    for storage in desc.storages.values():
        if storage.addressed:
            for index in range(storage.depth):
                if a.read(storage.name, index) != b.read(storage.name, index):
                    return False
        elif a.read(storage.name) != b.read(storage.name):
            return False
    return True


@pytest.mark.parametrize("arch", ARCHES)
def test_block_state_matches_compiled(arch):
    desc, block = _fresh(arch, "block")
    _, compiled = _fresh(arch, "compiled")
    block_result = block.run_to_completion()
    compiled_result = compiled.run_to_completion()
    match = (
        block_result.cycles == compiled_result.cycles
        and block_result.instructions == compiled_result.instructions
        and _states_equal(desc, block, compiled)
    )
    _state_match[arch] = match
    assert match, f"{arch}: block backend diverged from compiled"


def _chain_sim(proofs):
    desc = description_for("risc16")
    sim = BlockSimulator(desc, proofs=proofs)
    program = Assembler(desc).assemble(ELIDE_SOURCE, filename="chain.s")
    sim.load_words(program.words, program.origin)
    return desc, sim


def test_certified_guard_elision_speedup():
    sims = {}
    runs = {}
    for proofs in (False, True):
        desc, sim = _chain_sim(proofs)
        runs[proofs] = sim.run_to_completion()  # warm the block table
        sims[proofs] = (desc, sim)
    # proofs must not change what the program computes
    assert runs[True] == runs[False]

    reps = 3 if SMOKE else 20
    rounds = 3 if SMOKE else 8
    times = {False: [], True: []}
    # ABBA interleave so machine-speed drift hits both flavours equally
    for _ in range(rounds):
        for proofs in (True, False, False, True):
            desc, sim = sims[proofs]
            start = time.perf_counter()
            for _ in range(reps):
                _rerun(desc, sim)
            times[proofs].append(time.perf_counter() - start)
    guarded = min(times[False]) / reps
    certified = min(times[True]) / reps
    speedup = guarded / certified

    stats = sims[True][1].block_stats
    assert stats.fused_blocks >= 1, "no superblock chain formed"
    assert stats.chain_dispatches > 0
    assert stats.deopts == 0, "certified hot loop still deopted"
    _proof_results.update({
        "guarded_s": guarded,
        "certified_s": certified,
        "elision_speedup": speedup,
        "fused_blocks": stats.fused_blocks,
        "chain_dispatches": stats.chain_dispatches,
        "certified_deopts": stats.deopts,
    })
    record(TABLE, f"- risc16 hot loop: certified (guards elided, chains "
                  f"fused) over guarded **{speedup:.2f}x**")
    assert speedup >= MIN_ELISION_SPEEDUP, (
        f"guard elision buys only {speedup:.2f}x "
        f"(floor {MIN_ELISION_SPEEDUP}x)"
    )


@pytest.mark.parametrize("mode", ["compiled", "block"])
@pytest.mark.parametrize("arch", ARCHES)
def test_simulation_speed(benchmark, arch, mode):
    desc, sim = _fresh(arch, mode)
    _rerun(desc, sim)  # warm the dispatch cache before timing

    def run():
        return _rerun(desc, sim)

    if SMOKE:
        cycles = benchmark.pedantic(run, rounds=3, iterations=1)
    else:
        cycles = benchmark(run)
    cps = cycles / benchmark.stats.stats.mean
    _speeds[(arch, mode)] = cps
    record(TABLE, f"- {arch} / {mode}: **{cps:,.0f} cycles/sec**")
    if mode == "block":
        stats = sim.block_stats
        _block_stats[arch] = {
            "hits": stats.hits,
            "misses": stats.misses,
            "deopts": stats.deopts,
            "interp_steps": stats.interp_steps,
            "residue_writes": stats.residue_writes,
        }
    if len(_speeds) == len(ARCHES) * 2:
        _finalize()


def _finalize():
    speedups = {
        arch: _speeds[(arch, "block")] / _speeds[(arch, "compiled")]
        for arch in ARCHES
    }
    for arch, gain in speedups.items():
        record(TABLE, f"- {arch}: block over compiled **{gain:.1f}x**")
    record_json("blocksim", {
        "config": {"arches": ARCHES, "smoke": SMOKE},
        "cycles_per_second": {
            f"{arch}.{mode}": cps for (arch, mode), cps in _speeds.items()
        },
        "speedup_over_compiled": speedups,
        "state_match": _state_match,
        "block_stats": _block_stats,
        "proofs": _proof_results,
    })
    # Lenient in-file floor (the target is 5x on a quiet machine); CI's
    # bench-regression job enforces the same floor from the JSON.
    worst = min(speedups, key=speedups.get)
    assert speedups[worst] >= 2.0, (
        f"block backend too slow on {worst}: {speedups[worst]:.2f}x"
    )
