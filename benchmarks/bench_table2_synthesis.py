"""Table 2 — hardware synthesis statistics for SPAM and SPAM2.

Paper (§6.1, Table 2): for each processor, the cycle length (ns), lines of
generated Verilog, die size (grid cells), and synthesis time (s).  The
original numbers came from Synopsys + LSI 10K; ours from the calibrated
technology model (see DESIGN.md).  The shape to reproduce: the 4-way FP
SPAM is several times larger and slower-clocked than the reduced 3-way
integer SPAM2, with synthesis runtimes of seconds.
"""

import pytest

from conftest import record, record_json

from repro.arch import description_for
from repro.hgen import synthesize

_rows = {}


@pytest.mark.parametrize("arch", ["spam", "spam2"])
def test_table2_synthesis(benchmark, arch):
    desc = description_for(arch)

    model = benchmark(lambda: synthesize(desc))
    _rows[arch] = model
    record(
        "Table 2 — hardware synthesis statistics",
        f"- **{desc.name}**: cycle {model.cycle_ns:.1f} ns,"
        f" {model.verilog_lines} lines of Verilog,"
        f" die {model.die_size:,.0f} grid cells"
        f" (core {model.core_die_size:,.0f} excl. memory macros),"
        f" synthesis {benchmark.stats.stats.mean:.3f} s",
    )
    assert model.cycle_ns > 0
    assert model.verilog_lines > 100
    if "spam" in _rows and "spam2" in _rows:
        spam, spam2 = _rows["spam"], _rows["spam2"]
        ratio = spam.core_die_size / spam2.core_die_size
        record(
            "Table 2 — hardware synthesis statistics",
            f"- SPAM/SPAM2 core-die ratio: **{ratio:.1f}x** — the FP VLIW"
            " is much larger, as in the paper",
        )
        assert spam.core_die_size > 2 * spam2.core_die_size
        assert spam.verilog_lines > spam2.verilog_lines
        assert spam.cycle_ns >= spam2.cycle_ns
        record_json("table2_synthesis", {
            "config": {"archs": ["spam", "spam2"]},
            "rows": {
                name: {
                    "cycle_ns": m.cycle_ns,
                    "verilog_lines": m.verilog_lines,
                    "die_size": m.die_size,
                    "core_die_size": m.core_die_size,
                }
                for name, m in _rows.items()
            },
            "core_die_ratio": ratio,
        })
