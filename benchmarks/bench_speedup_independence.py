"""Claim §6.1 — "the speedup factor is independent of the target
architecture since for complex architectures both simulators slow down by
the same factor."

Measured by repeating the Table 1 comparison on all four example
architectures: the ILS/gate-model speedup should stay in the same order of
magnitude from the 8-bit accumulator machine to the 4-way FP VLIW, even
though absolute speeds differ widely.
"""

import pytest

from conftest import record, record_json
from _kernels import preload_for, speed_program

from repro.gensim.xsim import XSim
from repro.hgen import synthesize
from repro.vsim.gatesim import GateLevelSimulator

ARCHS = ["acc8", "risc16", "spam2", "spam"]

_speedups = {}


def _run_ils(arch):
    desc, program = speed_program(arch)
    sim = XSim(desc)
    for storage, contents in preload_for(arch).items():
        for index, value in contents.items():
            sim.write(storage, value, index)
    sim.load_words(program.words, program.origin)
    sim.run_to_completion()
    return sim.stats.cycles


@pytest.mark.parametrize("arch", ARCHS)
def test_speedup_independence(benchmark, arch):
    desc, program = speed_program(arch)
    model = synthesize(desc)

    cycles = benchmark(lambda: _run_ils(arch))
    ils_cps = cycles / benchmark.stats.stats.mean

    import time

    hw = GateLevelSimulator(desc, model.netlist)
    for storage, contents in preload_for(arch).items():
        for index, value in contents.items():
            hw.write(storage, value, index)
    hw.load_words(program.words, program.origin)
    start = time.perf_counter()
    hw.run()
    hw_cps = hw.cycle / (time.perf_counter() - start)

    speedup = ils_cps / hw_cps
    _speedups[arch] = speedup
    record(
        "§6.1 claim — speedup independent of architecture",
        f"- {desc.name:8s}: ILS {ils_cps:>9,.0f} c/s, gate model"
        f" {hw_cps:>8,.0f} c/s ({hw.gate_count} gates) →"
        f" speedup **{speedup:.1f}x**",
    )
    if len(_speedups) == len(ARCHS):
        values = sorted(_speedups.values())
        spread = values[-1] / values[0]
        record(
            "§6.1 claim — speedup independent of architecture",
            f"- max/min speedup spread: **{spread:.1f}x** across a 60x"
            " range of machine complexity (paper: 'independent of the"
            " target architecture')",
        )
        # Same order of magnitude across all architectures.
        assert spread < 12.0
        record_json("speedup_independence", {
            "config": {"archs": ARCHS},
            "speedups": dict(_speedups),
            "spread": spread,
        })
