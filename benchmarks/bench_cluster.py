"""Cluster scaling: jobs/s for 1 vs 2 vs 4 worker shards.

A cold-cache burst of *distinct* candidates — spam2 variants whose data
memory is resized, so every fingerprint (and thus every shard key) is
different — is driven through the router at each fleet size.  Workers
are real subprocesses, so this measures what sharding actually buys:
multiple Python processes evaluating concurrently instead of threads
time-slicing one GIL.

The candidate set is chosen so the 2-shard rendezvous table splits it
exactly in half (placement is deterministic: shard ids are stable and
keys are content hashes), making the 2-vs-1 comparison a fair load
balance rather than a hash-luck lottery.  ``REPRO_BENCH_SMOKE=1``
shrinks the burst for CI.

Measured: wall time and jobs/s per fleet size, the per-shard job split,
and the 2-vs-1 speedup.  The headline claim — 2 shards >= 1.5x the
throughput of 1 — is asserted whenever the host has at least 2 CPUs;
on a single-core host process sharding cannot beat one process at
CPU-bound simulation, so the run records its numbers (overhead data is
still useful) and skips the scaling assertion with an explicit reason.
"""

import os
import shutil
import tempfile
import threading
import time

import pytest
from conftest import record, record_json

from repro.arch import description_for
from repro.cluster import (
    ClusterRouter,
    ShardTable,
    Supervisor,
    rendezvous_rank,
    router_in_thread,
)
from repro.explore import transforms
from repro.isdl import fingerprint, load_string, print_description
from repro.serve import ServeClient

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

SHARD_COUNTS = (1, 2) if SMOKE else (1, 2, 4)
#: distinct candidates per burst (split evenly over a 2-shard table)
BURST = 8 if SMOKE else 16
#: several kernels per job so evaluation dominates the HTTP round trip
WORKLOADS = ["sum:200", "blockmove:64"] if SMOKE else \
    ["sum:200", "sum:197", "blockmove:64", "blockmove:61"]
MAX_STEPS = 500_000


def _candidate_pool():
    """Distinct-candidate ISDL sources keyed by their shard key.

    spam2 with its data memory resized: every depth is a structurally
    different description (different fingerprint, different die size)
    whose workloads still fit.
    """
    base = description_for("spam2")
    pool = []
    for index in range(BURST * 4):
        depth = 256 + 8 * index
        variant = transforms.resize_memory(base, "DM", depth)
        text = print_description(variant)
        key = fingerprint(load_string(text, validate=False))
        pool.append((key, text))
    return pool


def _balanced_burst():
    """BURST candidates, exactly half owned by each of s0/s1."""
    per_shard = BURST // 2
    chosen = {"s0": [], "s1": []}
    for key, text in _candidate_pool():
        owner = rendezvous_rank(key, ("s0", "s1"))[0]
        if len(chosen[owner]) < per_shard:
            chosen[owner].append(text)
        if all(len(v) >= per_shard for v in chosen.values()):
            break
    assert all(len(v) == per_shard for v in chosen.values())
    # interleave so both shards see work from the first submission on
    return [text for pair in zip(chosen["s0"], chosen["s1"])
            for text in pair]


def _run_burst(shards, candidates):
    """One cold fleet of *shards* workers; returns timing + split."""
    data_dir = tempfile.mkdtemp(prefix=f"bench-cluster-{shards}-")
    supervisor = Supervisor(count=shards, data_dir=data_dir,
                            worker_args=["--workers", "4"])
    router_server = None
    try:
        supervisor.start()
        supervisor.wait_healthy(timeout_s=120.0)
        router = ClusterRouter(ShardTable(supervisor.shard_specs()),
                               probe_interval_s=30.0)
        router_server, _ = router_in_thread(router)
        client = ServeClient(router_server.url, timeout=60.0)

        job_ids = []
        failures = []
        begun = time.perf_counter()
        for source in candidates:  # fire first...
            answer = client.submit({
                "isdl": source, "workloads": WORKLOADS,
                "backend": "xsim", "max_steps": MAX_STEPS,
                "timeout_s": 120.0,
            })
            job_ids.append(answer["id"])

        lock = threading.Lock()

        def poll(job_id):  # ...then poll concurrently
            final = client.wait(job_id, timeout=300.0,
                                poll_max_s=0.05)
            if final["state"] != "succeeded":
                with lock:
                    failures.append(final)

        pollers = [threading.Thread(target=poll, args=(job_id,))
                   for job_id in job_ids]
        for thread in pollers:
            thread.start()
        for thread in pollers:
            thread.join()
        wall = time.perf_counter() - begun
        assert not failures, failures[:3]

        split = {}
        for job_id in job_ids:
            shard = job_id.rsplit("-", 1)[0]
            split[shard] = split.get(shard, 0) + 1
        return {
            "shards": shards,
            "wall_s": wall,
            "jobs_per_s": len(job_ids) / wall,
            "split": dict(sorted(split.items())),
        }
    finally:
        if router_server is not None:
            router_server.shutdown_router()
            router_server.server_close()
        supervisor.stop()
        shutil.rmtree(data_dir, ignore_errors=True)


def test_shard_scaling_on_a_cold_mixed_burst():
    cores = len(os.sched_getaffinity(0)) \
        if hasattr(os, "sched_getaffinity") else os.cpu_count() or 1
    candidates = _balanced_burst()
    results = [_run_burst(count, candidates)
               for count in SHARD_COUNTS]
    by_count = {r["shards"]: r for r in results}

    # the fleet really spread the burst at 2 shards: the chosen
    # candidate set splits half and half by construction
    two = by_count[2]
    assert set(two["split"].values()) == {len(candidates) // 2}, two

    speedup_2v1 = two["jobs_per_s"] / by_count[1]["jobs_per_s"]

    table = (f"Cluster scaling: {len(candidates)}-candidate cold burst"
             f" (distinct fingerprints)")
    for result in results:
        split = ", ".join(f"{shard}:{count}" for shard, count
                          in result["split"].items())
        record(table,
               f"- {result['shards']} shard(s): "
               f"{result['jobs_per_s']:6.1f} jobs/s, "
               f"wall {result['wall_s']:5.2f} s  [{split}]")
    record(table, f"- 2-vs-1 speedup {speedup_2v1:.2f}x"
                  f" ({cores} CPU(s) available)")
    record_json("cluster", {
        "jobs": len(candidates),
        "workloads": WORKLOADS,
        "smoke": SMOKE,
        "cpus": cores,
        "runs": results,
        "speedup_2v1": speedup_2v1,
        "scaling_asserted": cores >= 2,
    })

    if cores < 2:
        pytest.skip(
            f"single-CPU host: measured {speedup_2v1:.2f}x 2-vs-1"
            f" (recorded); process sharding cannot scale CPU-bound"
            f" simulation past 1 core"
        )
    assert speedup_2v1 >= 1.5, (
        f"2-shard speedup {speedup_2v1:.2f}x < 1.5x"
        f" ({two['jobs_per_s']:.1f} vs"
        f" {by_count[1]['jobs_per_s']:.1f} jobs/s)"
    )
