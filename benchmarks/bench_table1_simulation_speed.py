"""Table 1 — simulation speed: XSIM (ILS) vs the synthesizable model.

Paper (§6.1, Table 1): on the SPAM 4-way FP VLIW, the generated XSIM
simulator is substantially faster than simulating the synthesizable Verilog
(Cadence Verilog-XL ran the Verilog model at 879 cycles/sec on a Sun Ultra
30/300; the XSIM figure is not legible in the available scan, but the text
calls the speedup "substantial" and architecture-independent).

Here: the generated ILS versus gate-level simulation of the HGEN netlist
for the same description.  Absolute numbers differ (Python on a modern
machine vs compiled C on a 1997 workstation); the *shape* to reproduce is
ILS ≫ hardware-model simulation, by roughly an order of magnitude or more.
"""

import pytest

from conftest import record, record_json
from _kernels import preload_for, speed_program

from repro.gensim.xsim import XSim
from repro.hgen import synthesize
from repro.vsim.gatesim import GateLevelSimulator

ARCH = "spam"

_measured = {}


def _fresh_ils():
    desc, program = speed_program(ARCH)
    sim = XSim(desc)
    for storage, contents in preload_for(ARCH).items():
        for index, value in contents.items():
            sim.write(storage, value, index)
    sim.load_words(program.words, program.origin)
    return sim


@pytest.fixture(scope="module")
def spam_model():
    desc, _ = speed_program(ARCH)
    return synthesize(desc)


def _fresh_gate(model):
    desc, program = speed_program(ARCH)
    hw = GateLevelSimulator(desc, model.netlist)
    for storage, contents in preload_for(ARCH).items():
        for index, value in contents.items():
            hw.write(storage, value, index)
    hw.load_words(program.words, program.origin)
    return hw


def test_table1_xsim_ils_speed(benchmark):
    """Row 1: the generated instruction-level simulator."""

    def run():
        sim = _fresh_ils()
        sim.run_to_completion()
        return sim.stats.cycles

    cycles = benchmark(run)
    cps = cycles / benchmark.stats.stats.mean
    _measured["ils"] = cps
    record(
        "Table 1 — simulation speed (SPAM)",
        f"- XSIM (ILS) simulator: **{cps:,.0f} cycles/sec**"
        f" (paper: value illegible in scan; 'substantially faster')",
    )


def test_table1_hardware_model_speed(benchmark, spam_model):
    """Row 2: gate-level simulation of the synthesizable model."""

    def run():
        hw = _fresh_gate(spam_model)
        hw.run()
        return hw.cycle

    cycles = benchmark(run)
    cps = cycles / benchmark.stats.stats.mean
    _measured["hw"] = cps
    record(
        "Table 1 — simulation speed (SPAM)",
        f"- Synthesizable model (gate level,"
        f" {_fresh_gate(spam_model).gate_count} gates):"
        f" **{cps:,.0f} cycles/sec** (paper: 879 cycles/sec)",
    )
    if "ils" in _measured:
        speedup = _measured["ils"] / cps
        record(
            "Table 1 — simulation speed (SPAM)",
            f"- **Speedup: {speedup:.1f}x** — the ILS wins by roughly an"
            " order of magnitude, matching the paper's shape",
        )
        record_json("table1_simulation_speed", {
            "config": {"arch": ARCH},
            "ils_cycles_per_second": _measured["ils"],
            "gate_cycles_per_second": cps,
            "speedup": speedup,
        })
        assert speedup > 4.0, "ILS should clearly outrun the gate model"
