; ISDL601 bait: the two instructions after `jmp done` are unreachable.
; ISDL605 bait: OUT is written here and read by no program.
        ldi #5
        add #2
        jmp done
        ldi #99
        add #1
done:   out
        sta 10
        halt
