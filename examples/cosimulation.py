#!/usr/bin/env python3
"""Bit-true co-simulation: ILS vs the synthesized hardware model (§3.1).

Both generated models — the XSIM instruction-level simulator and the HGEN
hardware model — are "cycle-accurate and bit-true by construction".  This
example runs every bundled workload on three models of increasing fidelity
cost and compares every storage element:

1. the generated ILS,
2. word-level simulation of the HGEN netlist,
3. gate-level simulation of the bit-blasted netlist (the Table-1 baseline).

Run:  python examples/cosimulation.py
"""

import time

from repro.arch import ARCHITECTURES, description_for, workloads_for
from repro.asm import Assembler
from repro.hgen import synthesize
from repro.vsim import cosimulate
from repro.vsim.gatesim import GateLevelSimulator


def main() -> None:
    for arch in sorted(ARCHITECTURES):
        desc = description_for(arch)
        model = synthesize(desc)
        print(f"{desc.name}: netlist {len(model.netlist.cells)} cells,"
              f" gate level "
              f"{GateLevelSimulator(desc, model.netlist).gate_count} gates")
        for workload in workloads_for(arch):
            program = Assembler(desc).assemble(workload.source)
            # ILS vs word-level netlist
            result = cosimulate(desc, model.netlist, program.words,
                                program.origin, preload=workload.preload)
            # gate-level run of the same program
            gate = GateLevelSimulator(desc, model.netlist)
            for storage, contents in workload.preload.items():
                for index, value in contents.items():
                    gate.write(storage, value, index)
            gate.load_words(program.words, program.origin)
            start = time.perf_counter()
            gate.run()
            gate_time = time.perf_counter() - start
            gate_ok = all(
                gate.read(storage, index) == value
                for storage, contents in workload.expected.items()
                for index, value in contents.items()
            )
            verdict = "bit-exact" if result.ok and gate_ok else "MISMATCH!"
            print(f"   {workload.name:18s} {verdict:10s}"
                  f" ils={result.ils_cycles:4d} cyc,"
                  f" gate={gate.cycle:4d} cyc"
                  f" ({gate.cycle / gate_time:6,.0f} cycles/s at gate"
                  " level)")
            if not result.ok:
                for mismatch in result.mismatches[:3]:
                    print("      ", mismatch)
        print()
    print("every storage element of every model agrees — the"
          " 'bit-true by construction' claim of the paper, demonstrated.")


if __name__ == "__main__":
    main()
