; ISDL602 bait: no reachable instruction raises the halt flag and
; control never leaves the loaded image — provably never halts.
        ldi #1
loop:   add #1
        jmp loop
