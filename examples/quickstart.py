#!/usr/bin/env python3
"""Quickstart: describe a processor in ISDL, generate its tools, run code.

This walks the core loop of the methodology on the bundled RISC16
description: load the machine description, let GENSIM generate a
cycle-accurate bit-true simulator, assemble a small program with the
retargetable assembler, execute it with breakpoints/monitors/traces, and
read the performance statistics.

Run:  python examples/quickstart.py
"""

from repro import assemble, generate_simulator
from repro.arch import risc16
from repro.gensim.trace import ListTrace

PROGRAM = """
; compute sum of squares 1^2 + 2^2 + ... + 5^2 via repeated addition
        ldi r0, #5          ; n
        ldi r1, #0          ; total
outer:  mov r2, r0          ; multiplicand counter
        ldi r3, #0          ; square accumulator
inner:  add r3, r3, r0
        sub r2, r2, #1
        bne inner - .
        add r1, r1, r3      ; total += n*n
        sub r0, r0, #1
        bne outer - .
        st (r4), r1         ; DM[0] = 55
        halt
"""


def main() -> None:
    # 1. The machine description (ISDL text; see repro/arch/risc16.py).
    desc = risc16.description()
    print(f"description: {desc.name}, {desc.word_width}-bit instructions,"
          f" {sum(len(f.operations) for f in desc.fields)} operations")

    # 2. GENSIM: generate the simulator (validates the description and the
    #    decodability of its assembly function first).
    sim = generate_simulator(desc)

    # 3. The retargetable assembler is driven by the same description.
    program = assemble(desc, PROGRAM)
    sim.load_words(program.words, program.origin)
    print("\noff-line disassembly of the loaded program:")
    for line in sim.disassembly_listing():
        print("   ", line)

    # 4. Debugging facilities: monitor a state element, trace execution.
    sim.watch("DM", 0)
    trace = ListTrace()
    sim.set_trace(trace)

    # 5. Run to the halt instruction.
    stats = sim.run_to_completion()
    print(f"\nresult: DM[0] = {sim.read('DM', 0)} (expected 55)")
    print(f"monitor fired: {sim.monitor_messages}")
    print(f"trace captured {len(trace.records)} instructions;"
          f" first: {trace.records[0].disassembly!r}")

    # 6. Performance measurements — the numbers Figure 1 feeds on.
    print("\n" + stats.report(desc))


if __name__ == "__main__":
    main()
