#!/usr/bin/env python3
"""HGEN: synthesize hardware models from the ISDL descriptions (paper §4).

For every bundled architecture this runs the full synthesis pipeline —
node extraction, the resource-sharing compatibility matrix, maximal-clique
allocation, datapath + decode-logic generation, Verilog emission, and the
technology-model estimates — and prints a Table-2-style report.  It also
shows the paper's §4.2 decode-line equations and writes the generated
Verilog next to this script.

Run:  python examples/hardware_synthesis.py
"""

import os

from repro.arch import ARCHITECTURES, description_for
from repro.encoding import SignatureTable
from repro.hgen import decode_lines_for, estimate_power, synthesize


def main() -> None:
    out_dir = os.path.join(os.path.dirname(__file__), "generated")
    os.makedirs(out_dir, exist_ok=True)

    print(f"{'processor':10s} {'cycle':>8s} {'clock':>8s} {'Verilog':>8s}"
          f" {'core die':>10s} {'full die':>10s} {'FUs':>4s} {'synth':>7s}")
    print("-" * 72)
    for arch in sorted(ARCHITECTURES):
        desc = description_for(arch)
        model = synthesize(desc)
        power = estimate_power(desc, model.netlist, model.clock_mhz,
                               area=model.area)
        print(f"{desc.name:10s} {model.cycle_ns:6.1f}ns"
              f" {model.clock_mhz:5.0f}MHz"
              f" {model.verilog_lines:6d}ln"
              f" {model.core_die_size:10,.0f}"
              f" {model.die_size:10,.0f}"
              f" {model.shared_unit_count:4d}"
              f" {model.synthesis_seconds:6.3f}s")
        path = os.path.join(out_dir, f"{arch}.v")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(model.verilog)

    # Resource sharing at work (paper §4.1): naive vs shared on SPAM.
    desc = description_for("spam")
    naive = synthesize(desc, share=False)
    shared = synthesize(desc, share=True)
    print(f"\nresource sharing on {desc.name}:"
          f" {naive.shared_unit_count} naive FU instances ->"
          f" {shared.shared_unit_count} after clique allocation"
          f" ({naive.core_die_size - shared.core_die_size:,.0f} grid cells"
          " saved)")

    # Decode equations (paper §4.2, in the style of Fig. 3's example).
    table = SignatureTable(desc)
    print("\ndecode-line equations (first five operations):")
    for line in decode_lines_for(table, desc)[:5]:
        print(f"   {line.name:12s} = {line.equation()}")

    print(f"\ngenerated Verilog written to {out_dir}/")


if __name__ == "__main__":
    main()
