#!/usr/bin/env python3
"""DSP kernels on the SPAM 4-way floating-point VLIW (the paper's target).

Runs the bundled floating-point workloads — dot product, vector scale, and
the maximum-width instruction exercising 4 operations plus 3 parallel moves
— on the generated ILS, and prints per-field utilization: exactly the
measurements the architecture-exploration loop uses to find idle hardware.

Run:  python examples/vliw_dsp_kernels.py
"""

from repro import fp
from repro.arch import run_workload, spam, workloads_for


def main() -> None:
    desc = spam.description()
    print(f"target: {desc.name} — {len(desc.fields)} VLIW fields"
          f" ({', '.join(f.name for f in desc.fields)})")
    print(f"constraints: {len(desc.constraints)} (e.g. the load/store unit"
          " borrows the MV3 bus)\n")

    for workload in workloads_for("spam"):
        sim = run_workload(workload)  # asserts the expected results
        stats = sim.stats
        print(f"{workload.name}: {workload.description}")
        print(f"   {stats.instructions} instructions,"
              f" {stats.cycles} cycles (CPI {stats.cpi:.2f},"
              f" {stats.stall_cycles} stalls — hand-scheduled)")
        utilization = stats.field_utilization(desc)
        bars = "  ".join(
            f"{name}:{util * 100:3.0f}%"
            for name, util in utilization.items()
        )
        print(f"   field utilization: {bars}")
        # show a floating-point result bit-true
        for storage, contents in workload.expected.items():
            for index, bits in contents.items():
                print(f"   {storage}[{index}] = 0x{bits:08x}"
                      f" = {fp.bits_to_float(bits)!r}")
                break
            break
        print()

    print("low FP-field utilization on integer-heavy code is the signal"
          " the explorer\nuses to propose dropping hardware —"
          " see examples/architecture_exploration.py")


if __name__ == "__main__":
    main()
