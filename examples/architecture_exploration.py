#!/usr/bin/env python3
"""The full Figure-1 loop: architecture exploration by iterative improvement.

An embedded product team has integer DSP kernels (dot product, block move,
saturating accumulate) and a deadline.  Starting from the general-purpose
SPAM 4-way FP VLIW, the explorer:

1. compiles the kernels with the retargetable code generator,
2. runs them on the generated ILS (cycles + utilization statistics),
3. synthesizes the hardware model (cycle length, die size, power),
4. folds everything into a cost, and
5. applies measurement-guided transforms (drop unused operations, drop
   idle functional units, narrow the register file, serialize fields) —
   regenerating every tool from the new ISDL description each iteration.

Run:  python examples/architecture_exploration.py
"""

from repro.cache import ArtifactCache
from repro.codegen import Cond, KernelBuilder, Opcode
from repro.arch import description_for
from repro.explore import (
    CostWeights,
    Explorer,
    evaluation_table,
    exploration_report,
)
from repro.isdl import print_description


def dot_product_kernel(n=8):
    K = KernelBuilder("dot")
    a_ptr = K.li(0)
    b_ptr = K.li(16)
    count = K.li(n)
    acc = K.li(0)
    K.label("loop")
    a = K.load(a_ptr)
    b = K.load(b_ptr)
    # integer multiply-accumulate via shift-add (no multiplier needed)
    partial = K.li(0)
    bit = K.li(8)
    K.label("mul")
    masked = K.and_(b, 1)
    K.cbr(Cond.EQ, masked, 0, "skip")
    K.binary_into(partial, Opcode.ADD, partial, a)
    K.label("skip")
    K.binary_into(a, Opcode.SHL, a, 1)
    K.binary_into(b, Opcode.SHR, b, 1)
    K.binary_into(bit, Opcode.SUB, bit, 1)
    K.cbr(Cond.NE, bit, 0, "mul")
    K.binary_into(acc, Opcode.ADD, acc, partial)
    K.binary_into(a_ptr, Opcode.ADD, a_ptr, 1)
    K.binary_into(b_ptr, Opcode.ADD, b_ptr, 1)
    K.binary_into(count, Opcode.SUB, count, 1)
    K.cbr(Cond.NE, count, 0, "loop")
    K.store(K.li(40), acc)
    return K.build()


def block_move_kernel(n=12):
    K = KernelBuilder("blockmove")
    src = K.li(0)
    dst = K.li(64)
    count = K.li(n)
    K.label("loop")
    K.store(dst, K.load(src))
    K.binary_into(src, Opcode.ADD, src, 1)
    K.binary_into(dst, Opcode.ADD, dst, 1)
    K.binary_into(count, Opcode.SUB, count, 1)
    K.cbr(Cond.NE, count, 0, "loop")
    return K.build()


def main() -> None:
    kernels = [dot_product_kernel(), block_move_kernel()]
    # an embedded cost function: runtime matters, but so do silicon and power
    weights = CostWeights(runtime=1.0, area=0.5, power=0.4)
    # the parallel cache-backed engine: candidate evaluations fan out over
    # a worker pool and every generated artifact is memoized by the
    # description's structural fingerprint
    cache = ArtifactCache()
    explorer = Explorer(kernels, weights, cache=cache)

    initial = description_for("spam")
    print(f"initial architecture: {initial.name}"
          f" ({len(initial.fields)}-field VLIW with floating point)\n")

    log = explorer.explore(initial, max_iterations=5)

    print(exploration_report(log))
    print()
    print(evaluation_table(
        [candidate.evaluation for candidate in log.accepted], weights
    ))

    best = log.best
    print(f"\nthe final candidate is a complete ISDL description"
          f" ({best.desc.name}):")
    text = print_description(best.desc)
    head = "\n".join(text.splitlines()[:12])
    print(head)
    print(f"... ({len(text.splitlines())} lines total — every tool"
          " regenerates from this single document)")
    print()
    print(cache.stats.report())


if __name__ == "__main__":
    main()
