"""Unit tests for the repro.obs metrics registry."""

import pickle

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    HistogramData,
    MetricsRegistry,
    MetricsSnapshot,
)


def test_counter_accumulates():
    reg = MetricsRegistry()
    reg.add("sim.cycles", 10)
    reg.add("sim.cycles", 5)
    snap = reg.snapshot()
    assert snap.counters["sim.cycles"] == 15


def test_counter_handle_shared():
    reg = MetricsRegistry()
    a = reg.counter("x")
    b = reg.counter("x")
    a.inc(2)
    b.inc(3)
    assert reg.snapshot().counters["x"] == 5


def test_gauge_takes_last_value():
    reg = MetricsRegistry()
    reg.set("pool.workers", 4)
    reg.set("pool.workers", 8)
    assert reg.snapshot().gauges["pool.workers"] == 8


def test_histogram_buckets_and_mean():
    reg = MetricsRegistry()
    reg.observe("lat", 0.0005)
    reg.observe("lat", 0.05)
    reg.observe("lat", 100.0)  # beyond the last bucket -> overflow slot
    data = reg.snapshot().histograms["lat"]
    assert data.count == 3
    assert data.total == pytest.approx(100.0505)
    assert sum(data.counts) == 3
    assert data.counts[-1] == 1  # overflow
    assert data.mean == pytest.approx(100.0505 / 3)


def test_histogram_default_buckets_sorted():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


def test_snapshot_merge_adds_counters_and_histograms():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.add("n", 1)
    b.add("n", 2)
    a.observe("h", 0.01)
    b.observe("h", 0.02)
    b.set("g", 7)
    a.merge(b.snapshot())
    snap = a.snapshot()
    assert snap.counters["n"] == 3
    assert snap.histograms["h"].count == 2
    assert snap.gauges["g"] == 7


def test_snapshot_merged_classmethod_deterministic():
    parts = []
    for i in range(3):
        reg = MetricsRegistry()
        reg.add("n", i + 1)
        reg.observe("stage.sim.run", 0.01 * (i + 1))
        parts.append(reg.snapshot())
    merged = MetricsSnapshot.merged(parts)
    assert merged.counters["n"] == 6
    assert merged.histograms["stage.sim.run"].count == 3
    # merging again in the same order gives identical content
    again = MetricsSnapshot.merged(parts)
    assert again.to_dict() == merged.to_dict()


def test_merge_rejects_mismatched_bucket_layouts():
    a = HistogramData(buckets=(0.1, 1.0), counts=[0, 0, 0])
    b = HistogramData(buckets=(0.5, 5.0), counts=[1, 0, 0])
    with pytest.raises(ValueError):
        a.merge(b)


def test_snapshot_round_trips_through_dict_and_pickle():
    reg = MetricsRegistry()
    reg.add("c", 2)
    reg.set("g", 1.5)
    reg.observe("h", 0.3)
    snap = reg.snapshot()
    assert MetricsSnapshot.from_dict(snap.to_dict()).to_dict() == snap.to_dict()
    clone = pickle.loads(pickle.dumps(snap))
    assert clone.counters == snap.counters
    assert clone.histograms["h"].count == 1


def test_snapshot_is_a_copy_not_a_view():
    reg = MetricsRegistry()
    reg.add("c")
    snap = reg.snapshot()
    reg.add("c")
    assert snap.counters["c"] == 1
    assert reg.snapshot().counters["c"] == 2


def test_stage_table_lists_stage_histograms_only():
    reg = MetricsRegistry()
    reg.observe("stage.sim.run", 0.5)
    reg.observe("stage.sim.run", 0.25)
    reg.add("stage.sim.run.cpu_s", 0.6)
    reg.observe("unrelated", 1.0)
    snap = reg.snapshot()
    assert snap.stage_names() == ["sim.run"]
    table = snap.stage_table()
    assert "sim.run" in table
    assert "unrelated" not in table
    assert "2" in table  # the call count column


def test_registry_clear():
    reg = MetricsRegistry()
    reg.add("c")
    reg.observe("h", 1.0)
    reg.clear()
    snap = reg.snapshot()
    assert not snap.counters and not snap.histograms


def test_report_mentions_counters():
    reg = MetricsRegistry()
    reg.add("sim.runs", 3)
    assert "sim.runs" in reg.report()
