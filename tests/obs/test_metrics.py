"""Unit tests for the repro.obs metrics registry."""

import pickle

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    HistogramData,
    MetricsRegistry,
    MetricsSnapshot,
)


def test_counter_accumulates():
    reg = MetricsRegistry()
    reg.add("sim.cycles", 10)
    reg.add("sim.cycles", 5)
    snap = reg.snapshot()
    assert snap.counters["sim.cycles"] == 15


def test_counter_handle_shared():
    reg = MetricsRegistry()
    a = reg.counter("x")
    b = reg.counter("x")
    a.inc(2)
    b.inc(3)
    assert reg.snapshot().counters["x"] == 5


def test_gauge_takes_last_value():
    reg = MetricsRegistry()
    reg.set("pool.workers", 4)
    reg.set("pool.workers", 8)
    assert reg.snapshot().gauges["pool.workers"] == 8


def test_histogram_buckets_and_mean():
    reg = MetricsRegistry()
    reg.observe("lat", 0.0005)
    reg.observe("lat", 0.05)
    reg.observe("lat", 100.0)  # beyond the last bucket -> overflow slot
    data = reg.snapshot().histograms["lat"]
    assert data.count == 3
    assert data.total == pytest.approx(100.0505)
    assert sum(data.counts) == 3
    assert data.counts[-1] == 1  # overflow
    assert data.mean == pytest.approx(100.0505 / 3)


def test_histogram_default_buckets_sorted():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


def test_snapshot_merge_adds_counters_and_histograms():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.add("n", 1)
    b.add("n", 2)
    a.observe("h", 0.01)
    b.observe("h", 0.02)
    b.set("g", 7)
    a.merge(b.snapshot())
    snap = a.snapshot()
    assert snap.counters["n"] == 3
    assert snap.histograms["h"].count == 2
    assert snap.gauges["g"] == 7


def test_snapshot_merged_classmethod_deterministic():
    parts = []
    for i in range(3):
        reg = MetricsRegistry()
        reg.add("n", i + 1)
        reg.observe("stage.sim.run", 0.01 * (i + 1))
        parts.append(reg.snapshot())
    merged = MetricsSnapshot.merged(parts)
    assert merged.counters["n"] == 6
    assert merged.histograms["stage.sim.run"].count == 3
    # merging again in the same order gives identical content
    again = MetricsSnapshot.merged(parts)
    assert again.to_dict() == merged.to_dict()


def test_merge_rejects_mismatched_bucket_layouts():
    a = HistogramData(buckets=(0.1, 1.0), counts=[0, 0, 0])
    b = HistogramData(buckets=(0.5, 5.0), counts=[1, 0, 0])
    with pytest.raises(ValueError):
        a.merge(b)


def test_snapshot_round_trips_through_dict_and_pickle():
    reg = MetricsRegistry()
    reg.add("c", 2)
    reg.set("g", 1.5)
    reg.observe("h", 0.3)
    snap = reg.snapshot()
    assert MetricsSnapshot.from_dict(snap.to_dict()).to_dict() == snap.to_dict()
    clone = pickle.loads(pickle.dumps(snap))
    assert clone.counters == snap.counters
    assert clone.histograms["h"].count == 1


def test_snapshot_is_a_copy_not_a_view():
    reg = MetricsRegistry()
    reg.add("c")
    snap = reg.snapshot()
    reg.add("c")
    assert snap.counters["c"] == 1
    assert reg.snapshot().counters["c"] == 2


def test_stage_table_lists_stage_histograms_only():
    reg = MetricsRegistry()
    reg.observe("stage.sim.run", 0.5)
    reg.observe("stage.sim.run", 0.25)
    reg.add("stage.sim.run.cpu_s", 0.6)
    reg.observe("unrelated", 1.0)
    snap = reg.snapshot()
    assert snap.stage_names() == ["sim.run"]
    table = snap.stage_table()
    assert "sim.run" in table
    assert "unrelated" not in table
    assert "2" in table  # the call count column


def test_registry_clear():
    reg = MetricsRegistry()
    reg.add("c")
    reg.observe("h", 1.0)
    reg.clear()
    snap = reg.snapshot()
    assert not snap.counters and not snap.histograms


def test_report_mentions_counters():
    reg = MetricsRegistry()
    reg.add("sim.runs", 3)
    assert "sim.runs" in reg.report()


# ----------------------------------------------------------------------
# Thread safety (per-handle locks)
# ----------------------------------------------------------------------


def test_concurrent_increments_are_exact():
    import threading

    reg = MetricsRegistry()
    rounds, workers = 5_000, 8
    barrier = threading.Barrier(workers)

    def worker():
        barrier.wait()
        counter = reg.counter("hot")
        for _ in range(rounds):
            counter.inc()
            reg.gauge("depth").add(1)
            reg.observe("lat", 0.002)

    threads = [threading.Thread(target=worker) for _ in range(workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    snap = reg.snapshot()
    assert snap.counters["hot"] == rounds * workers
    assert snap.gauges["depth"] == rounds * workers
    assert snap.histograms["lat"].count == rounds * workers


def test_snapshot_and_merge_race_writers_without_losing_updates():
    import threading

    reg = MetricsRegistry()
    incoming = MetricsRegistry()
    incoming.add("c", 10)
    incoming.observe("h", 0.01)
    foreign = incoming.snapshot()
    stop = threading.Event()

    def reader():
        while not stop.is_set():
            reg.snapshot()

    def merger():
        for _ in range(200):
            reg.merge(foreign)

    def writer():
        for _ in range(10_000):
            reg.add("c")
            reg.observe("h", 0.02)

    threads = [threading.Thread(target=f)
               for f in (reader, merger, merger, writer, writer)]
    for thread in threads:
        thread.start()
    for thread in threads[1:]:
        thread.join()
    stop.set()
    threads[0].join()
    snap = reg.snapshot()
    assert snap.counters["c"] == 2 * 10_000 + 2 * 200 * 10
    assert snap.histograms["h"].count == 2 * 10_000 + 2 * 200


def test_histogram_merge_data_rejects_mismatched_buckets():
    from repro.obs.metrics import Histogram, HistogramData

    hist = Histogram("h", buckets=(0.1, 1.0))
    other = HistogramData((0.5, 2.0), [1, 0, 0], 0.2, 1)
    with pytest.raises(ValueError):
        hist.merge_data(other)


def test_handles_do_not_share_a_lock():
    reg = MetricsRegistry()
    # per-handle locking is the documented memory model: a stalled
    # observer of one metric must never block writers of another
    a = reg.counter("a")
    b = reg.counter("b")
    with a._lock:
        assert b._lock.acquire(timeout=0.5)
        b._lock.release()
