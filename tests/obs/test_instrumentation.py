"""Integration tests: the obs facade and the instrumented tool chain."""

import json

import pytest

from repro import obs
from repro.arch import description_for
from repro.cache import ArtifactCache
from repro.codegen import Cond, KernelBuilder, Opcode
from repro.explore import Explorer, ParallelEvaluator
from repro.explore.parallel import EvalRequest
from repro.hgen import synthesize


@pytest.fixture(autouse=True)
def _reset_obs():
    """Every test starts and ends with observability off and stateless."""
    obs.disable(reset=True)
    yield
    obs.disable(reset=True)


def _kernel():
    K = KernelBuilder("sum")
    cnt = K.li(5)
    acc = K.li(0)
    K.label("loop")
    K.binary_into(acc, Opcode.ADD, acc, cnt)
    K.binary_into(cnt, Opcode.SUB, cnt, 1)
    K.cbr(Cond.NE, cnt, 0, "loop")
    K.store(K.li(0), acc)
    return K.build()


# ----------------------------------------------------------------------
# Facade semantics
# ----------------------------------------------------------------------


def test_disabled_by_default_and_noop():
    assert not obs.enabled()
    assert obs.registry() is None
    with obs.span("anything", attr=1):  # shared null span
        obs.add("counter")
        obs.observe("hist", 1.0)
        obs.gauge_set("gauge", 2.0)
    assert obs.registry() is None


def test_enable_disable_round_trip():
    reg = obs.enable()
    assert obs.enabled() and obs.registry() is reg
    obs.add("c")
    assert reg.snapshot().counters["c"] == 1
    obs.disable()
    assert not obs.enabled() and obs.registry() is None
    # state survives a plain disable; enable() resumes the same registry
    assert obs.enable() is reg
    obs.disable(reset=True)
    assert obs.enable() is not reg


def test_capture_scopes_and_merges():
    obs.enable()
    obs.add("outer")
    with obs.capture() as cap:
        obs.add("inner", 2)
    assert cap.snapshot.counters == {"inner": 2.0}
    # the capture merged back into the global registry
    total = obs.registry().snapshot().counters
    assert total["outer"] == 1 and total["inner"] == 2


def test_capture_nests():
    obs.enable()
    with obs.capture() as outer:
        obs.add("a")
        with obs.capture() as inner:
            obs.add("b")
    assert inner.snapshot.counters == {"b": 1.0}
    assert outer.snapshot.counters == {"a": 1.0, "b": 1.0}


def test_capture_while_disabled_yields_none():
    with obs.capture() as cap:
        obs.add("ignored")
    assert cap.snapshot is None


def test_spans_record_into_capture_registry():
    obs.enable()
    with obs.capture() as cap:
        with obs.span("sigtest"):
            pass
    assert cap.snapshot.histograms["stage.sigtest"].count == 1


# ----------------------------------------------------------------------
# Tool-chain instrumentation
# ----------------------------------------------------------------------


def test_synthesis_emits_stage_spans(spam2_desc):
    obs.enable()
    synthesize(spam2_desc)
    stages = obs.tracer().stage_names()
    for expected in ("hgen.synthesize", "hgen.nodes", "hgen.sharing",
                     "hgen.datapath", "hgen.verilog", "hgen.estimate"):
        assert expected in stages
    assert obs.registry().snapshot().counters["hgen.syntheses"] == 1


def test_exploration_covers_six_plus_stages_and_valid_trace(tmp_path):
    obs.enable()
    explorer = Explorer([_kernel()], cache=ArtifactCache(),
                        parallel="serial")
    log = explorer.explore(description_for("spam2"), max_iterations=1)
    path = tmp_path / "trace.json"
    obs.tracer().write_chrome_trace(str(path))
    names = obs.validate_chrome_trace(json.loads(path.read_text()))
    assert len(names) >= 6
    for expected in ("explore.sweep", "explore.evaluate", "sim.run",
                     "hgen.synthesize", "asm.assemble", "isdl.check"):
        assert expected in names
    assert log.profiles  # per-candidate profiles captured


def test_exploration_log_profiles_and_merged(spam2_desc):
    obs.enable()
    explorer = Explorer([_kernel()], cache=ArtifactCache(),
                        parallel="serial")
    log = explorer.explore(spam2_desc, max_iterations=1)
    # the initial candidate and each proposal have a profile
    assert spam2_desc.name in log.profiles
    assert len(log.profiles) >= 2
    merged = log.merged_profile()
    assert merged.stage_names()
    assert merged.counters["sim.runs"] >= 1
    # a disabled run produces no profiles
    obs.disable(reset=True)
    log2 = Explorer([_kernel()], cache=ArtifactCache(),
                    parallel="serial").explore(spam2_desc, max_iterations=1)
    assert log2.profiles == {} and log2.merged_profile() is None


def test_simulator_counters(risc16_desc):
    from repro.asm import Assembler
    from repro.gensim.xsim import XSim

    obs.enable()
    sim = XSim(risc16_desc)
    sim.watch("RF")
    program = Assembler(risc16_desc).assemble(
        "ldi r0, #3\nadd r1, r1, r0\nhalt\n"
    )
    sim.load_words(program.words, program.origin)
    sim.run_to_completion()
    counters = obs.registry().snapshot().counters
    assert counters["sim.runs"] == 1
    assert counters["sim.cycles"] >= 1
    assert counters["sim.instructions"] >= 2
    assert counters["sim.monitor_hits"] >= 2


def test_cache_counters_reach_registry(spam2_desc):
    obs.enable()
    cache = ArtifactCache(max_entries=1)
    cache.signature_table(spam2_desc)   # miss
    cache.signature_table(spam2_desc)   # hit
    cache.fast_core(spam2_desc)         # miss + evicts the sigtable
    counters = obs.registry().snapshot().counters
    assert counters["cache.misses"] == 2
    assert counters["cache.hits"] == 1
    assert counters["cache.evictions"] == 1
    # the obs counters agree with the cache's own stats
    assert cache.stats.misses == 2 and cache.stats.hits == 1
    assert cache.stats.evictions == 1


# ----------------------------------------------------------------------
# Parallel evaluator: snapshot shipping and deterministic merge
# ----------------------------------------------------------------------


def _structural(counters):
    return {k: v for k, v in counters.items() if not k.endswith(".cpu_s")}


@pytest.mark.parametrize("mode", ["serial", "thread", "process"])
def test_eval_results_carry_profiles(mode, spam2_desc):
    obs.enable()
    evaluator = ParallelEvaluator([_kernel()], cache=ArtifactCache(),
                                  mode=mode, max_workers=2)
    try:
        requests = [EvalRequest(spam2_desc, label=f"c{i}")
                    for i in range(3)]
        results = evaluator.evaluate_many(requests)
    finally:
        evaluator.shutdown()
    assert all(r.ok for r in results)
    assert all(r.obs is not None for r in results)
    # somebody actually simulated the kernel (later requests may be
    # cache hits whose profile records no run)
    total_runs = sum(r.obs.counters.get("sim.runs", 0) for r in results)
    assert total_runs >= 1
    # worker metrics landed in the parent registry too
    assert obs.registry().snapshot().counters["sim.runs"] >= 1


def test_process_pool_merge_is_deterministic(spam2_desc):
    def run():
        obs.enable()
        evaluator = ParallelEvaluator([_kernel()], cache=ArtifactCache(),
                                      mode="process", max_workers=2)
        try:
            results = evaluator.evaluate_many([
                EvalRequest(spam2_desc, label="a"),
                EvalRequest(description_for("risc16"), label="b"),
            ])
        finally:
            evaluator.shutdown()
        snap = obs.registry().snapshot()
        obs.disable(reset=True)
        return results, snap

    results1, snap1 = run()
    results2, snap2 = run()
    assert [r.label for r in results1] == [r.label for r in results2]
    assert _structural(snap1.counters) == _structural(snap2.counters)
    hist1 = {k: v.count for k, v in snap1.histograms.items()}
    hist2 = {k: v.count for k, v in snap2.histograms.items()}
    assert hist1 == hist2


def test_disabled_run_ships_no_snapshots(spam2_desc):
    evaluator = ParallelEvaluator([_kernel()], cache=ArtifactCache(),
                                  mode="process", max_workers=2)
    try:
        results = evaluator.evaluate_many(
            [EvalRequest(spam2_desc), EvalRequest(description_for("risc16"))]
        )
    finally:
        evaluator.shutdown()
    assert all(r.ok for r in results)
    assert all(r.obs is None for r in results)


# ----------------------------------------------------------------------
# Span export through the TraceSink lifecycle
# ----------------------------------------------------------------------


def test_span_file_trace_exports_records(tmp_path):
    obs.enable()
    with obs.span("outer"):
        with obs.span("inner", file="x"):
            pass
    path = tmp_path / "spans.txt"
    with obs.open_span_trace(str(path)) as sink:
        for record in obs.tracer().finished():
            sink.emit(record)
    text = path.read_text()
    assert "outer" in text and "inner" in text
    assert "file=x" in text
    # nested span is indented deeper than its parent
    inner_line = next(l for l in text.splitlines() if "inner" in l)
    assert inner_line.startswith("  ")


# ----------------------------------------------------------------------
# The repro-obs entry point
# ----------------------------------------------------------------------


def test_cli_writes_all_artifacts(tmp_path):
    from repro.obs.cli import main

    assert main(["--arch", "spam2", "--iterations", "1",
                 "--out", str(tmp_path)]) == 0
    trace = json.loads((tmp_path / "obs_trace.json").read_text())
    assert len(obs.validate_chrome_trace(trace)) >= 6
    bench = json.loads((tmp_path / "BENCH_obs_sweep.json").read_text())
    assert bench["bench"] == "obs_sweep"
    assert bench["candidates_profiled"] >= 1
    assert len(bench["stages"]) >= 6
    profile = (tmp_path / "obs_profile.txt").read_text()
    assert "sim.run" in profile and "cache:" in profile
    # the CLI cleaned up after itself
    assert not obs.enabled()


def test_cli_rejects_unknown_arch(tmp_path, capsys):
    from repro.obs.cli import main

    assert main(["--arch", "nope", "--out", str(tmp_path)]) == 2
    assert "unknown architecture" in capsys.readouterr().err
