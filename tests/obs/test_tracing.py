"""Unit tests for the repro.obs span tracer and Chrome trace export."""

import json
import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer, validate_chrome_trace


def test_span_records_wall_and_cpu_time():
    tracer = Tracer()
    with tracer.span("work"):
        sum(range(1000))
    (record,) = tracer.finished()
    assert record.name == "work"
    assert record.dur_us >= 0
    assert record.cpu_us >= 0
    assert record.depth == 0


def test_spans_nest_and_record_depth():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    records = {r.name: r for r in tracer.finished()}
    assert records["outer"].depth == 0
    assert records["inner"].depth == 1
    # inner finishes first (completion order)
    assert [r.name for r in tracer.finished()] == ["inner", "outer"]


def test_span_attributes_and_set():
    tracer = Tracer()
    with tracer.span("stage", candidate="spam") as span:
        span.set(cycles=42)
    (record,) = tracer.finished()
    assert record.attrs == {"candidate": "spam", "cycles": 42}


def test_finished_spans_feed_the_registry():
    registry = MetricsRegistry()
    tracer = Tracer(registry=registry)
    with tracer.span("sim.run"):
        pass
    snap = registry.snapshot()
    assert snap.histograms["stage.sim.run"].count == 1
    assert "stage.sim.run.cpu_s" in snap.counters


def test_registry_provider_callable():
    registry = MetricsRegistry()
    tracer = Tracer(registry=lambda: registry)
    with tracer.span("x"):
        pass
    assert registry.snapshot().histograms["stage.x"].count == 1


def test_threads_keep_separate_span_stacks():
    tracer = Tracer()

    def worker():
        with tracer.span("threaded"):
            pass

    with tracer.span("main"):
        t = threading.Thread(target=worker)
        t.start()
        t.join()
    records = {r.name: r for r in tracer.finished()}
    # the thread's span is top-level on its own stack, not nested in main's
    assert records["threaded"].depth == 0
    assert records["threaded"].thread_id != records["main"].thread_id


def test_chrome_trace_shape_and_validation():
    tracer = Tracer()
    with tracer.span("a", category="toolchain", file="x.isdl"):
        with tracer.span("b"):
            pass
    payload = tracer.chrome_trace()
    assert payload["displayTimeUnit"] == "ms"
    names = validate_chrome_trace(payload)
    assert names == ["a", "b"]
    for event in payload["traceEvents"]:
        assert event["ph"] == "X"
        assert event["ts"] >= 0 and event["dur"] >= 0
        assert "cpu_ms" in event["args"]


def test_write_chrome_trace_is_loadable_json(tmp_path):
    tracer = Tracer()
    with tracer.span("stage"):
        pass
    path = tmp_path / "trace.json"
    tracer.write_chrome_trace(str(path))
    loaded = json.loads(path.read_text())
    assert validate_chrome_trace(loaded) == ["stage"]


def test_validate_rejects_malformed_payloads():
    with pytest.raises(ValueError):
        validate_chrome_trace("nope")
    with pytest.raises(ValueError):
        validate_chrome_trace({"traceEvents": "nope"})
    with pytest.raises(ValueError):
        validate_chrome_trace([{"name": "x"}])  # missing ph/ts/pid/tid
    with pytest.raises(ValueError):
        validate_chrome_trace([
            {"name": "x", "cat": "c", "ph": "X", "ts": 0.0,
             "pid": 1, "tid": 1}  # complete event without dur
        ])
    with pytest.raises(ValueError):
        validate_chrome_trace([
            {"name": "x", "cat": "c", "ph": "X", "ts": -1.0, "dur": 1.0,
             "pid": 1, "tid": 1}
        ])


def test_validate_accepts_bare_array_form():
    events = [
        {"name": "x", "cat": "c", "ph": "X", "ts": 0.0, "dur": 2.5,
         "pid": 1, "tid": 7},
    ]
    assert validate_chrome_trace(events) == ["x"]


def test_text_profile_aggregates_calls():
    tracer = Tracer()
    for _ in range(3):
        with tracer.span("repeat"):
            pass
    profile = tracer.text_profile()
    assert "repeat" in profile
    assert "3" in profile


def test_clear_and_stage_names():
    tracer = Tracer()
    with tracer.span("z"):
        pass
    with tracer.span("a"):
        pass
    assert tracer.stage_names() == ["a", "z"]
    tracer.clear()
    assert tracer.finished() == []
