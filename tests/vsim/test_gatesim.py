"""Tests for the gate-level (bit-blasted) simulator."""

import pytest

from repro.arch import ARCHITECTURES, description_for, workloads_for
from repro.asm import Assembler
from repro.hgen import synthesize
from repro.vsim.gatesim import GateLevelSimulator, GateNetlist
from repro.vsim.simulator import NetlistSimulator


@pytest.fixture(scope="module")
def risc16_model(risc16_desc):
    return synthesize(risc16_desc)


@pytest.fixture(scope="module")
def risc16_gate(risc16_desc, risc16_model):
    return GateLevelSimulator(risc16_desc, risc16_model.netlist)


def test_gate_count_scales_with_architecture():
    counts = {}
    for arch in ("acc8", "spam"):
        desc = description_for(arch)
        model = synthesize(desc)
        counts[arch] = GateLevelSimulator(desc, model.netlist).gate_count
    assert counts["spam"] > 3 * counts["acc8"]
    assert counts["acc8"] > 100


def test_gate_netlist_reports_macro_fallbacks(spam_desc):
    model = synthesize(spam_desc)
    gn = GateNetlist(spam_desc, model.netlist)
    # FP units must be macro cells, not gates
    assert any(m.startswith("fp_") for m in gn.macro_cells)


CASES = [
    (arch, w)
    for arch in sorted(ARCHITECTURES)
    for w in workloads_for(arch)
]


@pytest.mark.parametrize(
    "arch,workload", CASES, ids=[f"{a}-{w.name}" for a, w in CASES]
)
def test_gate_level_matches_word_level(arch, workload):
    """Bit-blasting must not change behaviour: gate-level and word-level
    runs of the same netlist end in identical state."""
    desc = description_for(arch)
    model = synthesize(desc)
    program = Assembler(desc).assemble(workload.source)
    results = []
    for simulator_class in (NetlistSimulator, GateLevelSimulator):
        sim = simulator_class(desc, model.netlist)
        for storage, contents in workload.preload.items():
            for index, value in contents.items():
                sim.write(storage, value, index)
        sim.load_words(program.words, program.origin)
        sim.run()
        results.append((sim.cycle, sim.dump()))
    assert results[0] == results[1]


def test_expected_results_at_gate_level(risc16_desc, risc16_model):
    from repro.arch.workloads import risc16_sum_loop

    workload = risc16_sum_loop(7)
    sim = GateLevelSimulator(risc16_desc, risc16_model.netlist)
    program = Assembler(risc16_desc).assemble(workload.source)
    sim.load_words(program.words, program.origin)
    sim.run()
    assert sim.read("DM", 0) == 28


def test_signed_branch_offsets_work_at_gate_level(
    risc16_desc, risc16_model
):
    # backwards branch = negative sign-extended displacement through the
    # bit-blasted adder
    source = """
        ldi r0, #3
loop:   sub r0, r0, #1
        bne loop - .
        halt
"""
    sim = GateLevelSimulator(risc16_desc, risc16_model.netlist)
    program = Assembler(risc16_desc).assemble(source)
    sim.load_words(program.words, program.origin)
    sim.run()
    assert sim.read("RF", 0) == 0
    assert sim.cycle == 8  # 1 + 3*2 + 1


def test_barrel_shifter_bits(risc16_desc, risc16_model):
    source = """
        ldi r0, #1
        shl r1, r0, #9
        ldi r2, #128
        shr r3, r2, #3
        halt
"""
    sim = GateLevelSimulator(risc16_desc, risc16_model.netlist)
    program = Assembler(risc16_desc).assemble(source)
    sim.load_words(program.words, program.origin)
    sim.run()
    assert sim.read("RF", 1) == 1 << 9
    assert sim.read("RF", 3) == 128 >> 3


def test_gate_count_property(risc16_gate):
    # every gate writes a distinct output bit (pure combinational SSA)
    outs = [gate[1] for gate in risc16_gate.gate_netlist.gates]
    assert len(outs) == len(set(outs))


def test_shared_netlist_gate_sim_agrees(risc16_desc):
    source = "ldi r0, #9\nadd r1, r1, r0\nst (r2), r1\nhalt\n"
    dumps = []
    for share in (False, True):
        model = synthesize(risc16_desc, share=share)
        sim = GateLevelSimulator(risc16_desc, model.netlist)
        program = Assembler(risc16_desc).assemble(source)
        sim.load_words(program.words, program.origin)
        sim.run()
        dumps.append(sim.dump())
    assert dumps[0] == dumps[1]
