"""Tests for the netlist-level simulator."""

import pytest

from repro.asm import Assembler
from repro.errors import SimulationError
from repro.hgen import synthesize
from repro.vsim import NetlistSimulator


@pytest.fixture(scope="module")
def model(risc16_desc):
    return synthesize(risc16_desc)


def make_sim(desc, model, source):
    hw = NetlistSimulator(desc, model.netlist)
    program = Assembler(desc).assemble(source)
    hw.load_words(program.words, program.origin)
    return hw


def test_single_instruction(risc16_desc, model):
    hw = make_sim(risc16_desc, model, "ldi r3, #9\nhalt\n")
    hw.run()
    assert hw.read("RF", 3) == 9


def test_pc_increments_each_cycle(risc16_desc, model):
    hw = make_sim(risc16_desc, model, "nop\nnop\nhalt\n")
    hw.step()
    assert hw.read("PC") == 1
    hw.step()
    assert hw.read("PC") == 2


def test_branch_updates_pc(risc16_desc, model):
    hw = make_sim(risc16_desc, model, "jmp 2\nnop\nhalt\n")
    hw.run()
    assert hw.cycle == 2  # jmp + halt


def test_loop_executes(risc16_desc, model):
    hw = make_sim(risc16_desc, model, """
        ldi r0, #3
        ldi r1, #0
loop:   add r1, r1, r0
        sub r0, r0, #1
        bne loop - .
        halt
""")
    hw.run()
    assert hw.read("RF", 1) == 6


def test_memory_write_and_read(risc16_desc, model):
    hw = make_sim(risc16_desc, model, """
        ldi r0, #77
        ldi r1, #5
        st (r1), r0
        ld r2, (r1)
        halt
""")
    hw.run()
    assert hw.read("DM", 5) == 77
    assert hw.read("RF", 2) == 77


def test_side_effect_flags(risc16_desc, model):
    hw = make_sim(risc16_desc, model, "ldi r0, #1\nsub r1, r0, #1\nhalt\n")
    hw.run()
    # result 0 -> Z (CCR bit 1) set
    assert (hw.read("CCR") >> 1) & 1 == 1


def test_run_without_halt_raises(risc16_desc, model):
    hw = make_sim(risc16_desc, model, "loop: jmp loop\n")
    with pytest.raises(SimulationError):
        hw.run(max_cycles=50)


def test_write_masks_to_storage_width(risc16_desc, model):
    hw = NetlistSimulator(risc16_desc, model.netlist)
    hw.write("RF", 0x12345, 0)
    assert hw.read("RF", 0) == 0x2345


def test_dump_snapshot(risc16_desc, model):
    hw = make_sim(risc16_desc, model, "ldi r0, #1\nhalt\n")
    hw.run()
    snap = hw.dump()
    assert snap["RF"][0] == 1
    assert snap["HALTED"] == 1


def test_latency_staging_in_hardware(spam_desc):
    model = synthesize(spam_desc)
    hw = NetlistSimulator(spam_desc, model.netlist)
    program = Assembler(spam_desc).assemble("""
        ldi r1, #3
        ldi r2, #4
        add r3, r1, r2      ; integer add, latency 1
        fadd r4, r1, r1     ; latency 2: commits one cycle later
        inop
        halt
""")
    hw.load_words(program.words, program.origin)
    hw.run()
    assert hw.read("RF", 3) == 7


def test_shared_and_unshared_netlists_agree(risc16_desc):
    source = """
        ldi r0, #10
        ldi r1, #0
loop:   add r1, r1, r0
        sub r0, r0, #1
        bne loop - .
        st (r2), r1
        halt
"""
    results = []
    for share in (False, True):
        model = synthesize(risc16_desc, share=share)
        hw = NetlistSimulator(risc16_desc, model.netlist)
        program = Assembler(risc16_desc).assemble(source)
        hw.load_words(program.words, program.origin)
        hw.run()
        results.append(hw.dump())
    assert results[0] == results[1]
