"""Whole-tool-chain round trips.

The deepest invariant of the methodology: assembly text, machine words,
decoded operations, and rendered disassembly are all views of the same
instruction, through tools independently generated from one description.

    asm text --assemble--> word --disassemble--> operands
       ^                                             |
       +---------- render (syntax templates) <-------+

Property-tested with random operand bindings on every architecture.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import ARCHITECTURES
from repro.asm import Assembler
from repro.encoding.signature import SignatureTable
from repro.gensim.disassembler import DecodedOperation, Disassembler
from repro.gensim.render import render_operation

from tests.gensim.test_disassembler import operation_strategy


@pytest.mark.parametrize("arch", sorted(ARCHITECTURES))
@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_word_to_text_to_word(arch, data):
    """render(disassemble(word)) re-assembles to a word that decodes to
    the same operation and operands."""
    desc = ARCHITECTURES[arch]()
    table = SignatureTable(desc)
    disassembler = Disassembler(desc, table)
    assembler = Assembler(desc, table)

    field_name, op_name, operands = data.draw(operation_strategy(desc))
    word = table.encode_operation(field_name, op_name, operands)
    decoded = disassembler.disassemble(word).operation_in(field_name)
    text = render_operation(desc, decoded)
    program = assembler.assemble(text + "\n")
    redecoded = disassembler.disassemble(program.words[0])
    # The text is field-agnostic: on SPAM, "mov R1, R2" may legally land
    # on any of the three identical move buses.  The invariant is
    # semantic: some field carries the same operation with the same
    # operands (for single-instance operations this is bit-identity).
    matches = [
        op
        for op in redecoded.operations
        if op.op_name == op_name and op.operands == operands
    ]
    assert matches, (
        f"{text!r} lost {field_name}.{op_name} {operands}:"
        f" {redecoded.selection()}"
    )


@pytest.mark.parametrize("arch", sorted(ARCHITECTURES))
def test_assembler_and_simulator_share_signature_tables(arch):
    desc = ARCHITECTURES[arch]()
    table = SignatureTable(desc)
    # one table instance can serve every tool (no hidden state)
    Assembler(desc, table)
    Disassembler(desc, table)


def test_compiler_output_survives_full_loop(risc16_desc):
    """compiler -> assembler -> disassembler -> renderer -> assembler
    yields the identical binary."""
    from repro.codegen import Compiler, Cond, KernelBuilder, Opcode

    K = KernelBuilder()
    n = K.li(4)
    acc = K.li(0)
    K.label("loop")
    K.binary_into(acc, Opcode.ADD, acc, n)
    K.binary_into(n, Opcode.SUB, n, 1)
    K.cbr(Cond.NE, n, 0, "loop")
    K.store(K.li(0), acc)
    kernel = K.build()

    assembler = Assembler(risc16_desc)
    first = Compiler(risc16_desc).compile_to_words(kernel)
    disassembler = Disassembler(risc16_desc)
    lines = []
    for word in first.words:
        decoded = disassembler.disassemble(word)
        lines.append(
            " | ".join(
                render_operation(risc16_desc, op)
                for op in decoded.operations
            )
        )
    second = assembler.assemble("\n".join(lines) + "\n")
    assert second.words == first.words
