"""Smoke tests: every example script runs cleanly end to end."""

import os
import runpy
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "examples"
)

FAST_EXAMPLES = ["quickstart.py", "vliw_dsp_kernels.py"]
SLOW_EXAMPLES = [
    "hardware_synthesis.py",
    "cosimulation.py",
    "architecture_exploration.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES + SLOW_EXAMPLES)
def test_example_runs(script, capsys):
    path = os.path.join(EXAMPLES_DIR, script)
    assert os.path.exists(path), path
    runpy.run_path(path, run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script} produced no output"
    assert "MISMATCH" not in output
    assert "Traceback" not in output


def test_quickstart_computes_expected_result(capsys):
    runpy.run_path(
        os.path.join(EXAMPLES_DIR, "quickstart.py"), run_name="__main__"
    )
    output = capsys.readouterr().out
    assert "DM[0] = 55" in output


def test_examples_list_matches_directory():
    scripts = {
        name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
    }
    assert scripts == set(FAST_EXAMPLES + SLOW_EXAMPLES)
