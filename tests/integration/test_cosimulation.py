"""ILS ↔ hardware-model co-simulation across every architecture.

The paper's central correctness claim (§3.1, §6.1): both generated models
are bit-true by construction, so they must agree on every storage element.
"""

import pytest

from repro.arch import ARCHITECTURES, description_for, workloads_for
from repro.asm import Assembler
from repro.errors import SimulationError
from repro.hgen import synthesize
from repro.vsim import cosimulate

ALL_CASES = [
    (arch, workload)
    for arch in sorted(ARCHITECTURES)
    for workload in workloads_for(arch)
]


@pytest.fixture(scope="module")
def models():
    return {
        arch: synthesize(description_for(arch))
        for arch in sorted(ARCHITECTURES)
    }


@pytest.mark.parametrize(
    "arch,workload", ALL_CASES, ids=[f"{a}-{w.name}" for a, w in ALL_CASES]
)
def test_cosimulation_bit_exact(arch, workload, models):
    desc = description_for(arch)
    program = Assembler(desc).assemble(workload.source)
    result = cosimulate(
        desc,
        models[arch].netlist,
        program.words,
        program.origin,
        preload=workload.preload,
    )
    assert result.ok, result.mismatches[:5]


@pytest.mark.parametrize("arch", sorted(ARCHITECTURES))
def test_cosimulation_without_sharing(arch):
    desc = description_for(arch)
    model = synthesize(desc, share=False)
    for workload in workloads_for(arch)[:1]:
        program = Assembler(desc).assemble(workload.source)
        result = cosimulate(
            desc, model.netlist, program.words, program.origin,
            preload=workload.preload,
        )
        assert result.ok, result.mismatches[:5]


def test_cosimulation_rejects_hazardful_program(spam_desc, models):
    program = Assembler(spam_desc).assemble(
        "fadd r1, r2, r3\nfadd r4, r1, r1\nhalt\n"
    )
    with pytest.raises(SimulationError):
        cosimulate(spam_desc, models["spam"].netlist, program.words)


def test_cosim_reports_cycle_counts(risc16_desc, models):
    program = Assembler(risc16_desc).assemble("ldi r0, #1\nhalt\n")
    result = cosimulate(
        risc16_desc, models["risc16"].netlist, program.words
    )
    assert result.ils_cycles >= 2
    assert result.hw_cycles >= 2


def test_compare_state_detects_difference(risc16_desc, models):
    from repro.gensim.xsim import XSim
    from repro.vsim import NetlistSimulator, compare_state

    ils = XSim(risc16_desc)
    hw = NetlistSimulator(risc16_desc, models["risc16"].netlist)
    ils.write("RF", 1, 0)
    mismatches = compare_state(risc16_desc, ils, hw)
    assert any("RF[0]" in m for m in mismatches)
