"""Tests for the self-checking workload kernels."""

import pytest

from repro import fp
from repro.arch import all_workloads, run_workload, workloads_for
from repro.arch.workloads import (
    risc16_dot_product,
    risc16_fir,
    risc16_sum_loop,
    spam_dot_product,
    spam2_vector_add,
)
from repro.errors import SimulationError

CASES = [(w.arch, w) for w in all_workloads()]


@pytest.mark.parametrize(
    "arch,workload", CASES, ids=[f"{a}-{w.name}" for a, w in CASES]
)
def test_workload_produces_expected_results(arch, workload):
    sim = run_workload(workload)
    assert sim.halted
    assert sim.stats.instructions > 0


@pytest.mark.parametrize(
    "arch,workload", CASES, ids=[f"{a}-{w.name}" for a, w in CASES]
)
def test_workloads_are_hazard_free(arch, workload):
    from repro.arch import prepare

    sim, _ = prepare(workload)
    assert all(s == 0 for s in sim.program.stalls), (
        "workloads must schedule around latencies"
    )


def test_every_architecture_has_workloads():
    for arch in ("risc16", "spam", "spam2", "acc8"):
        assert workloads_for(arch), arch


def test_parameterized_sum_loop():
    sim = run_workload(risc16_sum_loop(20))
    assert sim.read("DM", 0) == 210


def test_dot_product_matches_python():
    a, b = (2, 3, 4), (5, 6, 7)
    sim = run_workload(risc16_dot_product(a, b))
    assert sim.read("DM", 6) == 2 * 5 + 3 * 6 + 4 * 7


def test_fir_matches_python():
    taps = (1, 2)
    samples = (4, 5, 6, 7)
    workload = risc16_fir(taps, samples)
    sim = run_workload(workload)
    # y[i] = x[i] + 2*x[i+1]
    assert sim.read("DM", 64) == 4 + 2 * 5
    assert sim.read("DM", 66) == 6 + 2 * 7


def test_fp_dot_product_is_bit_true():
    a = (1.1, 2.2)
    b = (3.3, -4.4)
    workload = spam_dot_product(a, b)
    sim = run_workload(workload)
    acc = fp.float_to_bits(0.0)
    for x, y in zip(a, b):
        acc = fp.fadd(
            acc, fp.fmul(fp.float_to_bits(x), fp.float_to_bits(y))
        )
    assert sim.read("DM", 4) == acc


def test_vector_add_wraps_16_bit():
    workload = spam2_vector_add((0xFFFF,), (2,))
    sim = run_workload(workload)
    assert sim.read("DM", 32) == 1  # modulo 2^16


def test_run_workload_raises_on_wrong_expectation():
    import dataclasses

    workload = risc16_sum_loop(5)
    broken = dataclasses.replace(workload, expected={"DM": {0: 9999}})
    with pytest.raises(SimulationError):
        run_workload(broken)


def test_workload_descriptions_present():
    for workload in all_workloads():
        assert workload.description
        assert workload.source.strip()
