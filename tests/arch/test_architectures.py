"""Sanity and structure tests for the bundled ISDL descriptions."""

import pytest

from repro.arch import ARCHITECTURES, description_for
from repro.gensim import generate_simulator
from repro.isdl import ast, check


@pytest.mark.parametrize("arch", sorted(ARCHITECTURES))
def test_descriptions_parse_and_check(arch):
    desc = description_for(arch)
    check(desc)  # full semantic validation
    generate_simulator(desc)  # incl. decodability


def test_descriptions_are_cached():
    assert description_for("risc16") is description_for("risc16")


def test_spam_matches_paper_description(spam_desc):
    """'4-way ... that can do 4 operations and 3 parallel moves'."""
    move_fields = [
        f for f in spam_desc.fields if f.name.startswith("MV")
    ]
    op_fields = [
        f for f in spam_desc.fields if not f.name.startswith("MV")
    ]
    assert len(move_fields) == 3
    assert len(op_fields) == 4
    # floating point on two of the operation units
    assert any(
        op.name.startswith("f") for op in spam_desc.field_named("FP1").operations
    )
    assert spam_desc.field_named("FP2").operation("fmul")


def test_spam_is_floating_point(spam_desc):
    from repro.isdl import rtl

    fadd = spam_desc.operation("FP1", "fadd")
    calls = [
        e for e in rtl.walk_exprs(fadd.action[0].expr)
        if isinstance(e, rtl.Call)
    ]
    assert calls and calls[0].func == "fadd"
    assert spam_desc.storages["RF"].width == 32  # single precision


def test_spam2_is_simpler_than_spam(spam_desc, spam2_desc):
    assert len(spam2_desc.fields) == 3  # "a simpler 3-way VLIW"
    spam_ops = sum(len(f.operations) for f in spam_desc.fields)
    spam2_ops = sum(len(f.operations) for f in spam2_desc.fields)
    assert spam2_ops < spam_ops  # "a limited number of operations"
    assert spam2_desc.word_width < spam_desc.word_width


def test_constraints_express_bus_sharing(spam_desc):
    # the §4.1.1 example: memory ops may not issue with the MV3 move
    assert not spam_desc.instruction_valid({"LSU": "st", "MV3": "mov"})
    assert not spam_desc.instruction_valid({"LSU": "ld", "MV3": "mov"})
    assert spam_desc.instruction_valid({"LSU": "st", "MV2": "mov"})


def test_acc8_covers_addressing_modes(acc8_desc):
    memop = acc8_desc.nonterminals["MEMOP"]
    labels = {o.label for o in memop.options}
    assert labels == {"direct", "indexed", "postinc"}
    postinc = memop.option("postinc")
    assert postinc.side_effect  # the auto-increment


def test_acc8_has_stack(acc8_desc):
    assert acc8_desc.storages["STK"].kind is ast.StorageKind.STACK


def test_all_architectures_declare_halt_flags():
    for arch in sorted(ARCHITECTURES):
        desc = description_for(arch)
        flag = desc.attributes["halt_flag"]
        assert flag in desc.storages


def test_word_widths():
    widths = {
        arch: description_for(arch).word_width
        for arch in sorted(ARCHITECTURES)
    }
    assert widths == {"acc8": 16, "risc16": 24, "spam": 96, "spam2": 48}
