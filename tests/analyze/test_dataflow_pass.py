"""Tests for the whole-program dataflow pass (ISDL601..ISDL605).

The ``examples/deadcode.isdl`` description plus its two companion
programs trigger every code exactly once (ISDL605 twice — OUT and Z);
``examples/nohalt.isdl`` triggers the description-level ISDL602.  The
golden file pins codes, spans and messages byte-for-byte.  Regenerate
after an intentional change with::

    PYTHONPATH=src python - <<'EOF'
    import json
    from repro.isdl import load_string
    from repro.analyze import analyze, to_json_payload
    from repro.asm import Assembler
    with open("examples/deadcode.isdl") as fh:
        desc = load_string(fh.read(), filename="deadcode.isdl")
    asm = Assembler(desc)
    programs = []
    for name in ("deadcode.s", "spin.s"):
        program = asm.assemble_file(f"examples/{name}")
        programs.append((name, tuple(program.words), program.origin))
    target = to_json_payload([analyze(desc, programs=programs)])["targets"][0]
    with open("tests/analyze/golden/deadcode.json", "w") as fh:
        json.dump(target, fh, indent=2, sort_keys=True)
        fh.write("\n")
    EOF
"""

import json
import os

import pytest

from repro.analyze import Severity, analyze, to_json_payload
from repro.arch import ARCHITECTURES, description_for
from repro.arch.workloads import workloads_for
from repro.asm import Assembler
from repro.isdl import load_string

HERE = os.path.dirname(__file__)
EXAMPLES = os.path.join(HERE, os.pardir, os.pardir, "examples")
GOLDEN_DIR = os.path.join(HERE, "golden")


def _load_example(name):
    # load by content with a bare filename so diagnostic spans (and the
    # golden file) do not embed the checkout's absolute path
    with open(os.path.join(EXAMPLES, name)) as fh:
        return load_string(fh.read(), filename=name)


def _deadcode():
    desc = _load_example("deadcode.isdl")
    assembler = Assembler(desc)
    programs = []
    for name in ("deadcode.s", "spin.s"):
        program = assembler.assemble_file(os.path.join(EXAMPLES, name))
        programs.append((name, tuple(program.words), program.origin))
    return desc, programs


@pytest.fixture(scope="module")
def deadcode_result():
    desc, programs = _deadcode()
    return analyze(desc, programs=programs)


def test_deadcode_example_matches_golden(deadcode_result):
    got = to_json_payload([deadcode_result])["targets"][0]
    with open(os.path.join(GOLDEN_DIR, "deadcode.json")) as fh:
        want = json.load(fh)
    assert got == want


def test_unreachable_block_isdl601(deadcode_result):
    (finding,) = deadcode_result.by_code("ISDL601")
    assert finding.severity is Severity.WARNING
    assert "deadcode.s" in finding.message
    assert "0x3" in finding.message and "2 instruction(s)" in finding.message


def test_never_halting_program_isdl602(deadcode_result):
    (finding,) = deadcode_result.by_code("ISDL602")
    assert finding.severity is Severity.WARNING
    assert finding.where == "spin.s"  # deadcode.s halts; spin.s spins


def test_always_false_guard_isdl603(deadcode_result):
    (finding,) = deadcode_result.by_code("ISDL603")
    assert finding.severity is Severity.WARNING
    assert finding.where == "OP.debug"
    assert "'0'" in finding.message


def test_dead_conditional_write_isdl604(deadcode_result):
    (finding,) = deadcode_result.by_code("ISDL604")
    assert finding.severity is Severity.WARNING
    assert finding.where == "OP.clamp"
    assert "ACC" in finding.message


def test_program_dead_stores_isdl605(deadcode_result):
    findings = deadcode_result.by_code("ISDL605")
    assert [f.where for f in findings] == ["OUT", "Z"]
    assert all(f.severity is Severity.INFO for f in findings)


def test_without_programs_only_rtl_level_codes_fire():
    desc, _ = _deadcode()
    result = analyze(desc)  # no programs: whole-program lints are off
    codes = {d.code for d in result.diagnostics}
    assert "ISDL603" in codes and "ISDL604" in codes
    assert not codes & {"ISDL601", "ISDL602", "ISDL605"}


def test_nohalt_example_isdl602_description_level():
    desc = _load_example("nohalt.isdl")
    (finding,) = analyze(desc).by_code("ISDL602")
    assert finding.severity is Severity.WARNING
    assert "HALTED" in finding.message and "never written" in finding.message


def test_diagnostics_are_deduped_and_totally_ordered(deadcode_result):
    def key(diagnostic):
        location = diagnostic.location
        loc = (("", 0, 0) if location is None
               else (location.filename or "", location.line,
                     location.column))
        return (diagnostic.code, loc, diagnostic.where, diagnostic.message)

    diagnostics = list(deadcode_result.diagnostics)
    assert diagnostics == sorted(diagnostics, key=key)
    assert len({key(d) for d in diagnostics}) == len(diagnostics)


# ---------------------------------------------------------------------------
# The shipped architectures stay clean
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("arch", sorted(ARCHITECTURES))
def test_shipped_archs_have_no_isdl6xx(arch):
    result = analyze(description_for(arch))
    assert not [d for d in result.diagnostics if d.code.startswith("ISDL6")]


@pytest.mark.parametrize("arch", sorted(ARCHITECTURES))
def test_shipped_archs_with_workloads_warn_nothing(arch):
    desc = description_for(arch)
    assembler = Assembler(desc)
    programs = []
    for workload in workloads_for(arch):
        program = assembler.assemble(workload.source,
                                     filename=f"{workload.name}.s")
        programs.append((workload.name, tuple(program.words),
                         program.origin))
    result = analyze(desc, programs=programs)
    sixes = [d for d in result.diagnostics if d.code.startswith("ISDL6")]
    # program-dead stores (INFO) are legitimate findings on real
    # kernels; anything louder would mean a shipped arch regressed
    assert all(d.severity is Severity.INFO for d in sixes)
    assert all(d.code == "ISDL605" for d in sixes)
