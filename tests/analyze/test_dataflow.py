"""Tests for the worklist dataflow engine and its proof certificates."""

import dataclasses

import pytest

from repro.analyze.dataflow import (
    MAX_CHAIN_LEN,
    DeoptFreedom,
    check_deopt_freedom,
    check_superblock_chains,
    derive_deopt_freedom,
    derive_superblock_chains,
    fixpoint,
    program_facts,
    words_digest,
)
from repro.arch import description_for
from repro.arch.workloads import all_workloads, risc16_sum_loop
from repro.asm import Assembler
from repro.cache import ArtifactCache
from repro.isdl import load_string


def _assemble(desc, source):
    program = Assembler(desc).assemble(source)
    return tuple(program.words), program.origin


#: splits the hot loop across three blocks joined by unconditional
#: jumps — the canonical superblock-fusion candidate
CHAIN_SOURCE = """
        ldi r0, #50
        ldi r1, #0
        ldi r2, #0
        jmp loop
loop:   add r1, r1, r0
        jmp body
body:   sub r0, r0, #1
        bne loop - .
        st (r2), r1
        halt
"""


# ---------------------------------------------------------------------------
# The generic engine
# ---------------------------------------------------------------------------


def test_fixpoint_forward_union():
    # 0 -> 1 -> 2, 2 -> 1 (a loop): gen sets must accumulate along paths
    edges = {0: [1], 1: [2], 2: [1]}

    def transfer(node, incoming):
        return frozenset(incoming | {node})

    result = fixpoint(
        [0, 1, 2], edges, transfer,
        lambda a, b: frozenset(a | b), lambda n: frozenset(),
    )
    assert result[0] == (frozenset(), frozenset({0}))
    # the loop 1 -> 2 -> 1 feeds every gen (1's own included) back in
    assert result[1][0] == frozenset({0, 1, 2})
    assert result[2] == (frozenset({0, 1, 2}), frozenset({0, 1, 2}))


def test_fixpoint_backward_flips_edges():
    edges = {0: [1], 1: [2]}

    def transfer(node, incoming):
        return frozenset(incoming | {node})

    result = fixpoint(
        [0, 1, 2], edges, transfer,
        lambda a, b: frozenset(a | b), lambda n: frozenset(),
        direction="backward",
    )
    # node 0's "in" (what flows back into it) covers every later node
    assert result[0][0] == frozenset({1, 2})
    assert result[2] == (frozenset(), frozenset({2}))


def test_fixpoint_rejects_unknown_direction():
    with pytest.raises(ValueError):
        fixpoint([0], {}, lambda n, f: f, lambda a, b: a, lambda n: 0,
                 direction="sideways")


def test_fixpoint_is_deterministic():
    edges = {n: [(n + 1) % 8, (n + 3) % 8] for n in range(8)}

    def transfer(node, incoming):
        return frozenset(incoming | {node})

    runs = [
        fixpoint(range(8), edges, transfer,
                 lambda a, b: frozenset(a | b), lambda n: frozenset())
        for _ in range(3)
    ]
    assert runs[0] == runs[1] == runs[2]


# ---------------------------------------------------------------------------
# Program facts
# ---------------------------------------------------------------------------


def test_sum_loop_facts_are_complete(risc16_desc):
    words, origin = _assemble(risc16_desc, risc16_sum_loop(5).source)
    facts = program_facts(risc16_desc, words, origin, name="sum_loop")
    assert facts.complete
    assert facts.entry == 0
    assert facts.reachable_offsets == frozenset(range(len(words)))
    assert facts.halting is None  # it does halt, but only dynamically
    assert facts.digest == words_digest(words, origin)


def test_chain_program_block_graph(risc16_desc):
    words, origin = _assemble(risc16_desc, CHAIN_SOURCE)
    facts = program_facts(risc16_desc, words, origin, name="chain")
    assert facts.complete
    assert set(facts.blocks) == {0, 4, 6, 8}
    assert facts.blocks[0].succs == (4,)     # jmp loop
    assert facts.blocks[4].succs == (6,)     # jmp body
    assert facts.blocks[6].succs == (4, 8)   # bne: taken + fall-through
    assert facts.blocks[8].succs == ()       # st; halt — run ends
    # the unconditional jmp resolves to exactly one target
    jmp = facts.instr[3]
    assert jmp.writes_pc and not jmp.conditional_pc
    assert jmp.pc_targets == (4,)


def test_every_workload_has_complete_facts():
    for workload in all_workloads():
        desc = description_for(workload.arch)
        words, origin = _assemble(desc, workload.source)
        facts = program_facts(desc, words, origin, name=workload.name)
        assert facts.complete, workload.name
        assert facts.blocks, workload.name


# ---------------------------------------------------------------------------
# Certificates and their checkers
# ---------------------------------------------------------------------------


def test_deopt_freedom_derives_and_checks(risc16_desc):
    words, origin = _assemble(risc16_desc, CHAIN_SOURCE)
    facts = program_facts(risc16_desc, words, origin)
    cert = derive_deopt_freedom(risc16_desc, facts)
    assert cert is not None
    assert check_deopt_freedom(risc16_desc, words, origin, cert)


def test_deopt_freedom_refused_for_long_latency(spam_desc):
    # SPAM's fp pipes write with latency > 1: a write can outlive its
    # block, so the guard-free loop would be unsound
    source = "fadd r1, r2, r3\nhalt\n"
    words, origin = _assemble(spam_desc, source)
    facts = program_facts(spam_desc, words, origin)
    assert derive_deopt_freedom(spam_desc, facts) is None


def test_checker_rejects_wrong_program(risc16_desc):
    words, origin = _assemble(risc16_desc, CHAIN_SOURCE)
    facts = program_facts(risc16_desc, words, origin)
    cert = derive_deopt_freedom(risc16_desc, facts)
    tampered = words[:-1] + (words[0],)
    assert not check_deopt_freedom(risc16_desc, tampered, origin, cert)


def test_checker_rejects_wrong_description(risc16_desc, spam2_desc):
    words, origin = _assemble(risc16_desc, CHAIN_SOURCE)
    facts = program_facts(risc16_desc, words, origin)
    cert = derive_deopt_freedom(risc16_desc, facts)
    assert not check_deopt_freedom(spam2_desc, words, origin, cert)


def test_checker_rejects_unclosed_cover(risc16_desc):
    words, origin = _assemble(risc16_desc, CHAIN_SOURCE)
    facts = program_facts(risc16_desc, words, origin)
    cert = derive_deopt_freedom(risc16_desc, facts)
    # drop a reachable block from the cover: no longer successor-closed
    holey = dataclasses.replace(
        cert, blocks=tuple(b for b in cert.blocks if b != 4)
    )
    assert not check_deopt_freedom(risc16_desc, words, origin, holey)


def test_superblock_chains_derive_and_check(risc16_desc):
    words, origin = _assemble(risc16_desc, CHAIN_SOURCE)
    facts = program_facts(risc16_desc, words, origin)
    cert = derive_superblock_chains(risc16_desc, facts)
    # prologue->loop->body, plus the loop re-entry chain (overlap is
    # superblock tail duplication)
    assert cert.chains == ((0, 4, 6), (4, 6))
    assert check_superblock_chains(risc16_desc, words, origin, cert)
    for chain in cert.chains:
        total = sum(len(facts.blocks[s].offsets) for s in chain)
        assert total <= MAX_CHAIN_LEN


def test_chain_checker_rejects_broken_link(risc16_desc):
    words, origin = _assemble(risc16_desc, CHAIN_SOURCE)
    facts = program_facts(risc16_desc, words, origin)
    cert = derive_superblock_chains(risc16_desc, facts)
    bogus = dataclasses.replace(cert, chains=((0, 6),))  # skips block 4
    assert not check_superblock_chains(risc16_desc, words, origin, bogus)


def test_no_chains_without_unconditional_links(risc16_desc):
    words, origin = _assemble(risc16_desc, risc16_sum_loop(5).source)
    facts = program_facts(risc16_desc, words, origin)
    cert = derive_superblock_chains(risc16_desc, facts)
    assert cert.chains == ()  # only a conditional branch: nothing fuses


# ---------------------------------------------------------------------------
# Incremental (delta-aware) analysis
# ---------------------------------------------------------------------------

_MINI_TEMPLATE = '''
processor "MINI"

section format
    word 16
end

section global_definitions
    token REG prefix "R" range 0 .. 3
    token IMM4 immediate unsigned width 4
end

section storage
    instruction_memory IM width 16 depth 64
    register_file RF width 8 depth 4
    control_register HALTED width 1
    program_counter PC width 6
end

section instruction_set
    field EX
        operation nop()
            encoding { bits[15:12] = 0b0000 }
        operation addi(d: REG, a: REG, v: IMM4)
            encoding { bits[15:12] = 0b0001; bits[11:10] = d;
                       bits[9:8] = a; bits[7:4] = v }
            action { RF[d] <- RF[a] + %s; }
        operation halt()
            encoding { bits[15:12] = 0b1111 }
            action { HALTED <- 1; }
    end
end

section optional
    attribute halt_flag "HALTED"
end
'''


def test_incremental_reuses_untouched_per_op_facts():
    parent = load_string(_MINI_TEMPLATE % "v", filename="mini.isdl")
    child = load_string(_MINI_TEMPLATE % "(v + 0)", filename="mini2.isdl")
    cache = ArtifactCache()
    words, origin = _assemble(parent, "nop\naddi R1, R0, 3\nhalt\n")
    warm = program_facts(parent, words, origin, cache=cache)
    assert warm.reuse_counts == {"instr_reused": 0, "instr_computed": 3}
    # only addi's definition changed: nop and halt facts carry over
    delta = program_facts(child, words, origin, cache=cache, parent=parent)
    assert delta.reuse_counts == {"instr_reused": 2, "instr_computed": 1}
    assert delta.instr[0] == warm.instr[0]
    assert delta.instr[2] == warm.instr[2]
    assert cache.stats.units_reused["facts"] == 2
    assert cache.stats.units_rebuilt["facts"] == 1
    assert cache.stats.incremental_builds["facts"] == 1


def test_incremental_equals_cold(monkeypatch):
    # the shadow cold build inside program_facts asserts the delta-built
    # facts identical to a from-scratch analysis
    monkeypatch.setenv("REPRO_INCREMENTAL_CHECK", "1")
    parent = load_string(_MINI_TEMPLATE % "v", filename="mini.isdl")
    child = load_string(_MINI_TEMPLATE % "(v + 0)", filename="mini2.isdl")
    cache = ArtifactCache()
    words, origin = _assemble(parent, "nop\naddi R1, R0, 3\nhalt\n")
    program_facts(parent, words, origin, cache=cache)
    delta = program_facts(child, words, origin, cache=cache, parent=parent)
    assert delta.reuse_counts == {"instr_reused": 2, "instr_computed": 1}
