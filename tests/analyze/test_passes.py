"""Tests for the analysis passes and the pass manager."""

import pytest

from repro.analyze import (
    ALL_PASSES,
    AnalysisPass,
    PassContext,
    Severity,
    analyze,
    check_static,
    pass_named,
)
from repro.cache import ArtifactCache
from repro.isdl import load_string


def load(source, filename="test.isdl"):
    return load_string(source, filename=filename, validate=False)


def codes(result):
    return [d.code for d in result.diagnostics]


BASE_STORAGE = """
section storage
    instruction_memory IM width 8 depth 16
    register ACC width 8
    program_counter PC width 4
end
"""


# ---------------------------------------------------------------------------
# decode ambiguity (ISDL101 / ISDL102)
# ---------------------------------------------------------------------------


AMBIGUOUS_OPS = f'''
processor "T"
section format
    word 8
end
{BASE_STORAGE}
section instruction_set
    field EX
        operation a()
            encoding {{ bits[7] = 0b1 }}
            action {{ ACC <- ACC + 1; }}
        operation b()
            encoding {{ bits[6] = 0b1 }}
            action {{ ACC <- ACC - 1; }}
    end
end
'''


def test_ambiguous_operations_flagged_with_witness_word():
    result = analyze(load(AMBIGUOUS_OPS))
    (finding,) = result.by_code("ISDL101")
    assert finding.severity is Severity.ERROR
    assert "EX.a" in finding.message and "EX.b" in finding.message
    assert "0xc0" in finding.message  # both constant images set
    assert finding.location is not None
    assert not result.ok()


AMBIGUOUS_NT = f'''
processor "T"
section format
    word 8
end
section global_definitions
    token R2 prefix "R" range 0 .. 3
    nonterminal SRC width 3
        option reg(r: R2)
            encoding {{ bits[2] = 0b1; bits[1:0] = r }}
            action {{ $$ <- RF[r]; }}
        option zero()
            encoding {{ bits[1] = 0b1 }}
            action {{ $$ <- 0; }}
    end
end
section storage
    instruction_memory IM width 8 depth 16
    register_file RF width 8 depth 4
    register ACC width 8
    program_counter PC width 4
end
section instruction_set
    field EX
        operation ld(s: SRC)
            encoding {{ bits[7:5] = 0b101; bits[2:0] = s }}
            action {{ ACC <- s; }}
    end
end
'''


def test_ambiguous_nt_options_flagged():
    result = analyze(load(AMBIGUOUS_NT))
    (finding,) = result.by_code("ISDL102")
    assert finding.severity is Severity.ERROR
    assert "SRC.reg" in finding.message and "SRC.zero" in finding.message


def test_clean_description_has_no_ambiguity(mini_desc):
    result = analyze(mini_desc)
    assert not result.by_code("ISDL101")
    assert not result.by_code("ISDL102")


# ---------------------------------------------------------------------------
# constraint analysis (ISDL202 / ISDL203)
# ---------------------------------------------------------------------------


TWO_FIELDS = f'''
processor "T"
section format
    word 8
end
section storage
    instruction_memory IM width 8 depth 16
    register A width 8
    register B width 8
    program_counter PC width 4
end
section instruction_set
    field F1
        operation nop1()
            encoding {{ bits[7:6] = 0b00 }}
        operation inc()
            encoding {{ bits[7:6] = 0b01 }}
            action {{ A <- A + 1; }}
    end
    field F2
        operation nop2()
            encoding {{ bits[5:4] = 0b00 }}
        operation dec()
            encoding {{ bits[5:4] = 0b01 }}
            action {{ B <- B - 1; }}
    end
end
'''


def test_unsatisfiable_constraint_is_an_error():
    # one field selects one operation: F1.nop1 & F1.inc can never hold
    desc = load(TWO_FIELDS + """
section constraints
    require F1.nop1 & F1.inc
end
""")
    result = analyze(desc)
    (finding,) = result.by_code("ISDL202")
    assert finding.severity is Severity.ERROR
    assert "unsatisfiable" in finding.message


def test_vacuous_constraint_is_a_warning():
    # forbid (X & ~X) is a tautology: it can never forbid anything
    desc = load(TWO_FIELDS + """
section constraints
    forbid F1.inc & ~F1.inc
end
""")
    result = analyze(desc)
    (finding,) = result.by_code("ISDL203")
    assert finding.severity is Severity.WARNING
    assert "vacuous" in finding.message
    assert result.ok()  # warnings do not fail the default threshold


def test_useful_constraint_is_silent():
    desc = load(TWO_FIELDS + """
section constraints
    forbid F1.inc & F2.dec
end
""")
    result = analyze(desc)
    assert not result.by_code("ISDL202")
    assert not result.by_code("ISDL203")


def test_unknown_constraint_ref_is_warning_not_crash():
    desc = load(TWO_FIELDS + """
section constraints
    forbid F1.inc & F9.ghost
end
""")
    result = analyze(desc)
    (finding,) = result.by_code("ISDL201")
    assert finding.severity is Severity.WARNING
    # the dangling constraint is excluded from sat analysis, not crashed on
    assert not result.by_code("ISDL202")
    assert not result.by_code("ISDL901")


# ---------------------------------------------------------------------------
# RTL dataflow (ISDL301 / ISDL302 / ISDL303)
# ---------------------------------------------------------------------------


def test_read_never_written_register_flagged():
    desc = load(f'''
processor "T"
section format
    word 8
end
section storage
    instruction_memory IM width 8 depth 16
    register ACC width 8
    register MYSTERY width 8
    program_counter PC width 4
end
section instruction_set
    field EX
        operation rd()
            encoding {{ bits[7] = 0b1 }}
            action {{ ACC <- MYSTERY; }}
        operation wr()
            encoding {{ bits[7] = 0b0 }}
            action {{ ACC <- 1; }}
    end
end
''')
    result = analyze(desc)
    (finding,) = result.by_code("ISDL301")
    assert finding.severity is Severity.WARNING
    assert "MYSTERY" in finding.message


def test_dead_write_shadowed_in_same_instruction():
    desc = load(f'''
processor "T"
section format
    word 8
end
{BASE_STORAGE}
section instruction_set
    field EX
        operation dead()
            encoding {{ bits[7] = 0b1 }}
            action {{ ACC <- 1; ACC <- 2; }}
        operation live()
            encoding {{ bits[7] = 0b0 }}
            action {{ ACC <- 1; ACC <- ACC + 1; }}
    end
end
''')
    result = analyze(desc)
    (finding,) = result.by_code("ISDL302")
    assert finding.severity is Severity.WARNING
    assert "EX.dead" in finding.where  # the read in `live` keeps it alive


def test_conditional_shadow_is_not_a_dead_write():
    desc = load(f'''
processor "T"
section format
    word 8
end
{BASE_STORAGE}
section instruction_set
    field EX
        operation maybe()
            encoding {{ bits[7] = 0b1 }}
            action {{ ACC <- 1; if ACC == 0 {{ ACC <- 2; }} }}
        operation other()
            encoding {{ bits[7] = 0b0 }}
    end
end
''')
    assert not analyze(desc).by_code("ISDL302")


def test_write_write_conflict_across_coscheduled_fields():
    result = analyze(load(f'''
processor "T"
section format
    word 8
end
{BASE_STORAGE}
section instruction_set
    field F1
        operation set1()
            encoding {{ bits[7:6] = 0b01 }}
            action {{ ACC <- 1; }}
        operation nop1()
            encoding {{ bits[7:6] = 0b00 }}
    end
    field F2
        operation set2()
            encoding {{ bits[5:4] = 0b01 }}
            action {{ ACC <- 2; }}
        operation nop2()
            encoding {{ bits[5:4] = 0b00 }}
    end
end
'''))
    (finding,) = result.by_code("ISDL303")
    assert finding.severity is Severity.WARNING
    assert "F1.set1" in finding.message and "F2.set2" in finding.message


def test_constraint_forbidding_pair_silences_conflict():
    result = analyze(load(f'''
processor "T"
section format
    word 8
end
{BASE_STORAGE}
section instruction_set
    field F1
        operation set1()
            encoding {{ bits[7:6] = 0b01 }}
            action {{ ACC <- 1; }}
        operation nop1()
            encoding {{ bits[7:6] = 0b00 }}
    end
    field F2
        operation set2()
            encoding {{ bits[5:4] = 0b01 }}
            action {{ ACC <- 2; }}
        operation nop2()
            encoding {{ bits[5:4] = 0b00 }}
    end
end
section constraints
    forbid F1.set1 & F2.set2
end
'''))
    assert not result.by_code("ISDL303")


# ---------------------------------------------------------------------------
# unused definitions (ISDL401..404)
# ---------------------------------------------------------------------------


def test_unused_token_nonterminal_storage_and_alias_flagged():
    result = analyze(load(f'''
processor "T"
section format
    word 8
end
section global_definitions
    token USED immediate unsigned width 4
    token GHOST immediate unsigned width 4
    nonterminal PHANTOM width 2
        option z()
            encoding {{ bits[1:0] = 0b00 }}
            action {{ $$ <- 0; }}
    end
end
section storage
    instruction_memory IM width 8 depth 16
    register ACC width 8
    register ORPHAN width 8
    alias DANGLING = ORPHAN[0]
    program_counter PC width 4
end
section instruction_set
    field EX
        operation ld(v: USED)
            encoding {{ bits[7:4] = 0b1000; bits[3:0] = v }}
            action {{ ACC <- v; }}
    end
end
'''))
    by = {d.code: d for d in result.diagnostics}
    assert by["ISDL401"].where == "GHOST"
    assert by["ISDL402"].where == "PHANTOM"
    assert by["ISDL403"].where == "ORPHAN"
    assert by["ISDL404"].where == "DANGLING"
    assert by["ISDL404"].severity is Severity.INFO
    assert result.ok()  # all are warnings/infos


def test_architectural_storage_is_exempt(mini_desc):
    # PC / IM / RF are externally driven; the mini description also routes
    # HALTED through the optional-section attribute, so nothing is flagged
    result = analyze(mini_desc)
    assert not result.by_code("ISDL403")


# ---------------------------------------------------------------------------
# encoding-space coverage (ISDL501 / ISDL502)
# ---------------------------------------------------------------------------


def test_opcode_holes_and_wasted_bits_reported(mini_desc):
    result = analyze(mini_desc)
    (holes,) = result.by_code("ISDL501")
    assert holes.severity is Severity.INFO
    # 3 of 16 opcode patterns used (0000, 0001, 1111) -> 13 holes
    assert "13 of 16" in holes.message
    (wasted,) = result.by_code("ISDL502")
    # bits 3:0 only used by addi's immediate... all bits covered except
    # the low nibble don't-cares of nop/halt are defined in addi, so the
    # wasted set is exactly the bits nothing defines
    assert wasted.severity is Severity.INFO


# ---------------------------------------------------------------------------
# the pass manager
# ---------------------------------------------------------------------------


def test_semantic_errors_skip_deeper_passes():
    # Axiom 1 violation: bit 7 assigned twice in one encoding
    result = analyze(load('''
processor "T"
section format
    word 8
end
section storage
    instruction_memory IM width 8 depth 16
    register ACC width 8
    program_counter PC width 4
end
section instruction_set
    field EX
        operation bad()
            encoding { bits[7] = 0b1; bits[7] = 0b0 }
    end
end
'''))
    assert result.passes == ("semantic",)
    assert any(d.code == "ISDL011" for d in result.diagnostics)
    assert not result.ok()


def test_identical_diagnostics_are_deduplicated(mini_desc):
    from repro.analyze.diagnostics import Diagnostic

    def noisy(ctx):
        finding = Diagnostic("ISDL999", Severity.WARNING, "same thing",
                             where="EX.nop")
        return [finding, finding, Diagnostic(
            "ISDL998", Severity.INFO, "earlier code sorts first",
        )]

    doubled = AnalysisPass("noisy", "ISDL998-ISDL999", "repeats", noisy)
    result = analyze(mini_desc, passes=[doubled])
    assert [d.code for d in result.diagnostics] == ["ISDL998", "ISDL999"]


def test_pass_crash_becomes_isdl901(mini_desc):
    def explode(ctx):
        raise RuntimeError("pass bug")

    broken = AnalysisPass("broken", "ISDL999", "always crashes", explode)
    result = analyze(mini_desc, passes=[broken])
    (finding,) = result.by_code("ISDL901")
    assert finding.severity is Severity.ERROR
    assert "pass bug" in finding.message
    assert "broken" in result.passes


def test_pass_registry_and_selection(mini_desc):
    assert [p.name for p in ALL_PASSES] == [
        "decode-ambiguity", "constraints", "rtl-dataflow",
        "unused-definitions", "encoding-space", "dataflow",
    ]
    assert pass_named("constraints").codes == "ISDL202-ISDL203"
    with pytest.raises(KeyError):
        pass_named("nonexistent")
    only = analyze(mini_desc, passes=[pass_named("decode-ambiguity")])
    assert only.passes == ("semantic", "decode-ambiguity")


def test_pass_context_shares_signature_table_via_cache(mini_desc):
    cache = ArtifactCache()
    ctx = PassContext(mini_desc, cache=cache)
    assert ctx.table is ctx.table  # built once
    assert cache.stats.hits_by_kind["sigtable"] + \
        cache.stats.misses_by_kind["sigtable"] >= 1


# ---------------------------------------------------------------------------
# check_static memoization
# ---------------------------------------------------------------------------


def test_check_static_memoizes_by_fingerprint(mini_desc):
    cache = ArtifactCache()
    first = check_static(mini_desc, cache=cache)
    second = check_static(mini_desc, cache=cache)
    assert second is first  # the literal cached object
    assert cache.stats.hits_by_kind["analysis"] == 1
    assert cache.stats.misses_by_kind["analysis"] == 1


def test_check_static_without_cache_still_analyzes(mini_desc):
    result = check_static(mini_desc)
    assert result.ok()
    assert "decode-ambiguity" in result.passes
