"""Constraint-evaluation edge cases: nested ``~``/``&``/``|`` and
multi-field constraints — exercised both directly through
:func:`repro.isdl.ast.evaluate_constraint` and through the constraint
analysis pass."""

from repro.analyze import Severity, analyze
from repro.isdl import load_string
from repro.isdl.ast import (
    CAnd,
    CNot,
    COpRef,
    COr,
    evaluate_constraint,
    oprefs_in,
)

A = COpRef("F1", "a")
B = COpRef("F2", "b")
C = COpRef("F3", "c")


# ---------------------------------------------------------------------------
# evaluate_constraint on nested expressions
# ---------------------------------------------------------------------------


def test_double_negation_cancels():
    expr = CNot(CNot(A))
    assert evaluate_constraint(expr, {"F1": "a"})
    assert not evaluate_constraint(expr, {"F1": "other"})
    assert not evaluate_constraint(expr, {})


def test_de_morgan_holds_for_nested_and_or():
    lhs = CNot(CAnd(A, B))
    rhs = COr(CNot(A), CNot(B))
    for selected in (
        {}, {"F1": "a"}, {"F2": "b"}, {"F1": "a", "F2": "b"},
        {"F1": "x", "F2": "b"},
    ):
        assert evaluate_constraint(lhs, selected) == evaluate_constraint(
            rhs, selected
        )


def test_three_field_mix_with_nested_not():
    # ~(a & b) | (c & ~a): true unless (a and b) while not (c without a)
    expr = COr(CNot(CAnd(A, B)), CAnd(C, CNot(A)))
    assert evaluate_constraint(expr, {})  # nothing selected -> lhs true
    assert not evaluate_constraint(expr, {"F1": "a", "F2": "b"})
    assert evaluate_constraint(
        expr, {"F1": "a", "F2": "b", "F3": "c"}
    ) is False  # rhs needs ~a
    assert evaluate_constraint(expr, {"F3": "c"})


def test_absent_field_behaves_as_no_match():
    # an opref on an unselected field is simply false, not an error
    expr = CAnd(CNot(A), CNot(B))
    assert evaluate_constraint(expr, {})
    assert evaluate_constraint(expr, {"F3": "c"})


def test_oprefs_in_walks_every_leaf():
    expr = COr(CNot(CAnd(A, B)), CAnd(C, CNot(A)))
    refs = [(r.field, r.op) for r in oprefs_in(expr)]
    assert refs == [("F1", "a"), ("F2", "b"), ("F3", "c"), ("F1", "a")]


# ---------------------------------------------------------------------------
# the constraint pass over multi-field descriptions
# ---------------------------------------------------------------------------


THREE_FIELDS = '''
processor "T"
section format
    word 12
end
section storage
    instruction_memory IM width 12 depth 16
    register A width 8
    register B width 8
    register C width 8
    program_counter PC width 4
end
section instruction_set
    field F1
        operation n1()
            encoding { bits[11:10] = 0b00 }
        operation a()
            encoding { bits[11:10] = 0b01 }
            action { A <- A + 1; }
    end
    field F2
        operation n2()
            encoding { bits[9:8] = 0b00 }
        operation b()
            encoding { bits[9:8] = 0b01 }
            action { B <- B + 1; }
    end
    field F3
        operation n3()
            encoding { bits[7:6] = 0b00 }
        operation c()
            encoding { bits[7:6] = 0b01 }
            action { C <- C + 1; }
    end
end
'''


def load(extra):
    return load_string(THREE_FIELDS + extra, filename="three.isdl",
                       validate=False)


def test_multi_field_forbid_is_neither_unsat_nor_vacuous():
    result = analyze(load("""
section constraints
    forbid F1.a & F2.b & F3.c
end
"""))
    assert not result.by_code("ISDL202")
    assert not result.by_code("ISDL203")


def test_nested_unsatisfiable_multi_field_constraint():
    # require (a & ~a): false under every assignment of every field
    result = analyze(load("""
section constraints
    require F1.a & ~F1.a
end
"""))
    (finding,) = result.by_code("ISDL202")
    assert finding.severity is Severity.ERROR


def test_nested_vacuous_or_over_three_fields():
    # require (a | ~a) | (b & c): the left disjunct is a tautology
    result = analyze(load("""
section constraints
    require (F1.a | ~F1.a) | (F2.b & F3.c)
end
"""))
    (finding,) = result.by_code("ISDL203")
    assert finding.severity is Severity.WARNING


def test_each_constraint_judged_independently():
    result = analyze(load("""
section constraints
    forbid F1.a & F2.b
    require F3.c & ~F3.c
    forbid F2.b & ~F2.b
end
"""))
    assert len(result.by_code("ISDL202")) == 1
    assert len(result.by_code("ISDL203")) == 1
