"""Tests for the diagnostics core: Diagnostic, AnalysisResult, emitters."""

import json

import pytest

from repro.analyze import (
    AnalysisResult,
    Diagnostic,
    Severity,
    dump_json,
    render_text,
    to_json_payload,
    to_sarif,
)
from repro.errors import SourceLocation


_LOC = SourceLocation("t.isdl", 3, 7)


def diag(code="ISDL101", severity=Severity.ERROR, message="boom",
         where="EX.a", location=_LOC):
    return Diagnostic(code, severity, message, where=where,
                      location=location)


# ---------------------------------------------------------------------------
# Severity
# ---------------------------------------------------------------------------


def test_severity_orders_and_parses():
    assert Severity.INFO < Severity.WARNING < Severity.ERROR
    assert max([Severity.INFO, Severity.ERROR]) is Severity.ERROR
    assert Severity.parse("warning") is Severity.WARNING
    assert Severity.parse("ERROR") is Severity.ERROR
    with pytest.raises(ValueError):
        Severity.parse("fatal")


def test_severity_sarif_levels():
    assert Severity.INFO.sarif_level == "note"
    assert Severity.WARNING.sarif_level == "warning"
    assert Severity.ERROR.sarif_level == "error"


# ---------------------------------------------------------------------------
# Diagnostic
# ---------------------------------------------------------------------------


def test_diagnostic_str_carries_location_code_and_context():
    text = str(diag())
    assert text == "t.isdl:3:7: error ISDL101 [EX.a]: boom"


def test_diagnostic_str_without_location_or_context():
    assert str(diag(where="", location=None)) == "error ISDL101: boom"


def test_legacy_text_matches_old_check_shape():
    assert diag().legacy_text() == "t.isdl:3:7: boom"
    assert diag(location=None).legacy_text() == "boom"


def test_to_dict_round_trips_through_json():
    payload = json.loads(json.dumps(diag().to_dict()))
    assert payload == {
        "code": "ISDL101",
        "severity": "error",
        "message": "boom",
        "where": "EX.a",
        "file": "t.isdl",
        "line": 3,
        "column": 7,
    }


# ---------------------------------------------------------------------------
# AnalysisResult
# ---------------------------------------------------------------------------


def test_result_severity_views_and_threshold():
    result = AnalysisResult("X", (
        diag(severity=Severity.INFO),
        diag(severity=Severity.WARNING),
        diag(severity=Severity.ERROR),
    ))
    assert result.max_severity is Severity.ERROR
    assert len(result.errors) == 1
    assert len(result.warnings) == 1
    assert not result.ok()
    assert result.counts() == {"error": 1, "warning": 1, "info": 1}


def test_result_ok_respects_fail_on():
    warn_only = AnalysisResult("X", (diag(severity=Severity.WARNING),))
    assert warn_only.ok()  # default threshold is ERROR
    assert not warn_only.ok(Severity.WARNING)
    assert AnalysisResult("X").ok(Severity.INFO)
    assert AnalysisResult("X").max_severity is None


def test_result_by_code():
    result = AnalysisResult("X", (diag(code="ISDL101"),
                                  diag(code="ISDL202")))
    assert [d.code for d in result.by_code("ISDL202")] == ["ISDL202"]


# ---------------------------------------------------------------------------
# Emitters
# ---------------------------------------------------------------------------


def test_render_text_one_line_per_diag_plus_summary():
    result = AnalysisResult("X", (diag(),))
    text = render_text([result])
    assert "t.isdl:3:7: error ISDL101 [EX.a]: boom" in text
    assert "X: 1 error(s), 0 warning(s), 0 info" in text


def test_json_payload_structure():
    payload = to_json_payload([AnalysisResult(
        "X", (diag(),), passes=("semantic", "decode-ambiguity"),
    )])
    assert payload["version"] == 1
    assert payload["max_severity"] == "error"
    (target,) = payload["targets"]
    assert target["name"] == "X"
    assert target["passes"] == ["semantic", "decode-ambiguity"]
    assert target["diagnostics"][0]["code"] == "ISDL101"
    json.loads(dump_json(payload))  # serializable


def test_sarif_has_rules_results_and_regions():
    sarif = to_sarif([AnalysisResult("X", (
        diag(), diag(code="ISDL501", severity=Severity.INFO),
    ))])
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    assert [r["id"] for r in run["tool"]["driver"]["rules"]] == [
        "ISDL101", "ISDL501",
    ]
    first = run["results"][0]
    assert first["ruleId"] == "ISDL101"
    assert first["level"] == "error"
    location = first["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "t.isdl"
    assert location["region"] == {"startLine": 3, "startColumn": 7}
    # INFO maps to SARIF "note"
    assert run["results"][1]["level"] == "note"
