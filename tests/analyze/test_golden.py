"""Golden-file tests: the exact diagnostics (codes, spans, messages) the
analysis engine emits for each built-in architecture description.

Regenerate after an intentional change with::

    PYTHONPATH=src python - <<'EOF'
    import json
    from repro.arch import ARCHITECTURES, description_for
    from repro.analyze import analyze, to_json_payload
    for name in sorted(ARCHITECTURES):
        target = to_json_payload([analyze(description_for(name))])["targets"][0]
        with open(f"tests/analyze/golden/{name}.json", "w") as fh:
            json.dump(target, fh, indent=2, sort_keys=True)
            fh.write("\n")
    EOF
"""

import json
import os

import pytest

from repro.analyze import analyze, to_json_payload
from repro.arch import ARCHITECTURES, description_for

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


@pytest.mark.parametrize("arch", sorted(ARCHITECTURES))
def test_arch_diagnostics_match_golden(arch):
    result = analyze(description_for(arch))
    got = to_json_payload([result])["targets"][0]
    with open(os.path.join(GOLDEN_DIR, f"{arch}.json")) as fh:
        want = json.load(fh)
    assert got == want


@pytest.mark.parametrize("arch", sorted(ARCHITECTURES))
def test_arch_descriptions_are_error_free(arch):
    # the acceptance bar: every shipped architecture lints clean at
    # severity=error (and, today, at severity=warning too)
    result = analyze(description_for(arch))
    assert result.ok()
    assert result.counts()["error"] == 0
    assert result.counts()["warning"] == 0


@pytest.mark.parametrize("arch", sorted(ARCHITECTURES))
def test_golden_spans_point_into_the_arch_source(arch):
    with open(os.path.join(GOLDEN_DIR, f"{arch}.json")) as fh:
        want = json.load(fh)
    for diagnostic in want["diagnostics"]:
        if "file" in diagnostic:
            assert diagnostic["file"] == f"{arch}.isdl"
            assert diagnostic["line"] >= 1
            assert diagnostic["column"] >= 1
