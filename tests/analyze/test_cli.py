"""Tests for the ``repro-lint`` command line."""

import json
import os

import pytest

from repro.analyze.cli import main

AMBIGUOUS = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir,
    "examples", "ambiguous.isdl",
)


def test_ambiguous_example_fails_with_isdl101(capsys):
    assert main([AMBIGUOUS]) == 2
    out = capsys.readouterr().out
    assert "error ISDL101" in out
    assert "EX.a" in out and "EX.b" in out


def test_all_arch_descriptions_lint_clean(capsys):
    assert main(["--all-arch"]) == 0
    out = capsys.readouterr().out
    for name in ("RISC16", "SPAM2", "ACC8"):
        assert f"{name}: 0 error(s), 0 warning(s)" in out


def test_single_arch_selection(capsys):
    assert main(["--arch", "spam2"]) == 0
    out = capsys.readouterr().out
    assert "SPAM2" in out and "RISC16" not in out


def test_json_format_is_machine_readable(capsys):
    assert main([AMBIGUOUS, "--format=json"]) == 2
    payload = json.loads(capsys.readouterr().out)
    assert payload["tool"] == "repro-lint"
    assert payload["max_severity"] == "error"
    codes = [
        d["code"]
        for target in payload["targets"]
        for d in target["diagnostics"]
    ]
    assert "ISDL101" in codes


def test_sarif_format_and_out_file(tmp_path, capsys):
    out_path = tmp_path / "lint.sarif"
    assert main([AMBIGUOUS, "--format=sarif", "--out", str(out_path)]) == 2
    assert capsys.readouterr().out == ""  # report went to the file
    sarif = json.loads(out_path.read_text())
    assert sarif["version"] == "2.1.0"
    assert any(
        r["ruleId"] == "ISDL101" for r in sarif["runs"][0]["results"]
    )


def test_fail_on_info_makes_clean_arch_fail_with_1(capsys):
    # the built-ins have INFO findings (opcode holes), so tightening the
    # threshold to info must fail with 1 (no errors present)
    assert main(["--arch", "risc16", "--fail-on", "info"]) == 1
    capsys.readouterr()


def test_parse_error_is_a_diagnostic_not_a_crash(tmp_path, capsys):
    bad = tmp_path / "bad.isdl"
    bad.write_text("processor !!!\n")
    assert main([str(bad)]) == 2
    out = capsys.readouterr().out
    assert "ISDL001" in out


def test_missing_file_is_a_diagnostic(tmp_path, capsys):
    assert main([str(tmp_path / "nope.isdl")]) == 2
    assert "ISDL001" in capsys.readouterr().out


def test_unknown_arch_is_a_diagnostic(capsys):
    assert main(["--arch", "z80"]) == 2
    assert "unknown architecture" in capsys.readouterr().out


def test_list_codes_prints_registry(capsys):
    assert main(["--list-codes"]) == 0
    out = capsys.readouterr().out
    for name in ("semantic", "decode-ambiguity", "constraints",
                 "rtl-dataflow", "unused-definitions", "encoding-space"):
        assert name in out


def test_no_targets_is_a_usage_error():
    with pytest.raises(SystemExit) as excinfo:
        main([])
    assert excinfo.value.code == 2
