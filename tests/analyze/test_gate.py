"""Tests for the exploration validity gate (check_static in the loop)."""

from repro import obs
from repro.arch import description_for
from repro.cache import ArtifactCache
from repro.codegen import Cond, KernelBuilder, Opcode
from repro.explore import EvalRequest, Explorer, ParallelEvaluator
from repro.isdl import load_string

AMBIGUOUS_ISDL = '''
processor "AMBIG"
section format
    word 8
end
section storage
    instruction_memory IM width 8 depth 16
    register ACC width 8
    program_counter PC width 4
end
section instruction_set
    field EX
        operation a()
            encoding { bits[7] = 0b1 }
            action { ACC <- ACC + 1; }
        operation b()
            encoding { bits[6] = 0b1 }
            action { ACC <- ACC - 1; }
    end
end
'''


def ambiguous_desc():
    return load_string(AMBIGUOUS_ISDL, filename="ambig.isdl",
                       validate=False)


def sum_kernel(n=4):
    K = KernelBuilder("sum")
    cnt = K.li(n)
    acc = K.li(0)
    K.label("loop")
    K.binary_into(acc, Opcode.ADD, acc, cnt)
    K.binary_into(cnt, Opcode.SUB, cnt, 1)
    K.cbr(Cond.NE, cnt, 0, "loop")
    K.store(K.li(0), acc)
    return K.build()


def test_gate_rejects_invalid_candidate_before_evaluation():
    cache = ArtifactCache()
    with ParallelEvaluator([sum_kernel()], cache=cache,
                           mode="serial") as ev:
        (result,) = ev.evaluate_many(
            [EvalRequest(ambiguous_desc(), "mutated")]
        )
    assert not result.ok
    assert "static analysis rejected" in result.error
    assert "ISDL101" in result.error
    assert result.diagnostics
    assert any(d.code == "ISDL101" for d in result.diagnostics)
    # nothing was evaluated: no evaluation artifact was ever built
    assert cache.stats.misses_by_kind["evaluation"] == 0
    assert cache.stats.hits_by_kind["evaluation"] == 0


def test_gate_counts_rejections_in_obs():
    obs.enable()
    try:
        with obs.capture() as cap:
            with ParallelEvaluator([sum_kernel()], mode="serial") as ev:
                ev.evaluate_many([EvalRequest(ambiguous_desc())])
    finally:
        obs.disable(reset=True)
    assert cap.snapshot.counters["analyze.candidates_rejected"] == 1


def test_gate_passes_valid_candidates_through():
    with ParallelEvaluator([sum_kernel()], mode="serial") as ev:
        (result,) = ev.evaluate_many(
            [EvalRequest(description_for("risc16"))]
        )
    assert result.ok
    assert result.evaluation.feasible
    assert result.diagnostics == ()


def test_gate_can_be_disabled():
    with ParallelEvaluator([sum_kernel()], mode="serial",
                           static_check=False) as ev:
        (result,) = ev.evaluate_many([EvalRequest(ambiguous_desc())])
    # without the gate the tool chain runs and reports infeasibility
    # later (the strict generator refuses the non-decodable description)
    assert result.ok
    assert not result.evaluation.feasible
    assert result.diagnostics == ()


def test_gate_memoizes_analysis_in_cache():
    cache = ArtifactCache()
    with ParallelEvaluator([sum_kernel()], cache=cache,
                           mode="serial") as ev:
        ev.evaluate_many([EvalRequest(ambiguous_desc())])
        ev.evaluate_many([EvalRequest(ambiguous_desc())])
    assert cache.stats.misses_by_kind["analysis"] == 1
    assert cache.stats.hits_by_kind["analysis"] == 1


def test_malformed_candidate_still_recorded_the_pre_gate_way():
    with ParallelEvaluator([sum_kernel()], mode="serial") as ev:
        (result,) = ev.evaluate_many(
            [EvalRequest("not a description", "broken")]
        )
    assert not result.ok
    assert result.error
    assert result.diagnostics == ()


def test_explorer_records_static_rejection_in_log_errors():
    explorer = Explorer([sum_kernel()], parallel="serial")
    bad = ambiguous_desc()

    original = Explorer._proposals

    def sabotage(self, incumbent):
        yield bad, "mutate into ambiguity"
        yield from original(self, incumbent)

    explorer._proposals = sabotage.__get__(explorer)
    obs.enable()
    try:
        with obs.capture() as cap:
            log = explorer.explore(description_for("risc16"),
                                   max_iterations=1)
    finally:
        obs.disable(reset=True)
    rejected = [r for r in log.errors if r.diagnostics]
    assert rejected, "static rejection must land in log.errors"
    assert any(d.code == "ISDL101" for d in rejected[0].diagnostics)
    assert cap.snapshot.counters["analyze.candidates_rejected"] >= 1
    assert log.accepted, "the sweep itself completes"


def test_report_counts_statically_rejected():
    from repro.explore.report import exploration_report

    explorer = Explorer([sum_kernel()], parallel="serial")
    bad = ambiguous_desc()
    original = Explorer._proposals

    def sabotage(self, incumbent):
        yield bad, "mutate into ambiguity"
        yield from original(self, incumbent)

    explorer._proposals = sabotage.__get__(explorer)
    log = explorer.explore(description_for("risc16"), max_iterations=1)
    assert "1 statically rejected" in exploration_report(log)
