"""Shared fixtures: cached architecture descriptions and simulators."""

import pytest

from repro.arch import acc8, risc16, spam, spam2


@pytest.fixture(scope="session")
def risc16_desc():
    return risc16.description()


@pytest.fixture(scope="session")
def spam_desc():
    return spam.description()


@pytest.fixture(scope="session")
def spam2_desc():
    return spam2.description()


@pytest.fixture(scope="session")
def acc8_desc():
    return acc8.description()


MINIMAL_ISDL = '''
processor "MINI"

section format
    word 16
end

section global_definitions
    token REG prefix "R" range 0 .. 3
    token IMM4 immediate unsigned width 4
end

section storage
    instruction_memory IM width 16 depth 64
    register_file RF width 8 depth 4
    control_register HALTED width 1
    program_counter PC width 6
end

section instruction_set
    field EX
        operation nop()
            encoding { bits[15:12] = 0b0000 }
        operation addi(d: REG, a: REG, v: IMM4)
            encoding { bits[15:12] = 0b0001; bits[11:10] = d;
                       bits[9:8] = a; bits[7:4] = v }
            action { RF[d] <- RF[a] + v; }
        operation halt()
            encoding { bits[15:12] = 0b1111 }
            action { HALTED <- 1; }
    end
end

section optional
    attribute halt_flag "HALTED"
end
'''


@pytest.fixture(scope="session")
def mini_desc():
    from repro.isdl import load_string

    return load_string(MINIMAL_ISDL, filename="mini.isdl")
