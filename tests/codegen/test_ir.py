"""Tests for the IR and kernel builder."""

import pytest

from repro.codegen.ir import (
    Cond,
    Imm,
    IrOp,
    Kernel,
    KernelBuilder,
    Opcode,
    VReg,
)
from repro.errors import CodegenError


def test_builder_creates_fresh_vregs():
    K = KernelBuilder()
    a = K.li(1)
    b = K.li(2)
    assert a != b
    assert isinstance(a, VReg)


def test_binary_helpers_emit_ops():
    K = KernelBuilder()
    a = K.li(1)
    b = K.li(2)
    c = K.add(a, b)
    kernel = K.build()
    assert kernel.ops[2].opcode is Opcode.ADD
    assert kernel.ops[2].dst == c


def test_int_operands_become_immediates():
    K = KernelBuilder()
    a = K.li(1)
    K.add(a, 5)
    assert K.kernel.ops[1].b == Imm(5)


def test_explicit_destination_forms():
    K = KernelBuilder()
    a = K.li(1)
    K.binary_into(a, Opcode.ADD, a, 1)
    K.mov_into(a, 3)
    K.li_into(a, 9)
    assert all(op.dst == a for op in K.kernel.ops)


def test_validate_rejects_undefined_label():
    K = KernelBuilder()
    K.jump("nowhere")
    with pytest.raises(CodegenError):
        K.build()


def test_validate_rejects_use_before_def():
    kernel = Kernel(ops=[IrOp(Opcode.MOV, VReg(1), VReg(0))])
    with pytest.raises(CodegenError):
        kernel.validate()


def test_validate_accepts_loop():
    K = KernelBuilder()
    n = K.li(3)
    K.label("top")
    K.binary_into(n, Opcode.SUB, n, 1)
    K.cbr(Cond.NE, n, 0, "top")
    K.halt()
    K.build()


def test_uses_and_defines():
    op = IrOp(Opcode.ADD, VReg(2), VReg(0), VReg(1))
    assert op.uses() == [VReg(0), VReg(1)]
    assert op.defines() == VReg(2)
    store = IrOp(Opcode.STORE, None, VReg(0), Imm(3))
    assert store.uses() == [VReg(0)]
    assert store.defines() is None


def test_str_renderings():
    K = KernelBuilder()
    a = K.li(7)
    K.store(3, a)
    K.label("x")
    K.cbr(Cond.EQ, a, 0, "x")
    K.halt()
    text = str(K.kernel)
    assert "v0 <- #7" in text
    assert "mem[#3] <- v0" in text
    assert "x:" in text
    assert "halt" in text


def test_labels_map():
    K = KernelBuilder()
    K.label("a")
    K.li(0)
    K.label("b")
    kernel = K.kernel
    assert kernel.labels() == {"a": 0, "b": 2}
