"""End-to-end tests for the retargetable compiler: IR → asm → simulation."""

import pytest

from repro import fp
from repro.arch import ARCHITECTURES, description_for
from repro.asm import Assembler
from repro.codegen import Compiler, Cond, KernelBuilder, Opcode, analyze
from repro.errors import CodegenError
from repro.gensim import XSim


def run(desc, kernel, preload=None):
    compiler = Compiler(desc)
    program = compiler.compile_to_words(kernel)
    sim = XSim(desc)
    if preload:
        for storage, contents in preload.items():
            for index, value in contents.items():
                sim.write(storage, value, index)
    sim.load_words(program.words, program.origin)
    sim.run_to_completion()
    return sim


def sum_kernel(n=10):
    K = KernelBuilder("sum")
    cnt = K.li(n)
    acc = K.li(0)
    K.label("loop")
    K.binary_into(acc, Opcode.ADD, acc, cnt)
    K.binary_into(cnt, Opcode.SUB, cnt, 1)
    K.cbr(Cond.NE, cnt, 0, "loop")
    K.store(K.li(0), acc)
    return K.build()


@pytest.mark.parametrize("arch", ["risc16", "spam", "spam2"])
def test_sum_loop_on_every_target(arch):
    desc = description_for(arch)
    sim = run(desc, sum_kernel(10))
    assert sim.read("DM", 0) == 55


@pytest.mark.parametrize("arch", ["risc16", "spam", "spam2"])
def test_compiled_code_is_hazard_free(arch):
    desc = description_for(arch)
    program = Compiler(desc).compile_to_words(sum_kernel(5))
    sim = XSim(desc)
    sim.load_words(program.words, program.origin)
    sim.run_to_completion()
    assert sim.stats.stall_cycles == 0


def test_memory_roundtrip(risc16_desc):
    K = KernelBuilder()
    addr = K.li(7)
    value = K.load(addr)
    doubled = K.add(value, value)
    K.store(K.li(8), doubled)
    sim = run(risc16_desc, K.build(), preload={"DM": {7: 21}})
    assert sim.read("DM", 8) == 42


def test_all_binary_operators(risc16_desc):
    K = KernelBuilder()
    a = K.li(0b1100)
    b = K.li(0b1010)
    K.store(K.li(0), K.add(a, b))
    K.store(K.li(1), K.sub(a, b))
    K.store(K.li(2), K.and_(a, b))
    K.store(K.li(3), K.binary(Opcode.OR, a, b))
    K.store(K.li(4), K.binary(Opcode.XOR, a, b))
    K.store(K.li(5), K.shl(a, 2))
    K.store(K.li(6), K.shr(a, 2))
    sim = run(risc16_desc, K.build())
    assert sim.read("DM", 0) == 0b10110
    assert sim.read("DM", 1) == 0b0010
    assert sim.read("DM", 2) == 0b1000
    assert sim.read("DM", 3) == 0b1110
    assert sim.read("DM", 4) == 0b0110
    assert sim.read("DM", 5) == 0b110000
    assert sim.read("DM", 6) == 0b11


def test_conditions_eq_ne_lt(risc16_desc):
    for cond, a, b, taken in [
        (Cond.EQ, 5, 5, True),
        (Cond.EQ, 5, 6, False),
        (Cond.NE, 5, 6, True),
        (Cond.LT, 3, 9, True),
        (Cond.LT, 9, 3, False),
    ]:
        K = KernelBuilder()
        va = K.li(a)
        vb = K.li(b)
        K.cbr(cond, va, vb, "yes")
        K.store(K.li(0), K.li(1))  # not-taken marker
        K.jump("end")
        K.label("yes")
        K.store(K.li(0), K.li(2))  # taken marker
        K.label("end")
        K.halt()
        sim = run(risc16_desc, K.build())
        assert sim.read("DM", 0) == (2 if taken else 1), (cond, a, b)


def test_lt_via_sign_bit_on_spam(spam_desc):
    # SPAM has no negative flag: LT lowers to sub + shr + bnez.
    K = KernelBuilder()
    a = K.li(3)
    b = K.li(9)
    K.cbr(Cond.LT, a, b, "yes")
    K.store(K.li(0), K.li(1))
    K.jump("end")
    K.label("yes")
    K.store(K.li(0), K.li(2))
    K.label("end")
    K.halt()
    sim = run(spam_desc, K.build())
    assert sim.read("DM", 0) == 2


def test_wide_constant_materialization(spam_desc):
    K = KernelBuilder()
    value = K.li(0x12345)
    K.store(K.li(0), value)
    sim = run(spam_desc, K.build())
    assert sim.read("DM", 0) == 0x12345


def test_fp_kernel_on_spam(spam_desc):
    K = KernelBuilder()
    a = K.li(fp.float_to_bits(1.5))
    b = K.li(fp.float_to_bits(2.0))
    K.store(K.li(0), K.fadd(a, b))
    K.store(K.li(1), K.fmul(a, b))
    sim = run(spam_desc, K.build())
    assert sim.read("DM", 0) == fp.float_to_bits(3.5)
    assert sim.read("DM", 1) == fp.float_to_bits(3.0)


def test_fp_rejected_on_integer_target(risc16_desc):
    K = KernelBuilder()
    a = K.li(1)
    K.fadd(a, a)
    K.halt()
    with pytest.raises(CodegenError):
        Compiler(risc16_desc).compile(K.build())


def test_mul_rejected_without_multiplier(risc16_desc):
    K = KernelBuilder()
    a = K.li(3)
    K.mul(a, a)
    K.halt()
    with pytest.raises(CodegenError):
        Compiler(risc16_desc).compile(K.build())


def test_vliw_packing_reduces_instructions(spam_desc):
    K = KernelBuilder()
    values = [K.li(i + 1) for i in range(4)]
    # four independent adds can overlap with moves/loads on SPAM
    results = [K.add(v, 1) for v in values]
    for i, r in enumerate(results):
        K.store(K.li(i), r)
    kernel = K.build()
    packed = Compiler(spam_desc).compile(kernel, parallelize=True)
    serial = Compiler(spam_desc).compile(kernel, parallelize=False)
    assert packed.instruction_count <= serial.instruction_count


def test_compiler_output_is_reassemblable_text(risc16_desc):
    program = Compiler(risc16_desc).compile(sum_kernel(3))
    assembled = Assembler(risc16_desc).assemble(program.source)
    assert len(assembled.words) == program.instruction_count


def test_register_pressure_failure_is_reported(risc16_desc):
    K = KernelBuilder()
    values = [K.li(i) for i in range(10)]  # 10 live > 8 registers
    total = values[0]
    for value in values[1:]:
        total = K.add(total, value)
    K.store(K.li(0), total)
    with pytest.raises(CodegenError) as excinfo:
        Compiler(risc16_desc).compile(K.build())
    assert "register allocation failed" in str(excinfo.value)


def test_analyze_finds_expected_pattern_kinds():
    for arch in ("risc16", "spam", "spam2"):
        isa = analyze(description_for(arch))
        kinds = {p.kind for p in isa.patterns}
        assert {"alu", "li", "load", "store", "halt"} <= kinds
