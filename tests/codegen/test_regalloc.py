"""Tests for linear-scan register allocation."""

import pytest

from repro.codegen.ir import Cond, KernelBuilder, Opcode
from repro.codegen.regalloc import allocate, live_intervals, max_pressure
from repro.errors import CodegenError


def straight_line(n_values):
    K = KernelBuilder()
    values = [K.li(i) for i in range(n_values)]
    total = values[0]
    for value in values[1:]:
        total = K.add(total, value)
    K.store(0, total)
    return K.build()


def test_sequential_reuse():
    # v0 dies as soon as v1 is defined from it: two registers suffice.
    K = KernelBuilder()
    a = K.li(1)
    b = K.add(a, 1)
    c = K.add(b, 1)
    K.store(0, c)
    mapping = allocate(K.build(), register_count=2)
    assert set(mapping.values()) <= {0, 1}


def test_allocation_respects_first_register():
    kernel = straight_line(2)
    mapping = allocate(kernel, register_count=4, first_register=8)
    assert all(8 <= r < 12 for r in mapping.values())


def test_reserved_registers_not_used():
    kernel = straight_line(2)
    mapping = allocate(kernel, register_count=4, reserved=(0, 1))
    assert all(r in (2, 3) for r in mapping.values())


def test_failure_when_too_many_live():
    kernel = straight_line(6)  # all 6 initial values live at the first add
    with pytest.raises(CodegenError):
        allocate(kernel, register_count=3)


def test_live_values_get_distinct_registers():
    kernel = straight_line(4)
    mapping = allocate(kernel, register_count=8)
    intervals = {iv.vreg: iv for iv in live_intervals(kernel)}
    regs = list(mapping.items())
    for i, (va, ra) in enumerate(regs):
        for vb, rb in regs[i + 1 :]:
            a, b = intervals[va], intervals[vb]
            # strict overlap: touching intervals may share (read-before-write)
            overlap = a.start < b.end and b.start < a.end
            if overlap:
                assert ra != rb, f"{va} and {vb} overlap but share {ra}"


def test_loop_carried_value_stays_live():
    K = KernelBuilder()
    n = K.li(5)
    acc = K.li(0)
    K.label("loop")
    K.binary_into(acc, Opcode.ADD, acc, n)
    K.binary_into(n, Opcode.SUB, n, 1)
    K.cbr(Cond.NE, n, 0, "loop")
    K.store(0, acc)
    kernel = K.build()
    intervals = {iv.vreg: iv for iv in live_intervals(kernel)}
    # 'acc' must stay live through the whole loop even though its last
    # read inside the body is before the branch.
    branch_pos = next(
        i for i, op in enumerate(kernel.ops) if op.opcode is Opcode.CBR
    )
    assert intervals[acc].end >= branch_pos
    mapping = allocate(kernel, register_count=4)
    assert mapping[acc] != mapping[n]


def test_max_pressure():
    assert max_pressure(straight_line(5)) == 5
    assert max_pressure(straight_line(2)) == 2
