"""Rendezvous placement and the shard table."""

from repro.cluster import ShardTable, rendezvous_rank

SHARDS = [(f"s{i}", f"http://127.0.0.1:{8000 + i}") for i in range(4)]


def keys(count=200):
    return [f"fp-{index:04d}" for index in range(count)]


# ----------------------------------------------------------------------
# Rendezvous ranking
# ----------------------------------------------------------------------


def test_ranking_is_deterministic_and_total():
    ids = [sid for sid, _ in SHARDS]
    for key in keys(20):
        first = rendezvous_rank(key, ids)
        assert rendezvous_rank(key, ids) == first
        assert sorted(first) == sorted(ids)


def test_removal_remaps_only_the_departed_shards_keys():
    """The property that justifies rendezvous over modulo hashing: keys
    whose owner survives a membership change stay put."""
    ids = [sid for sid, _ in SHARDS]
    before = {key: rendezvous_rank(key, ids)[0] for key in keys()}
    survivors = [sid for sid in ids if sid != "s2"]
    after = {key: rendezvous_rank(key, survivors)[0] for key in keys()}
    for key, owner in before.items():
        if owner != "s2":
            assert after[key] == owner  # unaffected keys did not move
        else:
            assert after[key] != "s2"
    # sanity: s2 owned a real share of the space
    assert sum(1 for owner in before.values() if owner == "s2") > 10


def test_keys_spread_over_all_shards():
    ids = [sid for sid, _ in SHARDS]
    owners = {rendezvous_rank(key, ids)[0] for key in keys()}
    assert owners == set(ids)


# ----------------------------------------------------------------------
# The table
# ----------------------------------------------------------------------


def test_pick_returns_the_top_ranked_healthy_shard():
    table = ShardTable(SHARDS)
    for key in keys(20):
        expected = rendezvous_rank(key, table.ids())[0]
        assert table.pick(key).id == expected


def test_pick_skips_unhealthy_shards():
    table = ShardTable(SHARDS)
    key = next(k for k in keys()
               if rendezvous_rank(k, table.ids())[0] == "s1")
    ranking = rendezvous_rank(key, table.ids())
    # take s1 down: its keys fall to their second-ranked shard
    table.note_failure("s1", threshold=1)
    assert not table.get("s1").healthy
    assert table.pick(key).id == ranking[1]
    # exclusions compose with health
    assert table.pick(key, exclude=(ranking[1],)).id == ranking[2]


def test_pick_returns_none_with_no_healthy_shard():
    table = ShardTable(SHARDS[:2])
    table.note_failure("s0", threshold=1)
    table.note_failure("s1", threshold=1)
    assert table.pick("anything") is None


def test_note_failure_flips_down_only_at_threshold():
    table = ShardTable(SHARDS[:1])
    assert table.note_failure("s0", threshold=3) is False
    assert table.note_failure("s0", threshold=3) is False
    assert table.note_failure("s0", threshold=3) is True  # the flip
    assert table.note_failure("s0", threshold=3) is False  # already down


def test_note_success_revives_and_records_depth():
    table = ShardTable(SHARDS[:1])
    table.note_failure("s0", threshold=1)
    revived = table.note_success("s0", queue_depth=7,
                                 job_states={"queued": 7})
    assert revived is True
    info = table.get("s0")
    assert info.healthy and info.queue_depth == 7
    assert info.job_states == {"queued": 7}
    assert table.note_success("s0") is False  # already up
