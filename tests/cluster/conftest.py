"""Shared fixtures for the cluster tests.

``fleet`` stands up N **in-process** worker shards (real
:class:`~repro.serve.service.EvaluationService` instances behind real
HTTP servers, with stubbed evaluation) plus a :class:`ClusterRouter`
over them.  The router's health monitor is *not* started on a timer —
tests call ``monitor.probe_once()`` to drive failure detection
deterministically.  Subprocess-level crash coverage lives in
``test_recovery.py``.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.cluster import ClusterRouter, ShardTable, router_in_thread
from repro.serve import EvaluationService, ServiceConfig
from repro.serve.http import serve_in_thread

from ..serve.conftest import instant_eval


def payload(**overrides):
    base = {"arch": "spam2", "workloads": ["sum:8"], "timeout_s": 10.0}
    base.update(overrides)
    return base


class Fleet:
    """N in-process shards + one router, with plain-HTTP helpers."""

    def __init__(self, count, evaluate_fn=instant_eval, *,
                 fail_threshold=2, **service_overrides):
        self.services = []
        self.servers = []
        for index in range(count):
            config = dict(workers=2, static_check=False, batch_size=1,
                          shard_id=f"s{index}")
            config.update(service_overrides)
            service = EvaluationService(ServiceConfig(**config),
                                        evaluate_fn=evaluate_fn)
            server, _ = serve_in_thread(service)
            self.services.append(service)
            self.servers.append(server)
        self.table = ShardTable(
            (f"s{i}", self.servers[i].url) for i in range(count)
        )
        # probe interval is irrelevant: tests call probe_once directly
        self.router = ClusterRouter(self.table, probe_interval_s=3600.0,
                                    fail_threshold=fail_threshold,
                                    retry_after_s=2.0)
        self.router_server, _ = router_in_thread(self.router)
        self.url = self.router_server.url

    def service_for(self, job_id):
        shard = job_id.rsplit("-", 1)[0]
        index = int(shard[1:])
        return self.services[index]

    def kill_shard(self, index):
        """Make one shard unreachable (connection refused from now on)."""
        self.servers[index].shutdown()
        self.servers[index].server_close()
        self.services[index].shutdown(drain=False, timeout=2.0)

    def close(self):
        self.router_server.shutdown_router()
        self.router_server.server_close()
        for server, service in zip(self.servers, self.services):
            try:
                server.shutdown()
                server.server_close()
            except OSError:
                pass
            service.shutdown(drain=False, timeout=2.0)

    # -- plain-HTTP helpers (headers matter in these tests) -------------

    def post_job(self, body):
        data = json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            self.url + "/v1/jobs", data=data, method="POST",
            headers={"Content-Type": "application/json"},
        )
        return self._do(request)

    def get(self, path):
        return self._do(urllib.request.Request(self.url + path))

    @staticmethod
    def _do(request):
        try:
            with urllib.request.urlopen(request, timeout=10.0) as resp:
                return resp.status, json.loads(resp.read()), \
                    dict(resp.headers)
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                body = json.loads(raw)
            except (ValueError, UnicodeDecodeError):
                body = {"raw": raw.decode("utf-8", "replace")}
            return exc.code, body, dict(exc.headers)


@pytest.fixture
def fleet_factory():
    fleets = []

    def build(count=2, **kwargs):
        fleet = Fleet(count, **kwargs)
        fleets.append(fleet)
        return fleet

    yield build
    for fleet in fleets:
        fleet.close()
