"""Crash recovery with real worker processes.

These tests SIGKILL actual ``repro-cluster worker`` subprocesses — no
drain, no atexit — and verify the two recovery paths the design
promises:

* **Journal replay**: restart the worker on the same data dir; every
  job id accepted before the kill resolves to a terminal record.
* **Router requeue**: leave the worker dead; the router detects it and
  re-submits its jobs to a survivor, and the original id still answers.
"""

import json
import os
import signal
import time
import urllib.error
import urllib.request

import pytest

from repro.cluster import ClusterRouter, ShardTable, Supervisor, \
    router_in_thread

TERMINAL = ("succeeded", "failed", "rejected", "cancelled")


@pytest.fixture
def fleet_env():
    env = os.environ.copy()
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def post(url, body, timeout=10.0):
    data = json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        url + "/v1/jobs", data=data, method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def get_job(url, job_id, timeout=10.0):
    try:
        with urllib.request.urlopen(f"{url}/v1/jobs/{job_id}",
                                    timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def wait_terminal(url, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    last = None
    while time.monotonic() < deadline:
        try:
            status, record = get_job(url, job_id)
        except (urllib.error.URLError, OSError):
            time.sleep(0.2)
            continue
        last = (status, record)
        if status == 200 and record.get("state") in TERMINAL:
            return record
        time.sleep(0.2)
    raise AssertionError(f"job {job_id} not terminal: {last}")


def job_payload(arch="spam2", size=64):
    return {"arch": arch, "workloads": [f"sum:{size}"],
            "backend": "block", "max_steps": 200_000,
            "timeout_s": 30.0}


def test_journal_replay_after_sigkill(tmp_path, fleet_env):
    """Kill a worker mid-flight; restart it on the same data dir; every
    accepted job id resolves to a finished record."""
    supervisor = Supervisor(count=1, data_dir=str(tmp_path),
                            env=fleet_env,
                            worker_args=["--workers", "1"])
    try:
        supervisor.start()
        supervisor.wait_healthy(timeout_s=60.0)
        worker = supervisor.workers[0]
        # a burst of distinct jobs: the 1-thread worker cannot finish
        # them all before the kill lands
        ids = []
        for size in (96, 128, 160, 192):
            status, record = post(worker.url, job_payload(size=size))
            assert status == 202, record
            ids.append(record["id"])
        assert supervisor.kill(worker.shard_id,
                               signal.SIGKILL) is not None
        worker.process.wait(timeout=10.0)

        # restart on the same data dir: the journal replays
        supervisor.restart = True
        assert supervisor.tend() == 1
        supervisor.wait_healthy(timeout_s=60.0)

        for job_id in ids:
            record = wait_terminal(worker.url, job_id)
            assert record["state"] == "succeeded", record
            assert record["id"] == job_id
    finally:
        supervisor.stop()


def test_router_requeues_a_killed_shards_jobs(tmp_path, fleet_env):
    """SIGKILL one of two shards; the router flips it down, re-submits
    its accepted jobs to the survivor, and the original ids resolve."""
    supervisor = Supervisor(count=2, data_dir=str(tmp_path),
                            env=fleet_env,
                            worker_args=["--workers", "1"])
    router_server = None
    try:
        supervisor.start()
        supervisor.wait_healthy(timeout_s=60.0)
        router = ClusterRouter(ShardTable(supervisor.shard_specs()),
                               probe_interval_s=0.2, fail_threshold=2,
                               probe_timeout_s=1.0)
        router_server, _ = router_in_thread(router)
        url = router_server.url

        # enough distinct candidates that both shards own some work
        ids = []
        for arch in ("spam2", "spam", "acc8", "risc16"):
            status, record = post(url, job_payload(arch=arch))
            assert status == 202, record
            ids.append(record["id"])
        victims = {jid.rsplit("-", 1)[0] for jid in ids}
        assert len(victims) >= 1
        victim = sorted(victims)[0]

        assert supervisor.kill(victim, signal.SIGKILL) is not None
        # the monitor (0.2s interval) flips the shard and requeues
        for job_id in ids:
            record = wait_terminal(url, job_id, timeout=90.0)
            assert record["state"] == "succeeded", record
            assert record["id"] == job_id
        requeued = [jid for jid in ids
                    if jid.rsplit("-", 1)[0] == victim]
        for job_id in requeued:
            _, record = get_job(url, job_id)
            assert record.get("requeued_to"), record
            new_shard = record["requeued_to"].rsplit("-", 1)[0]
            assert new_shard != victim
    finally:
        if router_server is not None:
            router_server.shutdown_router()
            router_server.server_close()
        supervisor.stop()


def test_worker_writes_and_clears_its_pidfile(tmp_path, fleet_env):
    supervisor = Supervisor(count=1, data_dir=str(tmp_path),
                            env=fleet_env,
                            worker_args=["--workers", "1"])
    try:
        supervisor.start()
        supervisor.wait_healthy(timeout_s=60.0)
        worker = supervisor.workers[0]
        pidfile = os.path.join(str(tmp_path), worker.shard_id,
                               "worker.pid")
        assert int(open(pidfile).read()) == worker.pid
    finally:
        supervisor.stop()
    assert not os.path.exists(pidfile)  # graceful exit cleans up
