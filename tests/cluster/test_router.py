"""The cluster router over in-process worker shards."""

import threading
import time

from repro.cluster import rendezvous_rank
from repro.serve.jobs import shard_of_job_id

from .conftest import payload

TERMINAL = ("succeeded", "failed", "rejected", "cancelled")

#: built-in candidates with distinct fingerprints (distinct shard keys)
ARCHS = ("spam2", "spam", "acc8", "risc16")


def owners_by_arch(fleet):
    """arch → owning shard id, from the router's own placement."""
    return {arch: rendezvous_rank(
        fleet.router._shard_key({"arch": arch}), fleet.table.ids())[0]
        for arch in ARCHS}


def archs_on_different_shards(fleet):
    """Two archs owned by two different shards (the 4 built-ins always
    split across >=2 shards of a 2..4-shard table in practice; assert
    rather than assume)."""
    owners = owners_by_arch(fleet)
    by_owner = {}
    for arch, owner in owners.items():
        by_owner.setdefault(owner, arch)
    assert len(by_owner) >= 2, f"all archs hashed to one shard: {owners}"
    (owner_a, arch_a), (owner_b, arch_b) = list(by_owner.items())[:2]
    return (arch_a, owner_a), (arch_b, owner_b)


def wait_terminal(fleet, job_id, timeout=15.0):
    deadline = time.monotonic() + timeout
    while True:
        status, record, _ = fleet.get(f"/v1/jobs/{job_id}")
        if status == 200 and record["state"] in TERMINAL:
            return record
        assert time.monotonic() < deadline, (status, record)
        time.sleep(0.02)


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------


def test_same_description_routes_to_the_same_shard(fleet_factory):
    fleet = fleet_factory(count=3)
    shards = set()
    for _ in range(4):
        status, record, _ = fleet.post_job(payload())
        assert status == 202
        shards.add(shard_of_job_id(record["id"]))
    assert len(shards) == 1  # one candidate, one owner


def test_distinct_descriptions_spread_and_follow_the_ranking(
        fleet_factory):
    fleet = fleet_factory(count=3)
    for arch in ARCHS:
        status, record, _ = fleet.post_job(payload(arch=arch))
        assert status == 202
        owner = shard_of_job_id(record["id"])
        key = fleet.router._shard_key({"arch": arch})
        assert owner == rendezvous_rank(key, fleet.table.ids())[0]


def test_duplicate_submissions_coalesce_on_the_owning_shard(
        fleet_factory):
    gate = threading.Event()

    def gated_eval(job):
        gate.wait(5.0)
        from ..serve.conftest import stub_evaluation
        return stub_evaluation(job.label)

    fleet = fleet_factory(count=2, evaluate_fn=gated_eval)
    _, first, _ = fleet.post_job(payload())
    _, second, _ = fleet.post_job(payload())
    gate.set()
    assert second.get("coalesced_with") == first["id"]
    assert wait_terminal(fleet, first["id"])["state"] == "succeeded"
    assert wait_terminal(fleet, second["id"])["state"] == "succeeded"


def test_status_routes_by_job_id_prefix(fleet_factory):
    fleet = fleet_factory(count=3)
    status, record, _ = fleet.post_job(payload())
    job_id = record["id"]
    final = wait_terminal(fleet, job_id)
    assert final["id"] == job_id
    # the record really lives on the shard the prefix names
    owner = fleet.service_for(job_id)
    assert owner.job(job_id).to_dict()["state"] == "succeeded"


def test_unknown_job_is_a_404(fleet_factory):
    fleet = fleet_factory(count=2)
    status, body, _ = fleet.get("/v1/jobs/sX-doesnotexist")
    assert status == 404
    assert "unknown job" in body["error"]


def test_list_jobs_merges_shards(fleet_factory):
    fleet = fleet_factory(count=2)
    ids = []
    for arch in ARCHS[:2]:
        _, record, _ = fleet.post_job(payload(arch=arch))
        ids.append(record["id"])
    for job_id in ids:
        wait_terminal(fleet, job_id)
    status, listing, _ = fleet.get("/v1/jobs")
    assert status == 200
    listed = {job["id"] for job in listing["jobs"]}
    assert set(ids) <= listed
    assert all("shard" in job for job in listing["jobs"])


# ----------------------------------------------------------------------
# Verbatim passthrough
# ----------------------------------------------------------------------


def test_rejection_diagnostics_pass_through_verbatim(fleet_factory):
    fleet = fleet_factory(count=2)
    status, record, _ = fleet.post_job(payload(arch=None,
                                               isdl="not isdl at all"))
    assert status == 422
    assert record["state"] == "rejected"
    assert any(d["code"] == "ISDL001" for d in record["diagnostics"])


def test_backpressure_429_and_retry_after_pass_through(fleet_factory):
    gate = threading.Event()

    def stuck_eval(job):
        gate.wait(10.0)
        from ..serve.conftest import stub_evaluation
        return stub_evaluation(job.label)

    fleet = fleet_factory(count=1, evaluate_fn=stuck_eval,
                          workers=1, max_queue_depth=1, coalesce=False)
    try:
        fleet.post_job(payload())          # occupies the worker
        fleet.post_job(payload())          # fills the queue
        status, body, headers = fleet.post_job(payload())
        assert status == 429
        assert headers.get("Retry-After") == "1"  # the worker's header
        assert "queue" in body["error"]
    finally:
        gate.set()


def test_all_shards_down_is_503_with_retry_after(fleet_factory):
    fleet = fleet_factory(count=2, fail_threshold=1)
    fleet.kill_shard(0)
    fleet.kill_shard(1)
    status, body, headers = fleet.post_job(payload())
    assert status == 503
    assert "no healthy shard" in body["error"]
    assert headers.get("Retry-After") == "2"
    health = fleet.router.health()
    assert health["status"] == "down"
    counters = fleet.router.metrics_snapshot().counters
    assert counters.get("cluster.unavailable") == 1


# ----------------------------------------------------------------------
# Dead-shard requeue
# ----------------------------------------------------------------------


def test_dead_shard_jobs_requeue_to_survivors(fleet_factory):
    gate = threading.Event()

    def gated_eval(job):
        gate.wait(10.0)
        from ..serve.conftest import stub_evaluation
        return stub_evaluation(job.label)

    fleet = fleet_factory(count=2, evaluate_fn=gated_eval,
                          fail_threshold=2)
    # park one job on each shard (pick archs the placement splits)
    (arch_a, owner_a), (arch_b, _) = archs_on_different_shards(fleet)
    records = {}
    for arch in (arch_a, arch_b):
        _, record, _ = fleet.post_job(payload(arch=arch))
        records[arch] = record
    assert shard_of_job_id(records[arch_a]["id"]) == owner_a

    victim = owner_a
    fleet.kill_shard(int(victim[1:]))
    gate.set()
    # two failed probes flip the shard down and trigger the requeue
    fleet.router.monitor.probe_once()
    fleet.router.monitor.probe_once()
    assert not fleet.table.get(victim).healthy

    original = records[arch_a]["id"]
    final = wait_terminal(fleet, original)
    # the client's id still resolves; the record says where it went
    assert final["id"] == original
    assert final["state"] == "succeeded"
    requeued_to = final.get("requeued_to")
    assert requeued_to is not None
    assert shard_of_job_id(requeued_to) != victim
    counters = fleet.router.metrics_snapshot().counters
    assert counters.get("cluster.jobs_requeued", 0) >= 1
    # the survivor's job was untouched
    other = wait_terminal(fleet, records[arch_b]["id"])
    assert other["state"] == "succeeded"
    assert "requeued_to" not in other


def test_inline_requeue_on_status_lookup(fleet_factory):
    """A status poll that hits a down shard requeues right away instead
    of making the client wait for the monitor's sweep."""
    gate = threading.Event()

    def gated_eval(job):
        gate.wait(10.0)
        from ..serve.conftest import stub_evaluation
        return stub_evaluation(job.label)

    fleet = fleet_factory(count=2, evaluate_fn=gated_eval,
                          fail_threshold=1)
    _, record, _ = fleet.post_job(payload())
    victim = shard_of_job_id(record["id"])
    fleet.kill_shard(int(victim[1:]))
    gate.set()
    # mark the shard down without running the requeue sweep
    fleet.table.note_failure(victim, threshold=1)
    final = wait_terminal(fleet, record["id"])
    assert final["state"] == "succeeded"
    assert shard_of_job_id(final["requeued_to"]) != victim


def test_router_health_shape_matches_the_serve_contract(fleet_factory):
    fleet = fleet_factory(count=2)
    fleet.router.monitor.probe_once()
    status, health, _ = fleet.get("/healthz")
    assert status == 200
    for field in ("status", "uptime_s", "workers", "queue_depth",
                  "jobs", "counters"):
        assert field in health
    assert health["role"] == "router"
    assert health["workers"] == 2
    assert {s["id"] for s in health["shards"]} == {"s0", "s1"}


def test_router_metrics_are_prometheus_text(fleet_factory):
    import urllib.request

    fleet = fleet_factory(count=1)
    fleet.post_job(payload())
    with urllib.request.urlopen(fleet.url + "/metrics",
                                timeout=10.0) as response:
        text = response.read().decode("utf-8")
    assert "cluster_jobs_forwarded_total" in text
