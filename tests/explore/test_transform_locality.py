"""Golden transform-locality tests.

Every transform in ``repro.explore.transforms`` is applied to each
architecture with a deterministic parameterization, and the resulting
``FingerprintDelta`` is profiled: which unit categories changed, and
exactly which units.  The profiles are pinned in
``golden_locality.json`` so a transform that silently starts perturbing
unrelated units (defeating incremental reuse) fails loudly.

Transforms that do not apply to an architecture (e.g. narrowing the
register file of an accumulator machine) are pinned as
``{"not_applicable": <reason>}`` entries.

Regenerate the golden file after an intentional change with::

    PYTHONPATH=src python - <<'EOF'
    import json, pathlib
    from tests.explore.test_transform_locality import locality_profile, ARCHES
    golden = {arch: locality_profile(arch) for arch in ARCHES}
    path = pathlib.Path("tests/explore/golden_locality.json")
    path.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    EOF
"""

import json
import pathlib

import pytest

from repro.arch import ARCHITECTURES, description_for
from repro.errors import ReproError
from repro.explore import transforms
from repro.isdl import ast, fingerprint_delta

ARCHES = sorted(ARCHITECTURES)
GOLDEN = pathlib.Path(__file__).parent / "golden_locality.json"

_SET_FIELDS = (
    "tokens_changed",
    "nonterminals_changed",
    "storages_changed",
    "aliases_changed",
    "changed_ops",
    "added_ops",
    "removed_ops",
)
_FLAG_FIELDS = (
    "header_changed",
    "format_changed",
    "fields_changed",
    "constraints_changed",
    "attributes_changed",
    "op_order_changed",
)


def _profile(delta):
    """Serialize a delta as the sorted set of units in each category.

    Empty categories are omitted so the golden file reads as "what this
    transform touches", and the derived reuse predicates are pinned too.
    """
    out = {}
    for name in _FLAG_FIELDS:
        if getattr(delta, name):
            out[name] = True
    for name in _SET_FIELDS:
        units = getattr(delta, name)
        if units:
            out[name] = sorted(
                ":".join(u) if isinstance(u, tuple) else u for u in units
            )
    out["predicates"] = {
        "instruction_set_unchanged": delta.instruction_set_unchanged,
        "global_env_unchanged": delta.global_env_unchanged,
        "storage_env_unchanged": delta.storage_env_unchanged,
        "sim_env_unchanged": delta.sim_env_unchanged,
        "assembly_reusable": delta.assembly_reusable,
    }
    return out


def _mutations(desc):
    """Deterministic parameterization of every transform for ``desc``."""
    first = desc.fields[0]
    last = desc.fields[-1]
    busiest = max(desc.fields, key=lambda f: len(f.operations))
    op0 = first.operations[0]
    memories = [
        s for s in desc.storages.values()
        if s.addressed and (s.depth or 0) >= 2
    ]
    rf = desc.storages.get("RF")

    def drop_two(d):
        if len(busiest.operations) < 3:
            raise ReproError("fewer than three operations in any field")
        return transforms.drop_operations(
            d,
            [(busiest.name, op.name) for op in busiest.operations[-2:]],
        )

    def narrow(d):
        if rf is None:
            # let the transform raise its own diagnostic
            return transforms.narrow_register_file(d, 4)
        return transforms.narrow_register_file(d, rf.depth // 2)

    return {
        "drop_operation": lambda d: transforms.drop_operation(
            d, first.name, first.operations[-1].name
        ),
        "drop_operations": drop_two,
        "drop_field": lambda d: transforms.drop_field(d, first.name),
        "set_operation_timing": lambda d: transforms.set_operation_timing(
            d, first.name, op0.name,
            costs=ast.Costs(op0.costs.cycle + 1, op0.costs.stall,
                            op0.costs.size),
        ),
        "add_constraint": lambda d: transforms.add_constraint(
            d, first.name, first.operations[0].name,
            last.name, last.operations[-1].name,
        ),
        "resize_memory": lambda d: transforms.resize_memory(
            d, memories[0].name, memories[0].depth // 2
        ),
        "narrow_register_file": narrow,
    }


def locality_profile(arch):
    desc = description_for(arch)
    out = {}
    for name, mutate in sorted(_mutations(desc).items()):
        try:
            child = mutate(desc)
        except (ReproError, ValueError) as exc:
            out[name] = {"not_applicable": str(exc)}
            continue
        out[name] = _profile(fingerprint_delta(desc, child))
    return out


def _load_golden():
    return json.loads(GOLDEN.read_text())


@pytest.mark.parametrize("arch", ARCHES)
def test_transform_locality_matches_golden(arch):
    golden = _load_golden()
    assert arch in golden, f"golden_locality.json has no entry for {arch}"
    assert locality_profile(arch) == golden[arch]


def test_golden_covers_every_transform():
    golden = _load_golden()
    expected = set(_mutations(description_for("risc16")))
    for arch, entries in golden.items():
        assert set(entries) == expected, arch


def test_every_transform_renames_so_header_always_changes():
    """All transforms rename the child; reuse predicates must therefore
    never depend on the header digest."""
    golden = _load_golden()
    for arch, entries in golden.items():
        for name, profile in entries.items():
            if "not_applicable" in profile:
                continue
            assert profile.get("header_changed"), (arch, name)
