"""Tests for the parallel cache-backed evaluation engine."""

import pytest

from repro.arch import description_for
from repro.cache import ArtifactCache
from repro.codegen import Cond, KernelBuilder, Opcode
from repro.explore import (
    CostWeights,
    EvalRequest,
    Explorer,
    ParallelEvaluator,
)
from repro.isdl import fingerprint


def sum_kernel(n=6):
    K = KernelBuilder("sum")
    cnt = K.li(n)
    acc = K.li(0)
    K.label("loop")
    K.binary_into(acc, Opcode.ADD, acc, cnt)
    K.binary_into(cnt, Opcode.SUB, cnt, 1)
    K.cbr(Cond.NE, cnt, 0, "loop")
    K.store(K.li(0), acc)
    return K.build()


def requests():
    return [
        EvalRequest(description_for("risc16"), "initial"),
        EvalRequest(description_for("spam"), "initial"),
        EvalRequest(description_for("acc8"), "initial"),
    ]


@pytest.fixture(scope="module")
def serial_results():
    with ParallelEvaluator([sum_kernel()], mode="serial") as ev:
        return ev.evaluate_many(requests())


@pytest.mark.parametrize("mode", ["thread", "process"])
def test_pool_modes_match_serial_results(mode, serial_results):
    with ParallelEvaluator([sum_kernel()], mode=mode) as evaluator:
        results = evaluator.evaluate_many(requests())
    assert [r.index for r in results] == [0, 1, 2]
    for got, want in zip(results, serial_results):
        assert got.ok and want.ok
        assert got.label == want.label
        assert got.evaluation.feasible == want.evaluation.feasible
        assert got.evaluation.cycles == want.evaluation.cycles
        assert got.evaluation.die_size == want.evaluation.die_size
        assert got.evaluation.cost() == want.evaluation.cost()


@pytest.mark.parametrize("mode", ["serial", "thread", "process"])
def test_failed_candidate_is_recorded_not_raised(mode):
    batch = [
        EvalRequest(description_for("risc16"), "good"),
        EvalRequest("not a description", "broken"),
        EvalRequest(description_for("risc16"), "good-too"),
    ]
    with ParallelEvaluator([sum_kernel()], mode=mode) as evaluator:
        results = evaluator.evaluate_many(batch)
    assert len(results) == 3
    assert results[0].ok and results[0].evaluation.feasible
    assert not results[1].ok
    assert results[1].error
    assert results[2].ok and results[2].evaluation.feasible


def test_warm_cache_skips_dispatch():
    cache = ArtifactCache()
    kernels = [sum_kernel()]
    with ParallelEvaluator(kernels, cache=cache, mode="serial") as ev:
        first = ev.evaluate_many(requests())
        assert all(not r.cached for r in first)
        second = ev.evaluate_many(requests())
    assert all(r.cached for r in second)
    for got, want in zip(second, first):
        assert got.evaluation.cycles == want.evaluation.cycles


def test_process_results_warm_the_parent_cache():
    cache = ArtifactCache()
    kernels = [sum_kernel()]
    with ParallelEvaluator(kernels, cache=cache, mode="process") as ev:
        ev.evaluate_many(requests())
        again = ev.evaluate_many(requests())
    assert all(r.cached for r in again)
    assert cache.stats.hits_by_kind["evaluation"] >= 3


def test_weights_travel_with_evaluations():
    weights = CostWeights(1.0, 0.0, 0.0)
    with ParallelEvaluator(
        [sum_kernel()], weights=weights, mode="serial"
    ) as ev:
        (result,) = ev.evaluate_many(
            [EvalRequest(description_for("risc16"))]
        )
    assert result.evaluation.weights == weights
    # Evaluation.cost() now defaults to the attached weights
    assert result.evaluation.cost() == result.evaluation.cost(weights)


# ----------------------------------------------------------------------
# Explorer integration
# ----------------------------------------------------------------------


def test_explorer_parallel_matches_seed_serial_engine():
    kernels = [sum_kernel()]
    weights = CostWeights(1.0, 0.5, 0.3)
    serial = Explorer(
        kernels, weights,
        evaluator=ParallelEvaluator(
            kernels, weights=weights, cache=None, mode="serial"
        ),
    ).explore(description_for("spam"), max_iterations=2)
    parallel = Explorer(kernels, weights).explore(
        description_for("spam"), max_iterations=2
    )
    assert fingerprint(serial.best.desc) == fingerprint(parallel.best.desc)
    assert serial.best.evaluation.cycles == parallel.best.evaluation.cycles
    assert [c.derived_by for c in serial.accepted] == [
        c.derived_by for c in parallel.accepted
    ]
    assert [c.cost(weights) for c in serial.accepted] == [
        c.cost(weights) for c in parallel.accepted
    ]


def test_explorer_records_candidate_errors_without_aborting():
    kernels = [sum_kernel()]

    class Sabotaged(ParallelEvaluator):
        """Blow up the first proposal of every round."""

        def evaluate_many(self, reqs):
            results = super().evaluate_many(reqs)
            if results:
                first = results[0]
                first.error = "RuntimeError: injected tool-chain crash"
                first.evaluation = None
            return results

    explorer = Explorer(
        kernels,
        evaluator=Sabotaged(kernels, cache=ArtifactCache(), mode="serial"),
    )
    log = explorer.explore(description_for("spam"), max_iterations=2)
    assert log.errors, "sabotaged candidates should be recorded"
    assert all(r.error for r in log.errors)
    assert log.accepted, "the sweep itself must still complete"


def test_explorer_cache_shared_across_explore_calls():
    kernels = [sum_kernel()]
    explorer = Explorer(kernels, parallel="serial")
    explorer.explore(description_for("spam"), max_iterations=2)
    baseline_hits = explorer.cache.stats.hits_by_kind["evaluation"]
    explorer.explore(description_for("spam"), max_iterations=2)
    assert (
        explorer.cache.stats.hits_by_kind["evaluation"] > baseline_hits
    ), "the second sweep should ride the first sweep's cache"


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        ParallelEvaluator([sum_kernel()], mode="quantum")


# ----------------------------------------------------------------------
# Simulator backend selection
# ----------------------------------------------------------------------


def test_block_backend_matches_xsim_cycles():
    kernels = [sum_kernel()]
    with ParallelEvaluator(kernels, mode="serial") as ref, \
            ParallelEvaluator(kernels, mode="serial",
                              sim_backend="block") as fast:
        want = ref.evaluate_many(requests())
        got = fast.evaluate_many(requests())
    for a, b in zip(got, want):
        assert a.ok and b.ok
        assert a.evaluation.cycles == b.evaluation.cycles
        assert a.evaluation.stall_cycles == b.evaluation.stall_cycles
        assert a.evaluation.per_kernel_cycles == b.evaluation.per_kernel_cycles


def test_backend_is_part_of_the_evaluation_key():
    cache = ArtifactCache()
    kernels = [sum_kernel()]
    desc = description_for("risc16")
    with ParallelEvaluator(kernels, cache=cache, mode="serial") as ev:
        ev.evaluate_many([EvalRequest(desc)])
    with ParallelEvaluator(kernels, cache=cache, mode="serial",
                           sim_backend="block") as ev:
        (result,) = ev.evaluate_many([EvalRequest(desc)])
    # a different backend is a different measurement, not a cache hit
    assert not result.cached
    assert cache.stats.misses_by_kind["evaluation"] == 2
