"""Incremental (delta-aware) builds must be indistinguishable from cold ones.

The contract under test: threading a ``parent`` description through the
evaluation pipeline changes *cost*, never *results*.  Every test here
builds the same child twice — once cold, once incrementally off its
parent — and asserts byte/value equality, then checks that the reuse
actually fired (otherwise these tests would pass vacuously).
"""

import dataclasses

import pytest

from repro import obs
from repro.arch import description_for
from repro.cache import ArtifactCache
from repro.codegen import Cond, KernelBuilder, Opcode
from repro.encoding.signature import SignatureTable, decode_preserved
from repro.explore import evaluate, transforms
from repro.explore.metrics import INCREMENTAL_CHECK_ENV
from repro.hgen import synthesize
from repro.isdl import ast, fingerprint_delta

PUBLIC_FIELDS = (
    "feasible", "reason", "cycles", "stall_cycles", "cycle_ns",
    "die_size", "core_die_size", "power_mw", "verilog_lines",
    "per_kernel_cycles",
)


def sum_kernel(n=6, name="sum"):
    K = KernelBuilder(name)
    cnt = K.li(n)
    acc = K.li(0)
    K.label("loop")
    K.binary_into(acc, Opcode.ADD, acc, cnt)
    K.binary_into(cnt, Opcode.SUB, cnt, 1)
    K.cbr(Cond.NE, cnt, 0, "loop")
    K.store(K.li(0), acc)
    return K.build()


def assert_same_evaluation(cold, incr):
    for name in PUBLIC_FIELDS:
        assert getattr(cold, name) == getattr(incr, name), name


def retimed_child(desc, field_name, op_name):
    op = desc.operation(field_name, op_name)
    return transforms.set_operation_timing(
        desc, field_name, op_name,
        costs=ast.Costs(op.costs.cycle + 1, op.costs.stall, op.costs.size),
    )


def drop_unused_child(desc, kernels):
    """Drop an operation the kernels never execute, keeping the child
    feasible — the mutation that satisfies every reuse predicate at once."""
    parent_eval = evaluate(desc, kernels)
    assert parent_eval.feasible
    for fname, oname in sorted(parent_eval.stats.unused_operations(desc)):
        child = transforms.drop_operation(desc, fname, oname)
        if evaluate(child, kernels).feasible:
            return child
    pytest.fail("no droppable unused operation found")


# ----------------------------------------------------------------------
# Artifact-level equality
# ----------------------------------------------------------------------


def test_sigtable_row_carry_equals_cold():
    desc = description_for("risc16")
    child = retimed_child(desc, "EX", "add")
    parent_table = SignatureTable(desc)
    delta = fingerprint_delta(desc, child)
    warm = SignatureTable(child, reuse_from=(parent_table, delta))
    cold = SignatureTable(child)
    assert warm.reuse_counts["reused"] > 0
    assert set(warm.operation_signatures) == set(cold.operation_signatures)
    for key, sig in cold.operation_signatures.items():
        assert warm.operation_signatures[key].symbols == sig.symbols, key
    for key, sig in cold.option_signatures.items():
        assert warm.option_signatures[key].symbols == sig.symbols, key


def test_incremental_synthesis_equals_cold():
    desc = description_for("spam2")
    child = retimed_child(
        desc, desc.fields[0].name, desc.fields[0].operations[0].name
    )
    parent_model = synthesize(desc)
    delta = fingerprint_delta(desc, child)
    warm = synthesize(child, reuse_from=(parent_model, delta))
    cold = synthesize(child)
    assert warm.reuse_counts.get("matrix_entries_copied", 0) > 0
    assert warm.reuse_counts.get("components_reused", 0) > 0
    assert warm.verilog == cold.verilog
    assert warm.die_size == cold.die_size
    assert warm.core_die_size == cold.core_die_size
    assert warm.cycle_ns == cold.cycle_ns
    assert warm.cliques == cold.cliques
    assert warm.allocation == cold.allocation


def test_decode_preserved_logic():
    desc = description_for("risc16")
    table = SignatureTable(desc)
    child = transforms.drop_operation(desc, "EX", "xor_")
    delta = fingerprint_delta(desc, child)
    child_table = SignatureTable(child)
    add_word = table.operation("EX", "add").constant_value
    xor_word = table.operation("EX", "xor_").constant_value
    # a word decoding to an untouched op is provably preserved
    assert decode_preserved(child_table, child, [add_word], delta)
    # a word that no longer decodes in the child is not
    assert not decode_preserved(child_table, child, [xor_word], delta)
    # any global-environment change voids the proof outright
    narrowed = transforms.narrow_register_file(desc, 4)
    ndelta = fingerprint_delta(desc, narrowed)
    ntable = SignatureTable(narrowed)
    assert not decode_preserved(ntable, narrowed, [add_word], ndelta)


# ----------------------------------------------------------------------
# Evaluation-level equality
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["xsim", "block"])
def test_incremental_evaluation_equals_cold(backend):
    desc = description_for("risc16")
    kernels = [sum_kernel()]
    child = retimed_child(desc, "EX", "halt")
    cold = evaluate(child, kernels, sim_backend=backend)
    cache = ArtifactCache()
    evaluate(desc, kernels, cache=cache, sim_backend=backend)
    incr = evaluate(child, kernels, cache=cache, sim_backend=backend,
                    parent=desc)
    assert_same_evaluation(cold, incr)
    assert cache.stats.incremental_builds["sigtable"] >= 1
    assert cache.stats.incremental_builds["synth"] >= 1


def test_sim_result_adoption_on_unused_drop():
    desc = description_for("risc16")
    kernels = [sum_kernel()]
    child = drop_unused_child(desc, kernels)
    cold = evaluate(child, kernels)
    cache = ArtifactCache()
    evaluate(desc, kernels, cache=cache)
    incr = evaluate(child, kernels, cache=cache, parent=desc)
    assert_same_evaluation(cold, incr)
    # the simulation itself was adopted from the parent, not re-run
    assert cache.stats.incremental_builds["sim"] >= 1
    assert cache.stats.units_reused["sim"] >= 1


def test_program_adoption_on_rename_only_child():
    desc = description_for("risc16")
    kernels = [sum_kernel()]
    child = dataclasses.replace(desc, name="RISC16R")
    cold = evaluate(child, kernels)
    cache = ArtifactCache()
    evaluate(desc, kernels, cache=cache)
    incr = evaluate(child, kernels, cache=cache, parent=desc)
    assert_same_evaluation(cold, incr)
    assert cache.stats.incremental_builds["program"] >= 1


def test_block_backend_adopts_unchanged_blocks():
    """A final-block-only mutation lets every other block's table be
    carried over; the obs counter proves the adoption happened."""
    desc = description_for("risc16")
    kernels = [sum_kernel()]
    child = retimed_child(desc, "EX", "halt")
    cold = evaluate(child, kernels, sim_backend="block")
    obs.enable()
    try:
        cache = ArtifactCache()
        evaluate(desc, kernels, cache=cache, sim_backend="block")
        with obs.capture() as cap:
            incr = evaluate(child, kernels, cache=cache,
                            sim_backend="block", parent=desc)
        adopted = cap.snapshot.counters.get("blocksim.blocks_adopted", 0)
    finally:
        obs.disable(reset=True)
    assert_same_evaluation(cold, incr)
    assert adopted > 0


def test_checked_incremental_mode(monkeypatch):
    """REPRO_INCREMENTAL_CHECK shadows every incremental build with a cold
    one and asserts equality — it must pass silently on correct reuse."""
    monkeypatch.setenv(INCREMENTAL_CHECK_ENV, "1")
    desc = description_for("risc16")
    kernels = [sum_kernel()]
    child = retimed_child(desc, "EX", "add")
    cache = ArtifactCache()
    evaluate(desc, kernels, cache=cache)
    incr = evaluate(child, kernels, cache=cache, parent=desc)
    assert incr.feasible


def test_parent_is_only_a_hint():
    """Same cache key, same result, with or without the parent hint."""
    desc = description_for("risc16")
    kernels = [sum_kernel()]
    child = retimed_child(desc, "EX", "add")
    with_hint = ArtifactCache()
    evaluate(desc, kernels, cache=with_hint)
    a = evaluate(child, kernels, cache=with_hint, parent=desc)
    without = ArtifactCache()
    evaluate(desc, kernels, cache=without)
    b = evaluate(child, kernels, cache=without)
    assert_same_evaluation(a, b)
    assert a.fingerprint == b.fingerprint


def test_cached_stats_not_mutated_by_merge():
    """Merging per-kernel stats must copy — a second evaluation pulling
    the same cached sim result has to see pristine numbers."""
    desc = description_for("risc16")
    kernels = [sum_kernel(), sum_kernel(4, name="sum4")]
    cache = ArtifactCache()
    first = evaluate(desc, kernels, cache=cache, memoize=False)
    second = evaluate(desc, kernels, cache=cache, memoize=False)
    assert_same_evaluation(first, second)
    assert first.stats == second.stats


def test_stats_report_breaks_out_incremental_reuse():
    desc = description_for("risc16")
    kernels = [sum_kernel()]
    cache = ArtifactCache()
    evaluate(desc, kernels, cache=cache)
    child = retimed_child(desc, "EX", "add")
    evaluate(child, kernels, cache=cache, parent=desc)
    report = cache.stats.report()
    assert "incremental:" in report
    assert "sigtable" in report
    assert "units reused" in report
