"""Technology sweeps through the exploration layer.

The claim under test (ISSUE acceptance bar): sweeping a candidate
across ≥2 technology nodes grows the Pareto frontier over
``(cost, cycle_ns, power_mw, die_size)`` strictly beyond the pinned
baseline's single point, while the baseline synthesis is shared — one
``hgen.syntheses`` tick for the whole sweep.
"""

import pytest

from repro import obs
from repro.arch import description_for
from repro.codegen import Cond, KernelBuilder, Opcode
from repro.explore import Explorer, evaluation_key, operating_point_table
from repro.explore.pareto import frontier, objectives
from repro.tech import TechSpec


def sum_kernel(n=6):
    K = KernelBuilder("sum")
    cnt = K.li(n)
    acc = K.li(0)
    K.label("loop")
    K.binary_into(acc, Opcode.ADD, acc, cnt)
    K.binary_into(cnt, Opcode.SUB, cnt, 1)
    K.cbr(Cond.NE, cnt, 0, "loop")
    K.store(K.li(0), acc)
    return K.build()


SPECS = [None, TechSpec(22, "HP"), TechSpec(22, "HP", 2.0),
         TechSpec(22, "LP")]


@pytest.fixture(scope="module")
def sweep():
    explorer = Explorer([sum_kernel()], parallel="serial")
    desc = description_for("spam2")
    obs.enable()
    try:
        with obs.capture() as cap:
            candidates = explorer.tech_sweep(desc, SPECS)
    finally:
        obs.disable(reset=True)
    return candidates, cap.snapshot


def test_sweep_returns_candidates_in_spec_order(sweep):
    candidates, _ = sweep
    assert len(candidates) == len(SPECS)
    base, hp, capped, lp = candidates
    assert base.evaluation.tech_node is None
    assert (hp.evaluation.tech_node, hp.evaluation.tech_flavor) == (22, "HP")
    assert capped.evaluation.budget_mw == 2.0
    assert capped.evaluation.power_capped
    assert (lp.evaluation.tech_node, lp.evaluation.tech_flavor) == (22, "LP")
    for candidate in candidates:
        assert candidate.derived_by == "tech_sweep"


def test_sweep_labels_carry_the_tech_suffix(sweep):
    candidates, _ = sweep
    names = [c.evaluation.name for c in candidates]
    assert names[1].endswith("@22HP")
    assert names[2].endswith("@22HP/2mW")
    assert names[3].endswith("@22LP")
    assert "@" not in names[0]


def test_sweep_shares_one_baseline_synthesis(sweep):
    _, snapshot = sweep
    assert snapshot.counters.get("hgen.syntheses") == 1.0


def test_sweeping_nodes_grows_the_pareto_frontier(sweep):
    candidates, _ = sweep
    evaluations = [c.evaluation for c in candidates]
    pinned = frontier(evaluations[:1], key=objectives)
    swept = frontier(evaluations, key=objectives)
    assert len(pinned) == 1
    assert len(swept) > len(pinned)
    # the scaled points dominate the baseline process outright
    assert evaluations[0] not in swept


def test_hp_and_lp_are_mutually_non_dominated(sweep):
    candidates, _ = sweep
    swept = frontier([c.evaluation for c in candidates], key=objectives)
    flavors = {(e.tech_node, e.tech_flavor) for e in swept}
    assert (22, "HP") in flavors
    assert (22, "LP") in flavors


def test_operating_point_table_renders_the_swept_points(sweep):
    candidates, _ = sweep
    table = operating_point_table([c.evaluation for c in candidates])
    assert "22HP" in table and "22LP" in table
    assert "capped" in table
    # the tech-free baseline row is skipped, not rendered with dashes
    assert table.count("\n") == 2 + 3  # title + header + rule... 3 rows


def test_operating_point_table_empty_without_tech(sweep):
    candidates, _ = sweep
    assert operating_point_table([candidates[0].evaluation]) == ""


def test_tech_free_evaluation_key_shape_is_unchanged():
    desc = description_for("spam2")
    kernels = [sum_kernel()]
    bare = evaluation_key(desc, kernels, 1000)
    assert len(bare) == 4
    extended = evaluation_key(desc, kernels, 1000,
                              tech=TechSpec(22, "HP", 2.0))
    assert extended[:4] == bare
    assert extended[4] == ("tech", 22, "HP", 2.0)
