"""Tests for the Pareto dominance utilities (repro.explore.pareto)."""

import itertools

import pytest

from repro.arch import description_for
from repro.codegen import Cond, KernelBuilder, Opcode
from repro.explore import CostWeights, Explorer, ParallelEvaluator
from repro.explore.pareto import (
    dominates,
    frontier,
    frontier_indices,
    objectives,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False


POINTS = [
    (1.0, 1.0),
    (2.0, 2.0),   # dominated by (1, 1)
    (0.5, 3.0),   # incomparable with (1, 1)
    (1.0, 1.0),   # exact duplicate of index 0
    (3.0, 0.5),   # incomparable
    (1.0, 2.0),   # dominated by (1, 1)
]


# ----------------------------------------------------------------------
# dominance is a strict partial order
# ----------------------------------------------------------------------


def test_dominates_basics():
    assert dominates((1, 1), (2, 2))
    assert dominates((1, 2), (1, 3))
    assert not dominates((1, 3), (3, 1))
    assert not dominates((3, 1), (1, 3))


def test_dominance_is_irreflexive():
    for point in POINTS:
        assert not dominates(point, point)


def test_dominance_is_asymmetric():
    for a, b in itertools.permutations(POINTS, 2):
        assert not (dominates(a, b) and dominates(b, a))


def test_dominance_is_transitive():
    for a, b, c in itertools.permutations(POINTS, 3):
        if dominates(a, b) and dominates(b, c):
            assert dominates(a, c)


def test_dominates_rejects_mismatched_lengths():
    with pytest.raises(ValueError):
        dominates((1, 2), (1, 2, 3))


if HAVE_HYPOTHESIS:
    finite = st.floats(allow_nan=False, allow_infinity=False,
                       min_value=-1e9, max_value=1e9)
    point3 = st.tuples(finite, finite, finite)

    @given(point3, point3, point3)
    @settings(max_examples=200, deadline=None)
    def test_dominance_partial_order_property(a, b, c):
        assert not dominates(a, a)
        assert not (dominates(a, b) and dominates(b, a))
        if dominates(a, b) and dominates(b, c):
            assert dominates(a, c)


# ----------------------------------------------------------------------
# frontier extraction
# ----------------------------------------------------------------------


def test_frontier_drops_exactly_the_dominated_points():
    kept = frontier_indices(POINTS)
    assert kept == [0, 2, 4]
    for i in range(len(POINTS)):
        if i in kept:
            continue
        dominated = any(dominates(POINTS[j], POINTS[i]) for j in kept)
        duplicate = any(POINTS[j] == POINTS[i] for j in kept)
        assert dominated or duplicate


def test_frontier_keeps_first_of_exact_duplicates():
    kept = frontier_indices([(1.0, 1.0), (1.0, 1.0), (1.0, 1.0)])
    assert kept == [0]


def test_frontier_preserves_input_order():
    points = [(3.0, 0.5), (0.5, 3.0), (1.0, 1.0)]
    assert frontier_indices(points) == [0, 1, 2]
    assert frontier(points) == points


def test_frontier_of_mutually_incomparable_set_is_identity():
    points = [(float(i), float(10 - i)) for i in range(5)]
    assert frontier(points) == points


def test_frontier_with_key_maps_items():
    items = [{"v": (2.0, 2.0)}, {"v": (1.0, 1.0)}]
    assert frontier(items, key=lambda d: d["v"]) == [items[1]]


def test_frontier_result_is_mutually_non_dominated():
    kept = frontier(POINTS)
    for a, b in itertools.permutations(kept, 2):
        assert not dominates(a, b)


def test_empty_and_singleton():
    assert frontier([]) == []
    assert frontier([(1.0, 2.0)]) == [(1.0, 2.0)]


# ----------------------------------------------------------------------
# objectives vector
# ----------------------------------------------------------------------


def sum_kernel(n=6):
    K = KernelBuilder("sum")
    cnt = K.li(n)
    acc = K.li(0)
    K.label("loop")
    K.binary_into(acc, Opcode.ADD, acc, cnt)
    K.binary_into(cnt, Opcode.SUB, cnt, 1)
    K.cbr(Cond.NE, cnt, 0, "loop")
    K.store(K.li(0), acc)
    return K.build()


def test_objectives_vector_shape():
    weights = CostWeights(1.0, 0.5, 0.3)
    with ParallelEvaluator([sum_kernel()], weights=weights,
                           mode="serial") as ev:
        evaluation = ev.evaluate(description_for("risc16"))
    vec = objectives(evaluation, weights)
    assert vec == (
        evaluation.cost(weights),
        evaluation.cycle_ns,
        evaluation.power_mw,
        evaluation.die_size,
    )


def test_infeasible_evaluation_maps_to_all_infinite():
    class Infeasible:
        feasible = False

    vec = objectives(Infeasible())
    assert vec == (float("inf"),) * 4
    # every feasible point dominates it
    assert dominates((1.0, 1.0, 1.0, 1.0), vec)


# ----------------------------------------------------------------------
# frontier determinism across pool modes (satellite 4)
# ----------------------------------------------------------------------


#: frontier from the first pool mode measured, compared against by the
#: second parametrized run
_FRONTIERS = {}


@pytest.mark.parametrize("mode", ["serial", "process"])
def test_pareto_frontier_stable_across_pool_modes(mode):
    weights = CostWeights(1.0, 0.5, 0.3)
    explorer = Explorer([sum_kernel()], weights, parallel=mode)
    log = explorer.explore(description_for("spam2"), max_iterations=3,
                           strategy="pareto", seed=0)
    front = [
        (c.derived_by, objectives(c.evaluation, weights))
        for c in log.frontier()
    ]
    assert front, "frontier must not be empty"
    _FRONTIERS.setdefault("front", front)
    assert front == _FRONTIERS["front"], (
        "frontier order/content must be identical whatever pool mode"
        " measured the candidates"
    )
