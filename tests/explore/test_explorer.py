"""Tests for the Figure-1 exploration loop."""

import pytest

from repro.arch import description_for
from repro.codegen import Cond, KernelBuilder, Opcode
from repro.explore import (
    CostWeights,
    Explorer,
    evaluate,
    evaluation_table,
    exploration_report,
)


def sum_kernel(n=6):
    K = KernelBuilder("sum")
    cnt = K.li(n)
    acc = K.li(0)
    K.label("loop")
    K.binary_into(acc, Opcode.ADD, acc, cnt)
    K.binary_into(cnt, Opcode.SUB, cnt, 1)
    K.cbr(Cond.NE, cnt, 0, "loop")
    K.store(K.li(0), acc)
    return K.build()


def fp_kernel():
    K = KernelBuilder("fpk")
    a = K.load(K.li(0))
    b = K.load(K.li(1))
    K.store(K.li(2), K.fadd(a, b))
    return K.build()


@pytest.fixture(scope="module")
def risc_eval():
    return evaluate(description_for("risc16"), [sum_kernel()])


def test_evaluation_measures_everything(risc_eval):
    assert risc_eval.feasible
    assert risc_eval.cycles > 10
    assert risc_eval.cycle_ns > 5
    assert risc_eval.die_size > 1000
    assert risc_eval.power_mw > 0
    assert risc_eval.runtime_us == pytest.approx(
        risc_eval.cycles * risc_eval.cycle_ns / 1000.0
    )
    assert risc_eval.per_kernel_cycles["sum"] == risc_eval.cycles


def test_cost_monotone_in_weights(risc_eval):
    light = risc_eval.cost(CostWeights(1.0, 0.0, 0.0))
    heavy = risc_eval.cost(CostWeights(1.0, 1.0, 0.0))
    assert heavy > light


def test_infeasible_kernel_reports_reason():
    evaluation = evaluate(description_for("risc16"), [fp_kernel()])
    assert not evaluation.feasible
    assert "falu" in evaluation.reason or "fadd" in evaluation.reason
    assert evaluation.cost(CostWeights()) == float("inf")


def test_exploration_improves_spam_for_integer_code():
    explorer = Explorer([sum_kernel()])
    log = explorer.explore(description_for("spam"), max_iterations=3)
    assert log.improvement > 1.0
    assert len(log.accepted) >= 2
    first = log.accepted[0].evaluation
    best = log.best.evaluation
    assert best.die_size < first.die_size
    # correctness is preserved along the trajectory: cycles still measured
    assert best.cycles > 0


def test_exploration_stops_at_fixpoint():
    explorer = Explorer([sum_kernel()])
    log = explorer.explore(description_for("risc16"), max_iterations=6)
    assert log.iterations <= 6
    # all accepted candidates are strictly improving
    costs = [c.cost(log.weights) for c in log.accepted]
    assert all(b < a for a, b in zip(costs, costs[1:]))


def test_report_formats(risc_eval):
    explorer = Explorer([sum_kernel()])
    log = explorer.explore(description_for("risc16"), max_iterations=1)
    report = exploration_report(log)
    assert "iteration" in report
    assert "cost" in report
    table = evaluation_table([risc_eval], CostWeights())
    assert "RISC16" in table
    assert "cycles" in table


def test_candidates_keep_isdl_printability():
    from repro.isdl import load_string, print_description

    explorer = Explorer([sum_kernel()])
    log = explorer.explore(description_for("spam"), max_iterations=2)
    for candidate in log.accepted:
        text = print_description(candidate.desc)
        load_string(text)  # every candidate is a complete ISDL document
