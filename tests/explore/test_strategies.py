"""Tests for the Strategy protocol, its four implementations, and the
redesigned exploration API (repro.explore.strategies)."""

import json
import warnings
from pathlib import Path

import pytest

from repro.arch import description_for
from repro.codegen import Cond, KernelBuilder, Opcode
from repro.errors import ExplorationError
from repro.explore import (
    CostWeights,
    Explorer,
    Strategy,
    UnknownStrategyError,
    strategies,
)
from repro.explore.pareto import dominates, objectives
from repro.isdl import fingerprint

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_trajectories.json").read_text()
)

WEIGHTS = CostWeights(**GOLDEN["weights"])


def sum_kernel(n=6):
    K = KernelBuilder("sum")
    cnt = K.li(n)
    acc = K.li(0)
    K.label("loop")
    K.binary_into(acc, Opcode.ADD, acc, cnt)
    K.binary_into(cnt, Opcode.SUB, cnt, 1)
    K.cbr(Cond.NE, cnt, 0, "loop")
    K.store(K.li(0), acc)
    return K.build()


def explorer(**kwargs):
    kwargs.setdefault("parallel", "serial")
    return Explorer([sum_kernel()], WEIGHTS, **kwargs)


# ----------------------------------------------------------------------
# the default greedy strategy reproduces the seed engine bit-for-bit
# ----------------------------------------------------------------------


@pytest.mark.parametrize("arch", sorted(GOLDEN["architectures"]))
def test_greedy_default_reproduces_seed_trajectories(arch):
    golden = GOLDEN["architectures"][arch]
    if "error" in golden:
        with pytest.raises(ExplorationError, match="infeasible"):
            explorer().explore(description_for(arch),
                               max_iterations=GOLDEN["max_iterations"])
        return
    log = explorer().explore(description_for(arch),
                             max_iterations=GOLDEN["max_iterations"])
    assert log.strategy == "greedy"
    assert [c.derived_by for c in log.accepted] == golden["derived_by"]
    assert fingerprint(log.best.desc) == golden["best_fingerprint"]
    assert log.best.evaluation.cycles == golden["best_cycles"]
    assert log.best.cost(WEIGHTS) == pytest.approx(golden["best_cost"])
    assert log.iterations == golden["iterations"]
    assert len(log.rejected) == golden["rejected"]
    assert len(log.errors) == golden["errors"]


def test_greedy_name_and_instance_spellings_agree():
    desc = description_for("spam2")
    by_name = explorer().explore(desc, max_iterations=3,
                                 strategy="greedy")
    by_instance = explorer().explore(desc, max_iterations=3,
                                     strategy=strategies.Greedy())
    assert ([c.derived_by for c in by_name.accepted]
            == [c.derived_by for c in by_instance.accepted])


def test_zero_iterations_only_measures_the_initial():
    log = explorer().explore(description_for("risc16"), max_iterations=0)
    assert log.iterations == 0
    assert [c.derived_by for c in log.accepted] == ["initial"]


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------


def test_registry_lists_all_four_strategies():
    assert strategies.available() == [
        "greedy", "multistart", "pareto", "population",
    ]


def test_registry_resolves_names_with_params():
    strategy = strategies.get("multistart", restarts=2)
    assert isinstance(strategy, strategies.MultiStart)
    assert strategy.restarts == 2


def test_registry_passes_instances_through():
    instance = strategies.ParetoFrontier(frontier_cap=6)
    assert strategies.get(instance) is instance


def test_unknown_name_raises_naming_known_strategies():
    with pytest.raises(UnknownStrategyError, match="greedy"):
        strategies.get("annealing")


def test_bad_params_raise_naming_known_strategies():
    with pytest.raises(UnknownStrategyError, match="pareto"):
        strategies.get("pareto", bogus=1)
    with pytest.raises(UnknownStrategyError):
        strategies.get("population", size=0)


def test_params_with_instance_rejected():
    with pytest.raises(UnknownStrategyError):
        strategies.get(strategies.Greedy(), restarts=2)


def test_explore_rejects_unknown_strategy():
    with pytest.raises(UnknownStrategyError):
        explorer().explore(description_for("risc16"), max_iterations=1,
                           strategy="annealing")


# ----------------------------------------------------------------------
# deprecation shims (satellite 1)
# ----------------------------------------------------------------------


def test_positional_max_iterations_warns_but_works():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        log = explorer().explore(description_for("risc16"), 2)
    assert [w for w in caught
            if issubclass(w.category, DeprecationWarning)]
    assert log.iterations <= 2
    assert log.accepted


def test_keyword_spelling_stays_silent():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        explorer().explore(description_for("risc16"), max_iterations=1)
    assert not [w for w in caught
                if issubclass(w.category, DeprecationWarning)]


def test_evaluate_positional_derived_by_warns():
    ex = explorer()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        candidate = ex.evaluate(description_for("risc16"), "seeded")
    assert [w for w in caught
            if issubclass(w.category, DeprecationWarning)]
    assert candidate.derived_by == "seeded"
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        ex.evaluate(description_for("risc16"), derived_by="seeded")
    assert not [w for w in caught
                if issubclass(w.category, DeprecationWarning)]


def test_too_many_positionals_raise():
    with pytest.raises(TypeError):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            explorer().explore(description_for("risc16"), 2, "greedy")


# ----------------------------------------------------------------------
# multistart
# ----------------------------------------------------------------------


def test_multistart_runs_one_trajectory_per_restart():
    log = explorer().explore(description_for("spam2"), max_iterations=3,
                             strategy=strategies.MultiStart(restarts=3),
                             seed=7)
    assert log.strategy == "multistart"
    labels = [t.label for t in log.trajectories]
    assert labels[0] == "restart-0"
    assert 1 <= len(labels) <= 3
    # restart-0 is plain greedy from the same initial
    greedy = explorer().explore(description_for("spam2"),
                                max_iterations=3)
    restart0 = log.trajectory("restart-0")
    assert ([c.derived_by for c in restart0.accepted]
            == [c.derived_by for c in greedy.accepted])
    # the winner is never worse than greedy alone
    assert log.best.cost(WEIGHTS) <= greedy.best.cost(WEIGHTS)


def test_multistart_is_deterministic_per_seed():
    def run():
        return explorer().explore(
            description_for("spam2"), max_iterations=2,
            strategy="multistart", seed=11,
        )

    a, b = run(), run()
    assert ([c.derived_by for c in a.accepted]
            == [c.derived_by for c in b.accepted])
    assert fingerprint(a.best.desc) == fingerprint(b.best.desc)
    assert ([t.label for t in a.trajectories]
            == [t.label for t in b.trajectories])


def test_multistart_rejects_zero_restarts():
    with pytest.raises(UnknownStrategyError):
        strategies.get("multistart", restarts=0)


# ----------------------------------------------------------------------
# population
# ----------------------------------------------------------------------


def test_population_never_loses_to_greedy():
    desc = description_for("spam2")
    greedy = explorer().explore(desc, max_iterations=4)
    population = explorer().explore(
        desc, max_iterations=4, strategy=strategies.Population(size=3),
    )
    assert population.strategy == "population"
    assert (population.best.cost(WEIGHTS)
            <= greedy.best.cost(WEIGHTS))
    # monotone accepted chain
    costs = [c.cost(WEIGHTS) for c in population.accepted]
    assert costs == sorted(costs, reverse=True)


def test_population_survivor_bound_is_respected():
    strategy = strategies.Population(size=2)
    explorer().explore(description_for("spam2"), max_iterations=3,
                       strategy=strategy)
    assert len(strategy.survivors) <= 2


# ----------------------------------------------------------------------
# pareto frontier (acceptance criteria)
# ----------------------------------------------------------------------


def test_pareto_frontier_contains_point_no_worse_than_greedy():
    desc = description_for("spam2")
    budget = 64
    greedy = explorer().explore(desc, max_iterations=4,
                                max_evaluations=budget)
    pareto = explorer().explore(desc, max_iterations=4,
                                strategy="pareto",
                                max_evaluations=budget)
    front = pareto.frontier()
    assert front
    best_front_cost = min(c.cost(WEIGHTS) for c in front)
    assert best_front_cost <= greedy.best.cost(WEIGHTS)


def test_pareto_frontier_is_mutually_non_dominated():
    log = explorer().explore(description_for("spam2"), max_iterations=3,
                             strategy="pareto")
    front = log.frontier()
    vectors = [objectives(c.evaluation, WEIGHTS) for c in front]
    for i, a in enumerate(vectors):
        for j, b in enumerate(vectors):
            if i != j:
                assert not dominates(a, b)
    # deterministic: a re-run yields the identical frontier
    again = explorer().explore(description_for("spam2"),
                               max_iterations=3, strategy="pareto")
    assert ([fingerprint(c.desc) for c in again.frontier()]
            == [fingerprint(c.desc) for c in front])


def test_pareto_winner_is_the_cost_best_chain():
    log = explorer().explore(description_for("spam2"), max_iterations=3,
                             strategy="pareto")
    front_costs = [c.cost(WEIGHTS) for c in log.frontier()]
    assert log.best.cost(WEIGHTS) == min(front_costs)


# ----------------------------------------------------------------------
# log accounting shared by all strategies
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", ["greedy", "multistart", "population",
                                  "pareto"])
def test_every_strategy_counts_evaluations_and_trajectories(name):
    log = explorer().explore(description_for("risc16"), max_iterations=2,
                             strategy=name, seed=3)
    assert log.strategy == name
    assert log.evaluations > 0
    assert log.trajectories
    assert log.evaluated[0].derived_by == "initial"
    per_trajectory = sum(t.cache_hits + t.cache_misses
                         for t in log.trajectories)
    assert per_trajectory == log.evaluations


def test_max_evaluations_bounds_the_run():
    log = explorer().explore(description_for("spam2"), max_iterations=8,
                             strategy="population", max_evaluations=10)
    # the budget stops the run at the end of the round that crossed it
    assert log.iterations < 8


def test_custom_strategy_instances_plug_in():
    class FirstProposalOnly(Strategy):
        """Adopt the first feasible proposal once, then stop."""

        name = "first-only"

        def begin(self, context):
            self.context = context
            self.trajectory = context.log.trajectory("first-only")
            self.trajectory.accepted.append(context.initial)
            self._done = False

        def propose(self):
            from repro.explore import EvalRequest

            pairs = self.context.propose_from(self.context.initial)[:1]
            return [EvalRequest(desc, how, tag="first-only")
                    for desc, how in pairs]

        def observe(self, survivors):
            if survivors:
                self.trajectory.accepted.append(survivors[0])
            self._done = True

        @property
        def finished(self):
            return self._done

        def winner(self):
            return self.trajectory

    log = explorer().explore(description_for("spam2"), max_iterations=4,
                             strategy=FirstProposalOnly())
    assert log.strategy == "first-only"
    assert log.iterations == 1
    assert len(log.accepted) <= 2
