"""Report formatting: evaluation tables and exploration summaries."""

import pytest

from repro import obs
from repro.cache import ArtifactCache
from repro.explore.explorer import Candidate, ExplorationLog
from repro.explore.metrics import CostWeights, Evaluation
from repro.explore.report import evaluation_table, exploration_report
from repro.obs.metrics import MetricsRegistry


def _feasible(name, cycles=100):
    return Evaluation(
        name=name, feasible=True, cycles=cycles, cycle_ns=10.0,
        die_size=50_000.0, power_mw=120.0,
    )


def _infeasible(name, reason):
    return Evaluation(name=name, feasible=False, reason=reason)


WEIGHTS = CostWeights(1.0, 0.5, 0.3)


# ----------------------------------------------------------------------
# evaluation_table
# ----------------------------------------------------------------------


def test_table_has_header_and_one_row_per_evaluation():
    table = evaluation_table(
        [_feasible("alpha"), _feasible("beta", 200)], WEIGHTS
    )
    lines = table.splitlines()
    assert "architecture" in lines[0] and "cost" in lines[0]
    assert lines[1].startswith("---")
    assert len(lines) == 4
    assert lines[2].startswith("alpha")
    assert lines[3].startswith("beta")


def test_infeasible_rows_show_reason_instead_of_numbers():
    table = evaluation_table(
        [
            _feasible("ok"),
            _infeasible("broken", "kernel 'sum': does not fit"),
        ],
        WEIGHTS,
    )
    row = next(l for l in table.splitlines() if l.startswith("broken"))
    assert "infeasible: kernel 'sum': does not fit" in row
    # no cost / die-size figures on an infeasible row
    assert "inf" not in row.replace("infeasible", "")
    assert "50,000" not in row


def test_infeasible_only_table_still_renders():
    table = evaluation_table(
        [_infeasible("a", "x"), _infeasible("b", "y")], WEIGHTS
    )
    assert "a" in table and "infeasible: x" in table
    assert "b" in table and "infeasible: y" in table


# ----------------------------------------------------------------------
# exploration_report
# ----------------------------------------------------------------------


class _Desc:
    def __init__(self, name):
        self.name = name


def _log():
    log = ExplorationLog(WEIGHTS)
    log.accepted.append(
        Candidate(_Desc("initial"), _feasible("initial", 200), "initial")
    )
    log.accepted.append(
        Candidate(_Desc("leaner"), _feasible("leaner", 100), "drop field")
    )
    log.rejected.append(
        Candidate(_Desc("bad"), _infeasible("bad", "no fit"), "halve IM")
    )
    log.iterations = 1
    return log


def test_report_lists_trajectory_and_improvement():
    report = exploration_report(_log())
    assert "1 iteration(s)" in report
    assert "1 improvement step(s)" in report
    assert "1 infeasible candidate(s)" in report
    assert "step 0: [initial]" in report
    assert "step 1: [drop field]" in report
    assert "total improvement:" in report


def test_report_without_cache_or_profiles_has_no_extra_sections():
    report = exploration_report(_log())
    assert "cache:" not in report
    assert "stage profile" not in report


def test_report_appends_cache_stats():
    cache = ArtifactCache()
    cache.get_or_build("sigtable", "k", lambda: 1)  # miss
    cache.get_or_build("sigtable", "k", lambda: 1)  # hit
    report = exploration_report(_log(), cache=cache)
    assert "cache: 1 hits / 1 misses" in report
    assert "sigtable" in report


def test_report_appends_merged_stage_profile():
    log = _log()
    registry = MetricsRegistry()
    registry.observe("stage.sim.run", 0.02)
    registry.add("stage.sim.run.cpu_s", 0.02)
    log.profiles["initial"] = registry.snapshot()
    registry2 = MetricsRegistry()
    registry2.observe("stage.sim.run", 0.03)
    log.profiles["leaner"] = registry2.snapshot()
    report = exploration_report(log)
    assert "stage profile (2 candidate measurement(s)):" in report
    assert "sim.run" in report
    merged = log.merged_profile()
    assert merged.histograms["stage.sim.run"].count == 2


def test_obs_disabled_log_profile_is_none():
    assert not obs.enabled()
    assert _log().merged_profile() is None


# ----------------------------------------------------------------------
# Evaluation-service section
# ----------------------------------------------------------------------


def _service_snapshot():
    registry = MetricsRegistry()
    registry.add("serve.jobs_accepted", 4)
    registry.add("serve.jobs_coalesced", 28)
    registry.add("serve.jobs_rejected", 1)
    registry.set("serve.queue_depth", 2)
    registry.add("unrelated.counter", 9)
    return registry.snapshot()


def test_service_metrics_table_lists_serve_metrics_only():
    from repro.explore.report import service_metrics_table

    table = service_metrics_table(_service_snapshot())
    assert table.startswith("evaluation service:")
    assert "serve.jobs_accepted" in table and "4" in table
    assert "serve.jobs_coalesced" in table and "28" in table
    assert "serve.queue_depth" in table
    assert "unrelated.counter" not in table


def test_service_metrics_table_empty_without_serve_metrics():
    from repro.explore.report import service_metrics_table

    registry = MetricsRegistry()
    registry.add("cache.hits", 3)
    assert service_metrics_table(registry.snapshot()) == ""


def test_report_appends_service_section_when_given_metrics():
    report = exploration_report(_log(), metrics=_service_snapshot())
    assert "evaluation service:" in report
    assert "serve.jobs_rejected" in report


def test_report_omits_service_section_without_serve_metrics():
    registry = MetricsRegistry()
    registry.add("cache.hits", 1)
    report = exploration_report(_log(), metrics=registry.snapshot())
    assert "evaluation service:" not in report
