"""Report formatting: evaluation tables and exploration summaries."""

import pytest

from repro import obs
from repro.cache import ArtifactCache
from repro.explore.explorer import Candidate, ExplorationLog
from repro.explore.metrics import CostWeights, Evaluation
from repro.explore.report import evaluation_table, exploration_report
from repro.obs.metrics import MetricsRegistry


def _feasible(name, cycles=100):
    return Evaluation(
        name=name, feasible=True, cycles=cycles, cycle_ns=10.0,
        die_size=50_000.0, power_mw=120.0,
    )


def _infeasible(name, reason):
    return Evaluation(name=name, feasible=False, reason=reason)


WEIGHTS = CostWeights(1.0, 0.5, 0.3)


# ----------------------------------------------------------------------
# evaluation_table
# ----------------------------------------------------------------------


def test_table_has_header_and_one_row_per_evaluation():
    table = evaluation_table(
        [_feasible("alpha"), _feasible("beta", 200)], WEIGHTS
    )
    lines = table.splitlines()
    assert "architecture" in lines[0] and "cost" in lines[0]
    assert lines[1].startswith("---")
    assert len(lines) == 4
    assert lines[2].startswith("alpha")
    assert lines[3].startswith("beta")


def test_infeasible_rows_show_reason_instead_of_numbers():
    table = evaluation_table(
        [
            _feasible("ok"),
            _infeasible("broken", "kernel 'sum': does not fit"),
        ],
        WEIGHTS,
    )
    row = next(l for l in table.splitlines() if l.startswith("broken"))
    assert "infeasible: kernel 'sum': does not fit" in row
    # no cost / die-size figures on an infeasible row
    assert "inf" not in row.replace("infeasible", "")
    assert "50,000" not in row


def test_infeasible_only_table_still_renders():
    table = evaluation_table(
        [_infeasible("a", "x"), _infeasible("b", "y")], WEIGHTS
    )
    assert "a" in table and "infeasible: x" in table
    assert "b" in table and "infeasible: y" in table


# ----------------------------------------------------------------------
# exploration_report
# ----------------------------------------------------------------------


class _Desc:
    def __init__(self, name):
        self.name = name


def _log():
    log = ExplorationLog(WEIGHTS)
    log.accepted.append(
        Candidate(_Desc("initial"), _feasible("initial", 200), "initial")
    )
    log.accepted.append(
        Candidate(_Desc("leaner"), _feasible("leaner", 100), "drop field")
    )
    log.rejected.append(
        Candidate(_Desc("bad"), _infeasible("bad", "no fit"), "halve IM")
    )
    log.iterations = 1
    return log


def test_report_lists_trajectory_and_improvement():
    report = exploration_report(_log())
    assert "1 iteration(s)" in report
    assert "1 improvement step(s)" in report
    assert "1 infeasible candidate(s)" in report
    assert "step 0: [initial]" in report
    assert "step 1: [drop field]" in report
    assert "total improvement:" in report


def test_report_without_cache_or_profiles_has_no_extra_sections():
    report = exploration_report(_log())
    assert "cache:" not in report
    assert "stage profile" not in report


def test_report_appends_cache_stats():
    cache = ArtifactCache()
    cache.get_or_build("sigtable", "k", lambda: 1)  # miss
    cache.get_or_build("sigtable", "k", lambda: 1)  # hit
    report = exploration_report(_log(), cache=cache)
    assert "cache: 1 hits / 1 misses" in report
    assert "sigtable" in report


def test_report_appends_merged_stage_profile():
    log = _log()
    registry = MetricsRegistry()
    registry.observe("stage.sim.run", 0.02)
    registry.add("stage.sim.run.cpu_s", 0.02)
    log.profiles["initial"] = registry.snapshot()
    registry2 = MetricsRegistry()
    registry2.observe("stage.sim.run", 0.03)
    log.profiles["leaner"] = registry2.snapshot()
    report = exploration_report(log)
    assert "stage profile (2 candidate measurement(s)):" in report
    assert "sim.run" in report
    merged = log.merged_profile()
    assert merged.histograms["stage.sim.run"].count == 2


def test_obs_disabled_log_profile_is_none():
    assert not obs.enabled()
    assert _log().merged_profile() is None


# ----------------------------------------------------------------------
# multi-trajectory logs (strategy runs)
# ----------------------------------------------------------------------


def _snapshot(seconds):
    registry = MetricsRegistry()
    registry.observe("stage.sim.run", seconds)
    return registry.snapshot()


def _multi_log():
    log = _log()
    first = log.trajectory("restart-0")
    first.accepted.append(log.accepted[0])
    first.profiles["shared"] = _snapshot(0.02)
    first.cache_hits, first.cache_misses = 1, 3
    second = log.trajectory("restart-1")
    second.accepted.append(
        Candidate(_Desc("other"), _feasible("other", 150), "perturbed")
    )
    second.profiles["shared"] = _snapshot(0.03)  # same label, own run
    second.profiles["extra"] = _snapshot(0.05)
    second.cache_hits, second.cache_misses = 0, 2
    return log


def test_merged_profile_counts_each_trajectory_measurement():
    log = _multi_log()
    # a label measured in two trajectories contributes once per
    # trajectory, not once per run
    merged = log.merged_profile()
    assert merged.histograms["stage.sim.run"].count == 3
    assert log.profile_count == 3


def test_merged_profile_selects_one_trajectory():
    log = _multi_log()
    assert log.merged_profile("restart-0") \
        .histograms["stage.sim.run"].count == 1
    assert log.merged_profile("restart-1") \
        .histograms["stage.sim.run"].count == 2
    with pytest.raises(KeyError):
        log.merged_profile("no-such-trajectory")


def test_merged_profile_keeps_unclaimed_global_measurements():
    log = _multi_log()
    log.profiles["initial"] = _snapshot(0.01)  # outside any trajectory
    assert log.merged_profile().histograms["stage.sim.run"].count == 4
    assert log.profile_count == 4


def test_trajectory_accessors():
    log = _multi_log()
    second = log.trajectory("restart-1")
    assert second.best.derived_by == "perturbed"
    assert second.initial is second.best
    assert log.trajectory("restart-0") is log.trajectories[0]


def test_report_renders_trajectory_section_for_multi_trajectory_logs():
    report = exploration_report(_multi_log())
    assert "trajectories (2):" in report
    assert "restart-0" in report and "restart-1" in report
    assert "1 hit(s) / 3 miss(es)" in report
    assert "0 hit(s) / 2 miss(es)" in report


def test_report_omits_trajectory_section_for_single_trajectory():
    report = exploration_report(_log())
    assert "trajectories (" not in report


def test_report_renders_frontier_table():
    log = _log()
    # two feasible measured points trading cycles against die size
    cheap_small = Evaluation(
        name="small", feasible=True, cycles=200, cycle_ns=10.0,
        die_size=10_000.0, power_mw=120.0,
    )
    fast_big = Evaluation(
        name="fast", feasible=True, cycles=50, cycle_ns=10.0,
        die_size=90_000.0, power_mw=120.0,
    )
    log.evaluated.append(Candidate(_Desc("small"), cheap_small, "a"))
    log.evaluated.append(Candidate(_Desc("fast"), fast_big, "b"))
    report = exploration_report(log)
    assert "pareto frontier (2 point(s)" in report
    assert "small" in report and "fast" in report
    assert len(log.frontier()) == 2


# ----------------------------------------------------------------------
# Evaluation-service section
# ----------------------------------------------------------------------


def _service_snapshot():
    registry = MetricsRegistry()
    registry.add("serve.jobs_accepted", 4)
    registry.add("serve.jobs_coalesced", 28)
    registry.add("serve.jobs_rejected", 1)
    registry.set("serve.queue_depth", 2)
    registry.add("unrelated.counter", 9)
    return registry.snapshot()


def test_service_metrics_table_lists_serve_metrics_only():
    from repro.explore.report import service_metrics_table

    table = service_metrics_table(_service_snapshot())
    assert table.startswith("evaluation service:")
    assert "serve.jobs_accepted" in table and "4" in table
    assert "serve.jobs_coalesced" in table and "28" in table
    assert "serve.queue_depth" in table
    assert "unrelated.counter" not in table


def test_service_metrics_table_empty_without_serve_metrics():
    from repro.explore.report import service_metrics_table

    registry = MetricsRegistry()
    registry.add("cache.hits", 3)
    assert service_metrics_table(registry.snapshot()) == ""


def test_report_appends_service_section_when_given_metrics():
    report = exploration_report(_log(), metrics=_service_snapshot())
    assert "evaluation service:" in report
    assert "serve.jobs_rejected" in report


def test_report_omits_service_section_without_serve_metrics():
    registry = MetricsRegistry()
    registry.add("cache.hits", 1)
    report = exploration_report(_log(), metrics=registry.snapshot())
    assert "evaluation service:" not in report
