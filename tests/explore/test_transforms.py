"""Tests for architecture transforms (exploration moves)."""

import pytest

from repro.errors import ExplorationError
from repro.gensim import generate_simulator
from repro.isdl import ast, check, print_description, load_string
from repro.explore import transforms


def test_drop_operation(risc16_desc):
    candidate = transforms.drop_operation(risc16_desc, "EX", "jal")
    check(candidate)
    with pytest.raises(KeyError):
        candidate.operation("EX", "jal")
    assert candidate.name != risc16_desc.name
    # the original is untouched
    assert risc16_desc.operation("EX", "jal") is not None


def test_drop_unknown_operation_raises(risc16_desc):
    with pytest.raises(ExplorationError):
        transforms.drop_operation(risc16_desc, "EX", "bogus")


def test_drop_operation_removes_constraints(spam_desc):
    candidate = transforms.drop_operation(spam_desc, "LSU", "st")
    check(candidate)
    for constraint in candidate.constraints:
        for ref in ast.oprefs_in(constraint.expr):
            assert (ref.field, ref.op) != ("LSU", "st")


def test_drop_field(spam_desc):
    candidate = transforms.drop_field(spam_desc, "MV3")
    check(candidate)
    assert [f.name for f in candidate.fields] == [
        "FP1", "FP2", "INT", "LSU", "MV1", "MV2"
    ]
    # constraints naming MV3 are gone
    assert all(
        all(ref.field != "MV3" for ref in ast.oprefs_in(c.expr))
        for c in candidate.constraints
    )


def test_dropping_last_field_raises(mini_desc):
    with pytest.raises(ExplorationError):
        transforms.drop_field(mini_desc, "EX")


def test_set_operation_timing(spam_desc):
    candidate = transforms.set_operation_timing(
        spam_desc, "FP1", "fadd",
        costs=ast.Costs(1, 0, 1), timing=ast.Timing(1, 1),
    )
    op = candidate.operation("FP1", "fadd")
    assert op.costs.stall == 0
    assert op.timing.latency == 1
    assert spam_desc.operation("FP1", "fadd").timing.latency == 2


def test_add_constraint(spam_desc):
    candidate = transforms.add_constraint(
        spam_desc, "FP1", "fadd", "FP2", "fmul"
    )
    assert not candidate.instruction_valid(
        {"FP1": "fadd", "FP2": "fmul"}
    )
    assert spam_desc.instruction_valid({"FP1": "fadd", "FP2": "fmul"})


def test_narrow_register_file(risc16_desc):
    candidate = transforms.narrow_register_file(risc16_desc, 4)
    check(candidate)
    assert candidate.storages["RF"].depth == 4
    assert candidate.tokens["REG"].hi == 3
    # candidates remain fully usable by the generators
    sim = generate_simulator(candidate)
    from repro.asm import assemble

    program = assemble(candidate, "ldi r3, #9\nhalt\n")
    sim.load_words(program.words)
    sim.run_to_completion()
    assert sim.read("RF", 3) == 9


def test_narrow_register_file_rejects_r4(risc16_desc):
    from repro.errors import AssemblerError
    from repro.asm import assemble

    candidate = transforms.narrow_register_file(risc16_desc, 4)
    with pytest.raises(AssemblerError):
        assemble(candidate, "ldi r5, #1\n")


def test_narrow_register_file_bad_depth(risc16_desc):
    with pytest.raises(ExplorationError):
        transforms.narrow_register_file(risc16_desc, 16)
    with pytest.raises(ExplorationError):
        transforms.narrow_register_file(risc16_desc, 1)


def test_narrow_register_file_must_shrink_token(risc16_desc):
    # depth 5 keeps a 3-bit register number: no narrowing possible
    with pytest.raises(ExplorationError):
        transforms.narrow_register_file(risc16_desc, 5)


def test_resize_memory(spam_desc):
    candidate = transforms.resize_memory(spam_desc, "IM", 256)
    check(candidate)
    assert candidate.storages["IM"].depth == 256
    assert spam_desc.storages["IM"].depth == 4096


def test_resize_memory_rejects_scalars(spam_desc):
    with pytest.raises(ExplorationError):
        transforms.resize_memory(spam_desc, "ZF", 4)


def test_too_small_instruction_memory_is_infeasible(spam_desc):
    """A shrink below the program size surfaces as an infeasible
    candidate during evaluation, not as a crash."""
    from repro.codegen import KernelBuilder
    from repro.explore import evaluate

    K = KernelBuilder()
    for i in range(12):
        K.store(K.li(i), K.li(i))
    kernel = K.build()
    tiny = transforms.resize_memory(spam_desc, "IM", 8)
    evaluation = evaluate(tiny, [kernel])
    assert not evaluation.feasible
    assert "not fit" in evaluation.reason or "fit" in evaluation.reason


def test_transformed_descriptions_roundtrip_as_isdl(spam_desc):
    candidate = transforms.drop_field(spam_desc, "MV2")
    text = print_description(candidate)
    reparsed = load_string(text)
    assert [f.name for f in reparsed.fields] == [
        f.name for f in candidate.fields
    ]
