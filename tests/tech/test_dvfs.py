"""The DVFS operating-point solver and the one-synthesis sweep."""

import pytest

from repro import obs
from repro.hgen import estimate_power, synthesize
from repro.tech import dvfs_sweep, solve_operating_point, tech_model


HP22 = tech_model(22, "HP")

# a representative nominal point: 100 MHz, 4 mW dynamic + 1 mW static
NOMINAL = dict(nominal_frequency_mhz=100.0, nominal_dynamic_mw=4.0,
               nominal_static_mw=1.0)


# ----------------------------------------------------------------------
# solver
# ----------------------------------------------------------------------


def test_no_budget_returns_the_nominal_point():
    point = solve_operating_point(HP22, **NOMINAL)
    assert not point.capped and not point.dark_silicon
    assert point.vdd == pytest.approx(HP22.vdd_nominal_v)
    assert point.frequency_mhz == pytest.approx(100.0)
    assert point.total_mw == pytest.approx(5.0)
    assert point.budget_mw is None


def test_generous_budget_leaves_the_point_uncapped():
    point = solve_operating_point(HP22, budget_mw=50.0, **NOMINAL)
    assert not point.capped
    assert point.frequency_mhz == pytest.approx(100.0)
    assert point.budget_mw == 50.0


def test_tight_budget_caps_total_power_exactly():
    point = solve_operating_point(HP22, budget_mw=2.0, **NOMINAL)
    assert point.capped and not point.dark_silicon
    assert point.total_mw == pytest.approx(2.0, rel=1e-9)
    assert HP22.vdd_min_v < point.vdd < HP22.vdd_nominal_v
    assert point.frequency_mhz < 100.0


def test_impossible_budget_returns_the_dark_silicon_floor():
    point = solve_operating_point(HP22, budget_mw=1e-6, **NOMINAL)
    assert point.capped and point.dark_silicon
    assert point.vdd == pytest.approx(HP22.vdd_min_v)
    assert point.total_mw > 1e-6  # the floor does NOT meet the budget


def test_frequency_is_monotone_in_the_budget():
    budgets = [0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 10.0]
    points = [solve_operating_point(HP22, budget_mw=b, **NOMINAL)
              for b in budgets]
    frequencies = [p.frequency_mhz for p in points]
    assert frequencies == sorted(frequencies)
    assert not points[-1].capped  # nominal total is 5 mW


@pytest.mark.parametrize("kwargs", [
    dict(nominal_frequency_mhz=0.0, nominal_dynamic_mw=1.0,
         nominal_static_mw=1.0),
    dict(nominal_frequency_mhz=100.0, nominal_dynamic_mw=-1.0,
         nominal_static_mw=1.0),
    dict(nominal_frequency_mhz=100.0, nominal_dynamic_mw=1.0,
         nominal_static_mw=-1.0),
    dict(nominal_frequency_mhz=100.0, nominal_dynamic_mw=1.0,
         nominal_static_mw=1.0, budget_mw=0.0),
])
def test_solver_rejects_bad_inputs(kwargs):
    with pytest.raises(ValueError):
        solve_operating_point(HP22, **kwargs)


# ----------------------------------------------------------------------
# estimate_power with a budget (satellite 2)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def spam2_model(spam2_desc):
    return synthesize(spam2_desc)


def test_capped_power_report_ticks_the_obs_counter(spam2_desc, spam2_model):
    scaled = spam2_model.with_tech(HP22)
    obs.enable()
    try:
        with obs.capture() as cap:
            report = estimate_power(
                spam2_desc, spam2_model.netlist, scaled.clock_mhz,
                area=spam2_model.area, tech=HP22, budget_mw=2.0,
            )
        snapshot = cap.snapshot
    finally:
        obs.disable(reset=True)
    assert report.capped
    assert report.budget_mw == 2.0
    assert report.total_mw == pytest.approx(2.0, rel=1e-9)
    assert report.vdd < HP22.vdd_nominal_v
    assert snapshot.counters.get("power.capped") == 1.0


def test_uncapped_report_carries_the_nominal_voltage(spam2_desc,
                                                     spam2_model):
    scaled = spam2_model.with_tech(HP22)
    report = estimate_power(
        spam2_desc, spam2_model.netlist, scaled.clock_mhz,
        area=spam2_model.area, tech=HP22,
    )
    assert not report.capped
    assert report.vdd == pytest.approx(HP22.vdd_nominal_v)
    assert report.budget_mw is None


# ----------------------------------------------------------------------
# dvfs_sweep: N budgets = 1 synthesis + 1 estimate + N solves
# ----------------------------------------------------------------------


def test_sweep_shape_and_capping(spam2_model):
    points = dvfs_sweep(spam2_model, HP22,
                        [None, 8.0, 4.0, 0.5, 0.001])
    assert len(points) == 5
    uncapped, generous, four, half, dark = points
    assert not uncapped.capped and uncapped.budget_mw is None
    assert not generous.capped  # nominal total fits in 8 mW
    assert four.capped and four.total_mw == pytest.approx(4.0, rel=1e-9)
    assert half.capped and half.total_mw == pytest.approx(0.5, rel=1e-9)
    assert dark.dark_silicon
    assert dark.vdd == pytest.approx(HP22.vdd_min_v)


def test_sweep_does_not_resynthesize(spam2_model):
    obs.enable()
    try:
        with obs.capture() as cap:
            points = dvfs_sweep(spam2_model, HP22, [None, 4.0, 2.0, 1.0])
        snapshot = cap.snapshot
    finally:
        obs.disable(reset=True)
    assert len(points) == 4
    assert snapshot.counters.get("hgen.syntheses") is None
    assert snapshot.counters.get("tech.sweep_points") == 4.0
