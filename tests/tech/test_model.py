"""Scaling-table invariants and the technology-point registry."""

import pytest

from repro.hgen import techlib
from repro.tech import (
    BASELINE,
    KNOWN_FLAVORS,
    KNOWN_NODES,
    TechSpec,
    UnknownTechError,
    parse_tech,
    tech_model,
)


# ----------------------------------------------------------------------
# scaling-table invariants (per flavor, nodes ordered large -> small)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("flavor", KNOWN_FLAVORS)
def test_area_scale_non_increasing_with_node(flavor):
    models = [tech_model(node, flavor) for node in KNOWN_NODES]
    for bigger, smaller in zip(models, models[1:]):
        assert smaller.area_scale <= bigger.area_scale


@pytest.mark.parametrize("flavor", KNOWN_FLAVORS)
def test_dynamic_energy_non_increasing_with_node(flavor):
    models = [tech_model(node, flavor) for node in KNOWN_NODES]
    for bigger, smaller in zip(models, models[1:]):
        assert (smaller.dynamic_energy_per_cell_pj
                <= bigger.dynamic_energy_per_cell_pj)


@pytest.mark.parametrize("flavor", KNOWN_FLAVORS)
def test_delay_scale_non_increasing_with_node(flavor):
    # frequency non-decreasing as the node shrinks = delay non-increasing
    models = [tech_model(node, flavor) for node in KNOWN_NODES]
    for bigger, smaller in zip(models, models[1:]):
        assert smaller.delay_scale <= bigger.delay_scale


@pytest.mark.parametrize("node", KNOWN_NODES)
def test_hp_leaks_more_and_runs_faster_than_lp(node):
    hp = tech_model(node, "HP")
    lp = tech_model(node, "LP")
    assert hp.static_power_per_cell_uw > lp.static_power_per_cell_uw
    assert hp.delay_scale < lp.delay_scale


@pytest.mark.parametrize("flavor", KNOWN_FLAVORS)
@pytest.mark.parametrize("node", KNOWN_NODES)
def test_every_point_improves_on_the_baseline(node, flavor):
    model = tech_model(node, flavor)
    assert model.area_scale < BASELINE.area_scale
    assert model.delay_scale < BASELINE.delay_scale
    assert (model.dynamic_energy_per_cell_pj
            < BASELINE.dynamic_energy_per_cell_pj)
    assert model.vdd_nominal_v < BASELINE.vdd_nominal_v


# ----------------------------------------------------------------------
# techlib constants are views of the baseline model (satellite 1)
# ----------------------------------------------------------------------


def test_techlib_power_constants_come_from_the_baseline_model():
    assert (techlib.DYNAMIC_ENERGY_PER_CELL_PJ
            == BASELINE.dynamic_energy_per_cell_pj == 0.45)
    assert (techlib.STATIC_POWER_PER_CELL_UW
            == BASELINE.static_power_per_cell_uw == 0.02)


def test_baseline_is_the_identity_projection():
    assert BASELINE.area_scale == 1.0
    assert BASELINE.delay_scale == 1.0
    assert BASELINE.frequency_factor(BASELINE.vdd_nominal_v) == 1.0


# ----------------------------------------------------------------------
# registry lookups
# ----------------------------------------------------------------------


def test_unknown_node_raises_and_names_the_known_points():
    with pytest.raises(UnknownTechError) as info:
        tech_model(14, "HP")
    message = str(info.value)
    for node in KNOWN_NODES:
        assert str(node) in message


def test_unknown_flavor_raises():
    with pytest.raises(UnknownTechError):
        tech_model(22, "XX")


def test_flavor_lookup_is_case_insensitive():
    assert tech_model(22, "hp") is tech_model(22, "HP")
    assert tech_model(16, "lp") is tech_model(16, "LP")


# ----------------------------------------------------------------------
# TechSpec and payload parsing
# ----------------------------------------------------------------------


def test_spec_cache_key_and_labels():
    spec = TechSpec(22, "HP", 8.0)
    assert spec.cache_key == ("tech", 22, "HP", 8.0)
    assert spec.label() == "22 nm HP @ 8 mW"
    assert spec.suffix() == "@22HP/8mW"
    unbudgeted = TechSpec(16, "LP")
    assert unbudgeted.cache_key == ("tech", 16, "LP", None)
    assert unbudgeted.suffix() == "@16LP"
    assert spec.model() is tech_model(22, "HP")


def test_parse_tech_passes_none_through():
    assert parse_tech(None) is None


def test_parse_tech_normalizes_flavor_case():
    spec = parse_tech({"node": 22, "flavor": "lp", "budget_mw": 4})
    assert spec == TechSpec(22, "LP", 4.0)


def test_parse_tech_defaults_to_hp():
    assert parse_tech({"node": 32}) == TechSpec(32, "HP", None)


@pytest.mark.parametrize("spec", [
    "22HP",                          # not an object
    {"flavor": "HP"},                # node missing
    {"node": True},                  # bool is not a node
    {"node": 22.5},                  # not an integer
    {"node": 22, "flavor": 7},       # flavor not a string
    {"node": 22, "budget_mw": "x"},  # budget not a number
    {"node": 22, "budget_mw": -1},   # budget not positive
    {"node": 22, "budget_mw": 0},
])
def test_parse_tech_structural_errors_are_value_errors(spec):
    with pytest.raises(ValueError):
        parse_tech(spec)


def test_parse_tech_unknown_point_is_semantic_not_structural():
    with pytest.raises(UnknownTechError):
        parse_tech({"node": 14})
    with pytest.raises(UnknownTechError):
        parse_tech({"node": 22, "flavor": "XX"})
