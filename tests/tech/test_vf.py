"""The monotone piecewise-linear V/f interpolation primitive."""

import pytest

from repro.tech import interpolate, validate_curve
from repro.tech.model import MODELS


CURVE = ((0.6, 0.1), (0.8, 0.5), (1.0, 1.0))


def test_interpolation_is_exact_at_the_knots():
    for vdd, factor in CURVE:
        assert interpolate(CURVE, vdd) == pytest.approx(factor)


def test_interpolation_is_linear_between_knots():
    assert interpolate(CURVE, 0.7) == pytest.approx(0.3)
    assert interpolate(CURVE, 0.9) == pytest.approx(0.75)


def test_interpolation_clamps_outside_the_curve():
    assert interpolate(CURVE, 0.3) == pytest.approx(0.1)
    assert interpolate(CURVE, 2.0) == pytest.approx(1.0)


def test_interpolation_is_monotone_on_a_fine_grid():
    previous = None
    for i in range(101):
        vdd = 0.5 + i * 0.006
        factor = interpolate(CURVE, vdd)
        if previous is not None:
            assert factor >= previous
        previous = factor


@pytest.mark.parametrize("curve", [
    (),                                # empty
    ((0.0, 1.0),),                     # non-positive vdd
    ((0.6, 0.0), (1.0, 1.0)),          # non-positive factor
    ((0.8, 0.5), (0.6, 0.1)),          # vdd not increasing
    ((0.6, 0.6), (0.6, 1.0)),          # duplicate vdd
    ((0.6, 0.5), (1.0, 0.4)),          # factor decreasing
])
def test_validate_curve_rejects_malformed_curves(curve):
    with pytest.raises(ValueError):
        validate_curve(curve)


def test_validate_curve_returns_a_tuple():
    validated = validate_curve([(0.6, 0.1), (1.0, 1.0)])
    assert validated == ((0.6, 0.1), (1.0, 1.0))
    assert isinstance(validated, tuple)


def test_every_registered_model_has_a_valid_curve():
    for model in MODELS.values():
        curve = validate_curve(model.vf_curve)
        assert curve[0][0] == pytest.approx(model.vdd_min_v)
        assert curve[-1][0] == pytest.approx(model.vdd_nominal_v)
        assert curve[-1][1] == pytest.approx(1.0)
