"""``tech=None`` is bit-for-bit the pinned baseline process.

The acceptance bar for the whole technology axis: threading a tech
argument through synthesis, power, and evaluation must not move a single
number when the axis is absent, and pinning the explicit baseline spec
``TechSpec(500, "base")`` must land on exactly the same metrics (only
the bookkeeping fields — node, flavor, vdd — differ).
"""

import pytest

from repro.arch import ARCHITECTURES, description_for
from repro.codegen import Cond, KernelBuilder, Opcode
from repro.explore import evaluate
from repro.explore.metrics import _CHECK_FIELDS
from repro.hgen import synthesize
from repro.tech import BASELINE, TechSpec

#: metric fields that must agree; the tech bookkeeping fields may not
_TECH_FIELDS = ("tech_node", "tech_flavor", "vdd", "budget_mw",
                "power_capped")
_METRIC_FIELDS = tuple(f for f in _CHECK_FIELDS if f not in _TECH_FIELDS)


def sum_kernel(n=6):
    K = KernelBuilder("sum")
    cnt = K.li(n)
    acc = K.li(0)
    K.label("loop")
    K.binary_into(acc, Opcode.ADD, acc, cnt)
    K.binary_into(cnt, Opcode.SUB, cnt, 1)
    K.cbr(Cond.NE, cnt, 0, "loop")
    K.store(K.li(0), acc)
    return K.build()


@pytest.mark.parametrize("arch", sorted(ARCHITECTURES))
def test_explicit_baseline_spec_equals_tech_free_evaluation(arch):
    desc = description_for(arch)
    kernels = [sum_kernel()]
    plain = evaluate(desc, kernels, memoize=False)
    pinned = evaluate(desc, kernels, memoize=False,
                      tech=TechSpec(500, "base"))
    for field in _METRIC_FIELDS:
        assert getattr(plain, field) == getattr(pinned, field), field
    # tech-free evaluations carry no technology bookkeeping at all
    assert plain.tech_node is None and plain.tech_flavor is None
    assert plain.vdd is None and plain.budget_mw is None
    assert plain.power_capped is False
    # the pinned run records the baseline point it ran in
    assert pinned.tech_node == 500
    assert pinned.tech_flavor == "base"
    if pinned.feasible:  # infeasible candidates never reach power
        assert pinned.vdd == pytest.approx(BASELINE.vdd_nominal_v)


def test_with_baseline_tech_is_the_identity_on_the_model(spam2_desc):
    model = synthesize(spam2_desc)
    pinned = model.with_tech(BASELINE)
    assert pinned.cycle_ns == model.cycle_ns
    assert pinned.die_size == model.die_size
    assert pinned.core_die_size == model.core_die_size
    assert pinned.clock_mhz == model.clock_mhz


def test_with_tech_none_returns_the_same_object(spam2_desc):
    model = synthesize(spam2_desc)
    assert model.with_tech(None) is model
