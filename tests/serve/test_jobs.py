"""The bounded priority queue and job records."""

import time

import pytest

from repro.explore.metrics import CostWeights
from repro.serve.jobs import (
    Job,
    JobQueue,
    JobState,
    QueueFullError,
    ServiceUnavailableError,
    new_job_id,
    shard_of_job_id,
)

WEIGHTS = CostWeights(1.0, 0.35, 0.25)


def make_job(label="j", priority=0, workloads=("sum",), backend="xsim",
             max_steps=1000):
    return Job(
        id=new_job_id(), desc=None, label=label, workloads=workloads,
        kernels=(), weights=WEIGHTS, backend=backend, max_steps=max_steps,
        priority=priority,
    )


# ----------------------------------------------------------------------
# Ordering
# ----------------------------------------------------------------------


def test_higher_priority_pops_first():
    queue = JobQueue()
    queue.push(make_job("low", priority=0))
    queue.push(make_job("urgent", priority=5))
    queue.push(make_job("mid", priority=1))
    order = [queue.pop_batch(1)[0].label for _ in range(3)]
    assert order == ["urgent", "mid", "low"]


def test_fifo_within_a_priority_level():
    queue = JobQueue()
    for label in ("a", "b", "c"):
        queue.push(make_job(label, priority=3))
    order = [queue.pop_batch(1)[0].label for _ in range(3)]
    assert order == ["a", "b", "c"]


def test_not_before_hides_an_entry_until_its_time():
    queue = JobQueue()
    queue.push(make_job("delayed"),
               not_before=time.monotonic() + 0.15)
    queue.push(make_job("ready"))
    assert queue.pop_batch(1)[0].label == "ready"
    # the delayed entry is invisible right now...
    assert queue.pop_batch(1, timeout=0.01) is None
    # ...and becomes ready once its backoff elapses
    batch = queue.pop_batch(1, timeout=1.0)
    assert batch[0].label == "delayed"


# ----------------------------------------------------------------------
# Depth bound
# ----------------------------------------------------------------------


def test_depth_bound_raises_queue_full():
    queue = JobQueue(max_depth=2)
    queue.push(make_job("a"))
    queue.push(make_job("b"))
    with pytest.raises(QueueFullError):
        queue.push(make_job("c"))
    assert len(queue) == 2


def test_requeue_bypasses_the_bound():
    queue = JobQueue(max_depth=1)
    queue.push(make_job("a"))
    # a retry of an already-accepted job must never be dropped
    queue.push(make_job("retry"), enforce_bound=False)
    assert len(queue) == 2


def test_requeue_keeps_the_original_sequence_number():
    """A retried job must not starve behind later same-priority
    arrivals: its first-accepted seq travels with it through requeues."""
    queue = JobQueue()
    first = make_job("first")
    queue.push(first)
    popped = queue.pop_batch(1)[0]
    assert popped is first and first.seq is not None
    original_seq = first.seq
    # later arrivals at the same priority while 'first' is being retried
    queue.push(make_job("later-1"))
    queue.push(make_job("later-2"))
    # requeue with a short retry backoff (the crash-retry path)
    queue.push(first, enforce_bound=False,
               not_before=time.monotonic() + 0.05)
    assert first.seq == original_seq
    # while the backoff holds, a later arrival may run (work
    # conservation)...
    assert queue.pop_batch(1)[0].label == "later-1"
    time.sleep(0.06)
    # ...but once matured, the retry pops before anything that arrived
    # after it — its original seq still outranks later-2's
    batch = queue.pop_batch(1, timeout=1.0)
    assert batch[0].label == "first", \
        f"requeued job starved behind {batch[0].label!r}"
    assert batch[0].seq == original_seq
    assert queue.pop_batch(1)[0].label == "later-2"


def test_requeued_job_still_matures_after_backoff():
    queue = JobQueue()
    job = make_job("retry")
    queue.push(job)
    queue.pop_batch(1)
    queue.push(job, enforce_bound=False,
               not_before=time.monotonic() + 0.05)
    assert queue.pop_batch(1, timeout=0.01) is None  # backoff holds
    assert queue.pop_batch(1, timeout=1.0)[0] is job


def test_depth_bound_must_be_positive():
    with pytest.raises(ValueError):
        JobQueue(max_depth=0)


# ----------------------------------------------------------------------
# Config-batched pops
# ----------------------------------------------------------------------


def test_pop_batch_groups_matching_configurations():
    queue = JobQueue()
    queue.push(make_job("a1", workloads=("sum",)))
    queue.push(make_job("b", workloads=("dot",)))
    queue.push(make_job("a2", workloads=("sum",)))
    batch = queue.pop_batch(4)
    assert [job.label for job in batch] == ["a1", "a2"]
    # the differently-configured job stayed queued, in order
    assert queue.pop_batch(4)[0].label == "b"


def test_pop_batch_respects_batch_size():
    queue = JobQueue()
    for i in range(5):
        queue.push(make_job(f"j{i}"))
    assert len(queue.pop_batch(3)) == 3
    assert len(queue) == 2


# ----------------------------------------------------------------------
# Drain / stop
# ----------------------------------------------------------------------


def test_drain_returns_queued_jobs_and_stops_the_queue():
    queue = JobQueue()
    queue.push(make_job("a"))
    queue.push(make_job("b"), not_before=time.monotonic() + 60.0)
    drained = queue.drain()
    assert {job.label for job in drained} == {"a", "b"}
    assert queue.stopped
    assert len(queue) == 0
    with pytest.raises(ServiceUnavailableError):
        queue.push(make_job("c"))
    assert queue.pop_batch(1) is None


# ----------------------------------------------------------------------
# Job records
# ----------------------------------------------------------------------


def test_job_state_terminality():
    assert not JobState.QUEUED.terminal
    assert not JobState.RUNNING.terminal
    for state in (JobState.SUCCEEDED, JobState.FAILED,
                  JobState.REJECTED, JobState.CANCELLED):
        assert state.terminal


def test_job_ids_are_unique():
    assert len({new_job_id() for _ in range(100)}) == 100


def test_shard_scoped_job_ids_round_trip():
    job_id = new_job_id("s3")
    assert job_id.startswith("s3-")
    assert shard_of_job_id(job_id) == "s3"
    assert shard_of_job_id(new_job_id()) is None


def test_config_key_ignores_priority_and_timeout():
    a = make_job("a", priority=0)
    b = make_job("b", priority=9)
    b.timeout_s = 1.0
    assert a.config_key == b.config_key
    assert a.config_key != make_job("c", backend="block").config_key
