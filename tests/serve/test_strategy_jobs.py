"""Tests for exploration-strategy jobs on the serve v1 schema."""

import json

import pytest

from repro.serve import EvaluationService, ServiceConfig
from repro.serve.service import BadRequestError, CODE_BAD_STRATEGY

from .conftest import payload


@pytest.fixture(scope="module")
def real_service():
    """One real-toolchain service shared by the module's slow tests."""
    service = EvaluationService(
        ServiceConfig(workers=1, static_check=False)
    ).start()
    yield service
    service.shutdown(drain=False, timeout=5.0)


def strategy_payload(name="greedy", params=None, **overrides):
    spec = {"name": name}
    if params is not None:
        spec["params"] = params
    return payload(strategy=spec, **overrides)


# ----------------------------------------------------------------------
# admission-time validation (satellite 2)
# ----------------------------------------------------------------------


def test_unknown_strategy_rejected_without_queue_slot(service_factory):
    service = service_factory()
    job = service.submit(strategy_payload("annealing"))
    assert job.state.value == "rejected"
    assert job.diagnostics
    assert job.diagnostics[0].code == CODE_BAD_STRATEGY
    # the diagnostic names the known strategies
    for known in ("greedy", "multistart", "pareto", "population"):
        assert known in job.diagnostics[0].message
    assert len(service.queue) == 0
    counters = service.metrics_snapshot().counters
    assert counters.get("serve.jobs_rejected") == 1
    assert "serve.jobs_accepted" not in counters


def test_bad_strategy_params_rejected(service_factory):
    service = service_factory()
    job = service.submit(
        strategy_payload("pareto", params={"bogus": True})
    )
    assert job.state.value == "rejected"
    assert job.diagnostics[0].code == CODE_BAD_STRATEGY


def test_bad_driver_params_rejected(service_factory):
    service = service_factory()
    job = service.submit(
        strategy_payload("greedy", params={"max_iterations": "lots"})
    )
    assert job.state.value == "rejected"
    assert job.diagnostics[0].code == CODE_BAD_STRATEGY


@pytest.mark.parametrize("spec", [
    "greedy",                      # not an object
    {"params": {}},                # name missing
    {"name": 7},                   # name not a string
    {"name": "greedy", "params": [1, 2]},  # params not an object
])
def test_malformed_strategy_spec_is_a_400(service_factory, spec):
    service = service_factory()
    with pytest.raises(BadRequestError):
        service.submit(payload(strategy=spec))


def test_absent_strategy_field_unchanged(service_factory):
    service = service_factory()
    job = service.submit(payload())
    service.wait(job.id, timeout=10)
    record = job.to_dict()
    assert job.strategy is None
    assert "strategy" not in record
    assert "exploration" not in record
    assert json.dumps(record)  # still JSON-serializable


# ----------------------------------------------------------------------
# dispatch, result schema, coalescing (real tool chain)
# ----------------------------------------------------------------------


def test_strategy_job_runs_an_exploration(real_service):
    job = real_service.submit(strategy_payload(
        "pareto", params={"max_iterations": 2}, arch="spam2",
        timeout_s=300.0,
    ))
    real_service.wait(job.id, timeout=300)
    assert job.state.value == "succeeded"
    record = job.to_dict()
    assert record["strategy"] == {
        "name": "pareto", "params": {"max_iterations": 2},
    }
    exploration = record["exploration"]
    assert exploration["strategy"] == "pareto"
    assert exploration["iterations"] <= 2
    assert exploration["evaluations"] > 0
    assert exploration["frontier"]
    assert exploration["best"]["cost"] == min(
        point["cost"] for point in exploration["frontier"]
    )
    assert record["result"]["feasible"]
    assert json.dumps(record)


def test_identical_strategy_jobs_coalesce(real_service):
    spec = strategy_payload("greedy", params={"max_iterations": 1},
                            arch="risc16", timeout_s=300.0)
    first = real_service.submit(spec)
    second = real_service.submit(spec)
    real_service.wait(first.id, timeout=300)
    real_service.wait(second.id, timeout=300)
    if second.coalesced_with is not None:
        assert second.coalesced_with == first.id
        assert second.to_dict()["exploration"] is not None
    # a plain job for the same description is different work
    plain = real_service.submit(payload(arch="risc16", timeout_s=300.0))
    assert plain.coalesced_with is None
    real_service.wait(plain.id, timeout=300)
    assert "exploration" not in plain.to_dict()


def test_different_strategy_params_do_not_coalesce(real_service):
    a = real_service.submit(strategy_payload(
        "greedy", params={"max_iterations": 1}, arch="spam",
        timeout_s=300.0,
    ))
    b = real_service.submit(strategy_payload(
        "greedy", params={"max_iterations": 2}, arch="spam",
        timeout_s=300.0,
    ))
    assert b.coalesced_with is None
    real_service.wait(a.id, timeout=300)
    real_service.wait(b.id, timeout=300)
    assert a.key != b.key
