"""The evaluation service: lifecycle, gate, coalescing, timeouts, drain."""

import threading
import time

import pytest

from repro.serve import (
    BadRequestError,
    EvaluationService,
    JobState,
    QueueFullError,
    ServiceConfig,
    ServiceUnavailableError,
    UnknownJobError,
)
from repro.serve.service import CODE_PARSE_ERROR

from .conftest import instant_eval, payload, stub_evaluation


def counter(service, name):
    return service.metrics_snapshot().counters.get(name, 0.0)


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------


def test_submit_wait_succeed(service_factory):
    service = service_factory()
    job = service.submit(payload())
    done = service.wait(job.id, timeout=10.0)
    assert done.state is JobState.SUCCEEDED
    assert done.evaluation is not None and done.evaluation.feasible
    assert done.attempts == 1
    assert counter(service, "serve.jobs_accepted") == 1
    assert counter(service, "serve.evaluations_run") == 1
    assert counter(service, "serve.jobs_completed") == 1


def test_job_record_round_trips_to_dict(service_factory):
    service = service_factory()
    job = service.submit(payload(label="mine", priority=2))
    record = service.wait(job.id, timeout=10.0).to_dict()
    assert record["state"] == "succeeded"
    assert record["label"] == "mine"
    assert record["priority"] == 2
    assert record["result"]["feasible"] is True
    assert record["result"]["cycles"] == 100


def test_wait_times_out_on_a_stuck_job(service_factory):
    block = threading.Event()
    service = service_factory(evaluate_fn=lambda job: block.wait(30))
    job = service.submit(payload())
    with pytest.raises(TimeoutError):
        service.wait(job.id, timeout=0.05)
    block.set()


def test_unknown_job_id(service_factory):
    service = service_factory()
    with pytest.raises(UnknownJobError):
        service.job("deadbeef")


def test_context_manager_starts_and_drains():
    with EvaluationService(
        ServiceConfig(workers=1, static_check=False),
        evaluate_fn=instant_eval,
    ) as service:
        job = service.submit(payload())
        service.wait(job.id, timeout=10.0)
    assert service.draining
    with pytest.raises(ServiceUnavailableError):
        service.submit(payload())


# ----------------------------------------------------------------------
# Payload validation (HTTP 400 material)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("bad", [
    {"arch": "spam2", "isdl": "processor"},  # both targets
    {},                                      # neither target
    {"arch": "no-such-arch"},
    {"arch": "spam2", "backend": "verilog"},
    {"arch": "spam2", "workloads": ["no-such-kernel"]},
    {"arch": "spam2", "workloads": ["sum:0"]},
    {"arch": "spam2", "weights": [1, 2, 3]},
    {"arch": "spam2", "weights": {"runtime": "heavy"}},
    {"arch": "spam2", "timeout_s": -1},
    {"arch": "spam2", "max_steps": 0},
])
def test_uninterpretable_payloads_raise_bad_request(service_factory, bad):
    service = service_factory()
    with pytest.raises(BadRequestError):
        service.submit(bad)
    assert counter(service, "serve.jobs_accepted") == 0


# ----------------------------------------------------------------------
# Admission gate
# ----------------------------------------------------------------------


def test_unparseable_isdl_is_rejected_with_isdl001(service_factory):
    service = service_factory(static_check=True)
    job = service.submit({"isdl": "processor oops {"})
    assert job.state is JobState.REJECTED
    assert job.diagnostics[0].code == CODE_PARSE_ERROR
    assert "admission gate" in job.error
    assert counter(service, "serve.jobs_rejected") == 1
    assert counter(service, "serve.jobs_accepted") == 0


def test_gate_rejects_invalid_description_with_diagnostics(service_factory):
    with open("examples/ambiguous.isdl", "r", encoding="utf-8") as handle:
        source = handle.read()
    service = service_factory(static_check=True)
    job = service.submit({"isdl": source})
    assert job.state is JobState.REJECTED
    assert job.diagnostics  # the full repro-lint list rides on the record
    assert any(d.code.startswith("ISDL") for d in job.diagnostics)
    assert counter(service, "serve.evaluations_run") == 0


def test_gate_can_be_disabled(service_factory):
    with open("examples/ambiguous.isdl", "r", encoding="utf-8") as handle:
        source = handle.read()
    service = service_factory(static_check=False)
    job = service.submit({"isdl": source})
    assert job.state is not JobState.REJECTED
    service.wait(job.id, timeout=10.0)


# ----------------------------------------------------------------------
# Coalescing
# ----------------------------------------------------------------------


def test_duplicate_inflight_submission_coalesces(service_factory):
    release = threading.Event()

    def gated(job):
        release.wait(10)
        return stub_evaluation(job.label)

    service = service_factory(evaluate_fn=gated, workers=1)
    leader = service.submit(payload())
    twin = service.submit(payload())
    assert twin.coalesced_with == leader.id
    release.set()
    for job in (leader, twin):
        assert service.wait(job.id, timeout=10.0).state \
            is JobState.SUCCEEDED
    assert twin.evaluation is leader.evaluation
    assert counter(service, "serve.evaluations_run") == 1
    assert counter(service, "serve.jobs_coalesced") == 1
    assert counter(service, "serve.jobs_completed") == 2


def test_different_configurations_do_not_coalesce(service_factory):
    release = threading.Event()

    def gated(job):
        release.wait(10)
        return stub_evaluation(job.label)

    service = service_factory(evaluate_fn=gated, workers=2)
    a = service.submit(payload(max_steps=1000))
    b = service.submit(payload(max_steps=2000))
    assert b.coalesced_with is None
    release.set()
    service.wait(a.id, timeout=10.0)
    service.wait(b.id, timeout=10.0)
    assert counter(service, "serve.evaluations_run") == 2


def test_coalescing_can_be_disabled(service_factory):
    release = threading.Event()

    def gated(job):
        release.wait(10)
        return stub_evaluation(job.label)

    service = service_factory(evaluate_fn=gated, workers=2,
                              coalesce=False)
    a = service.submit(payload())
    b = service.submit(payload())
    assert b.coalesced_with is None
    release.set()
    service.wait(a.id, timeout=10.0)
    service.wait(b.id, timeout=10.0)
    assert counter(service, "serve.evaluations_run") == 2


def test_followers_of_a_failed_leader_fail_too(service_factory):
    release = threading.Event()

    def doomed(job):
        release.wait(10)
        raise RuntimeError("synthesis exploded")

    service = service_factory(evaluate_fn=doomed, workers=1)
    leader = service.submit(payload())
    twin = service.submit(payload())
    release.set()
    assert service.wait(leader.id, timeout=10.0).state is JobState.FAILED
    assert service.wait(twin.id, timeout=10.0).state is JobState.FAILED
    assert "synthesis exploded" in twin.error
    assert counter(service, "serve.jobs_failed") == 2


# ----------------------------------------------------------------------
# Backpressure
# ----------------------------------------------------------------------


def test_full_queue_throttles_submissions(service_factory):
    block = threading.Event()

    def gated(job):
        block.wait(30)
        return stub_evaluation(job.label)

    service = service_factory(
        evaluate_fn=gated, workers=1, max_queue_depth=2, coalesce=False,
    )
    jobs = [service.submit(payload())]  # occupies the worker
    time.sleep(0.1)  # let the worker pop it off the queue
    jobs.append(service.submit(payload()))
    jobs.append(service.submit(payload()))
    with pytest.raises(QueueFullError):
        service.submit(payload())
    assert counter(service, "serve.jobs_throttled") == 1
    block.set()
    for job in jobs:
        assert service.wait(job.id, timeout=10.0).state \
            is JobState.SUCCEEDED


# ----------------------------------------------------------------------
# Timeouts and retries
# ----------------------------------------------------------------------


def test_slow_first_attempt_retries_then_succeeds(service_factory):
    attempts = []

    def flaky(job):
        attempts.append(time.monotonic())
        if len(attempts) == 1:
            time.sleep(5.0)  # blows the deadline; thread is abandoned
        return stub_evaluation(job.label)

    service = service_factory(evaluate_fn=flaky, workers=1)
    job = service.submit(payload(timeout_s=0.2))
    done = service.wait(job.id, timeout=15.0)
    assert done.state is JobState.SUCCEEDED
    assert done.attempts == 2
    assert counter(service, "serve.jobs_retried") == 1
    assert counter(service, "serve.jobs_timeout") == 0


def test_persistent_timeout_exhausts_attempts_and_fails(service_factory):
    service = service_factory(
        evaluate_fn=lambda job: time.sleep(30),
        workers=1, max_attempts=2,
    )
    job = service.submit(payload(timeout_s=0.1))
    done = service.wait(job.id, timeout=15.0)
    assert done.state is JobState.FAILED
    assert "timed out" in done.error
    assert done.attempts == 2
    assert counter(service, "serve.jobs_retried") == 1
    assert counter(service, "serve.jobs_timeout") == 1


def test_timed_out_jobs_batchmates_are_requeued_unharmed(service_factory):
    order = []

    def recording(job):
        order.append(job.label)
        if job.label == "stuck" and order.count("stuck") == 1:
            time.sleep(5.0)
        return stub_evaluation(job.label)

    service = service_factory(evaluate_fn=recording, workers=1,
                              batch_size=4, coalesce=False,
                              max_attempts=2)
    stuck = service.submit(payload(label="stuck", timeout_s=0.2))
    mate = service.submit(payload(label="mate", timeout_s=5.0))
    assert service.wait(mate.id, timeout=15.0).state is JobState.SUCCEEDED
    assert service.wait(stuck.id, timeout=15.0).state \
        is JobState.SUCCEEDED
    assert mate.attempts == 1  # never charged for its neighbour's stall


# ----------------------------------------------------------------------
# Worker crash resilience
# ----------------------------------------------------------------------


def test_raising_evaluation_fails_job_but_pool_survives(service_factory):
    def sometimes(job):
        if job.label == "boom":
            raise ValueError("cannot synthesize")
        return stub_evaluation(job.label)

    service = service_factory(evaluate_fn=sometimes, workers=1)
    bad = service.submit(payload(label="boom"))
    assert service.wait(bad.id, timeout=10.0).state is JobState.FAILED
    assert "cannot synthesize" in bad.error
    good = service.submit(payload(label="fine", max_steps=777))
    assert service.wait(good.id, timeout=10.0).state is JobState.SUCCEEDED


def test_infeasible_evaluation_is_a_successful_measurement(
        service_factory):
    from repro.explore.metrics import Evaluation

    service = service_factory(
        evaluate_fn=lambda job: Evaluation(
            name=job.label, feasible=False, reason="does not fit",
        ),
    )
    job = service.submit(payload())
    done = service.wait(job.id, timeout=10.0)
    assert done.state is JobState.SUCCEEDED  # a negative result, not a bug
    record = done.to_dict()
    assert record["result"] == {
        "feasible": False, "reason": "does not fit", "cost": None,
    }


# ----------------------------------------------------------------------
# Priorities and drain
# ----------------------------------------------------------------------


def test_priority_jumps_the_queue(service_factory):
    release = threading.Event()
    order = []

    def recording(job):
        if job.label == "gate":
            release.wait(10)
        order.append(job.label)
        return stub_evaluation(job.label)

    service = service_factory(evaluate_fn=recording, workers=1,
                              coalesce=False)
    service.submit(payload(label="gate"))
    time.sleep(0.1)  # the gate job must be off the queue first
    low = service.submit(payload(label="low", priority=0))
    high = service.submit(payload(label="high", priority=5))
    release.set()
    service.wait(low.id, timeout=10.0)
    service.wait(high.id, timeout=10.0)
    assert order == ["gate", "high", "low"]


def test_drain_finishes_inflight_and_cancels_queued(service_factory):
    release = threading.Event()

    def gated(job):
        release.wait(10)
        return stub_evaluation(job.label)

    service = service_factory(evaluate_fn=gated, workers=1,
                              coalesce=False)
    running = service.submit(payload(label="running"))
    time.sleep(0.1)
    queued = [service.submit(payload(label=f"q{i}")) for i in range(3)]
    release.set()
    service.shutdown(drain=True, timeout=10.0)
    assert running.state is JobState.SUCCEEDED
    assert all(job.state is JobState.CANCELLED for job in queued)
    assert all("shut down" in job.error for job in queued)
    assert counter(service, "serve.jobs_cancelled") == 3
    assert service.health()["status"] == "draining"


# ----------------------------------------------------------------------
# Introspection
# ----------------------------------------------------------------------


def test_health_summarizes_jobs_and_counters(service_factory):
    service = service_factory(static_check=True)
    done = service.submit(payload())
    service.wait(done.id, timeout=10.0)
    service.submit({"isdl": "processor oops {"})
    health = service.health()
    assert health["status"] == "ok"
    assert health["workers"] == 2
    assert health["jobs"] == {"succeeded": 1, "rejected": 1}
    assert health["counters"]["serve.jobs_accepted"] == 1
    assert health["counters"]["serve.jobs_rejected"] == 1


def test_jobs_listing_preserves_submission_order(service_factory):
    service = service_factory()
    ids = [service.submit(payload(label=f"j{i}", max_steps=1000 + i)).id
           for i in range(3)]
    assert [job.id for job in service.jobs()] == ids


# ----------------------------------------------------------------------
# The real tool chain (no evaluate_fn seam)
# ----------------------------------------------------------------------


def test_real_evaluation_and_cache_dedupe_across_time():
    config = ServiceConfig(workers=1, static_check=False)
    with EvaluationService(config) as service:
        first = service.submit(payload(workloads=["sum:8"]))
        done = service.wait(first.id, timeout=120.0)
        assert done.state is JobState.SUCCEEDED
        assert done.evaluation.feasible
        assert done.evaluation.cycles > 0
        assert not done.cached
        # the same candidate after completion: served from the cache,
        # no second toolchain run (dedupe across time, not in flight)
        second = service.submit(payload(workloads=["sum:8"]))
        again = service.wait(second.id, timeout=120.0)
        assert again.state is JobState.SUCCEEDED
        assert again.cached
        assert again.evaluation.cycles == done.evaluation.cycles
        snapshot = service.metrics_snapshot()
        assert snapshot.counters["serve.evaluations_run"] == 1
