"""Shared helpers for the evaluation-service tests.

Most tests drive the service through its ``evaluate_fn`` seam so they
can script instant, slow, or failing evaluations without running the
real tool chain; a couple of end-to-end tests exercise the real path.
"""

import pytest

from repro.explore.metrics import Evaluation
from repro.serve import EvaluationService, ServiceConfig


def stub_evaluation(label="stub", cycles=100):
    return Evaluation(
        name=label, feasible=True, cycles=cycles, cycle_ns=10.0,
        die_size=50_000.0, power_mw=120.0, fingerprint="stub-fp",
    )


def instant_eval(job):
    return stub_evaluation(job.label)


def payload(**overrides):
    base = {"arch": "spam2", "workloads": ["sum:8"], "timeout_s": 10.0}
    base.update(overrides)
    return base


@pytest.fixture
def service_factory():
    """Build services that are shut down at test exit regardless of
    outcome; defaults favour fast, deterministic tests."""
    services = []

    def build(evaluate_fn=instant_eval, **config):
        config.setdefault("workers", 2)
        config.setdefault("static_check", False)
        config.setdefault("batch_size", 1)
        config.setdefault("retry_backoff_s", 0.01)
        service = EvaluationService(
            ServiceConfig(**config), evaluate_fn=evaluate_fn
        )
        services.append(service)
        return service.start()

    yield build
    for service in services:
        service.shutdown(drain=False, timeout=2.0)
