"""Technology-pinned jobs on the serve v1 schema."""

import json

import pytest

from repro.serve import (
    EvaluationService,
    ServeClient,
    ServiceConfig,
    serve_in_thread,
)
from repro.serve.cli import main as cli_main
from repro.serve.service import BadRequestError, CODE_BAD_TECH

from .conftest import instant_eval, payload


def tech_payload(node=22, flavor="HP", budget_mw=None, **overrides):
    spec = {"node": node, "flavor": flavor}
    if budget_mw is not None:
        spec["budget_mw"] = budget_mw
    return payload(tech=spec, **overrides)


@pytest.fixture(scope="module")
def real_live():
    """One real-toolchain server for the end-to-end tech tests."""
    service = EvaluationService(
        ServiceConfig(workers=1, static_check=False)
    )
    server, _ = serve_in_thread(service)
    yield server
    server.shutdown_service(drain=False, timeout=5.0)


@pytest.fixture(scope="module")
def live():
    """One stubbed server for the client/CLI plumbing tests."""
    service = EvaluationService(
        ServiceConfig(workers=2, static_check=False, batch_size=1),
        evaluate_fn=instant_eval,
    )
    server, _ = serve_in_thread(service)
    yield server
    server.shutdown_service(drain=False, timeout=2.0)


# ----------------------------------------------------------------------
# admission-time validation
# ----------------------------------------------------------------------


def test_unknown_node_rejected_without_queue_slot(service_factory):
    service = service_factory()
    job = service.submit(tech_payload(node=14))
    assert job.state.value == "rejected"
    assert job.diagnostics
    assert job.diagnostics[0].code == CODE_BAD_TECH
    # the diagnostic names the known technology points
    for node in (45, 32, 22, 16, 10):
        assert str(node) in job.diagnostics[0].message
    assert len(service.queue) == 0
    counters = service.metrics_snapshot().counters
    assert counters.get("serve.jobs_rejected") == 1
    assert "serve.jobs_accepted" not in counters


def test_unknown_flavor_rejected(service_factory):
    service = service_factory()
    job = service.submit(tech_payload(flavor="XX"))
    assert job.state.value == "rejected"
    assert job.diagnostics[0].code == CODE_BAD_TECH


@pytest.mark.parametrize("spec", [
    "22HP",                          # not an object
    {"flavor": "HP"},                # node missing
    {"node": True},                  # bool is not a node
    {"node": 22, "flavor": 7},       # flavor not a string
    {"node": 22, "budget_mw": -1},   # budget not positive
    {"node": 22, "budget_mw": "x"},  # budget not a number
])
def test_malformed_tech_spec_is_a_400(service_factory, spec):
    service = service_factory()
    with pytest.raises(BadRequestError):
        service.submit(payload(tech=spec))


def test_absent_tech_field_unchanged(service_factory):
    service = service_factory()
    job = service.submit(payload())
    service.wait(job.id, timeout=10)
    record = job.to_dict()
    assert job.tech is None
    assert "tech" not in record
    assert json.dumps(record)  # still JSON-serializable


def test_tech_extends_the_coalescing_key(service_factory):
    service = service_factory()
    bare = service.submit(payload())
    pinned = service.submit(tech_payload())
    budgeted = service.submit(tech_payload(budget_mw=2.0))
    again = service.submit(tech_payload(budget_mw=2.0))
    assert bare.key != pinned.key
    assert pinned.key != budgeted.key
    assert budgeted.key == again.key
    # the tech-free key keeps its historical shape: pinned is a superset
    assert pinned.key[:len(bare.key)] == bare.key


# ----------------------------------------------------------------------
# end-to-end (real tool chain)
# ----------------------------------------------------------------------


def test_tech_job_end_to_end(real_live):
    client = ServeClient(real_live.url)
    record = client.submit_and_wait(
        tech_payload(budget_mw=2.0, timeout_s=300.0), timeout=300.0,
    )
    assert record["state"] == "succeeded"
    assert record["tech"] == {"node": 22, "flavor": "HP",
                              "budget_mw": 2.0}
    result = record["result"]
    assert result["feasible"]
    tech = result["tech"]
    assert tech["node"] == 22 and tech["flavor"] == "HP"
    assert tech["capped"] is True
    assert tech["budget_mw"] == 2.0
    assert 0.0 < tech["vdd"] < 0.9  # squeezed below the 22HP nominal
    assert result["power_mw"] == pytest.approx(2.0, rel=1e-6)
    assert json.dumps(record)


def test_cli_tech_submit_prints_the_operating_point(real_live, capsys):
    code = cli_main([
        "submit", "--url", real_live.url, "--arch", "spam2",
        "--workload", "sum:8", "--tech-node", "22",
        "--power-budget", "2.0", "--timeout", "300",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "tech: 22 nm HP" in out
    assert "budget 2 mW" in out
    assert "(capped)" in out


# ----------------------------------------------------------------------
# client + CLI plumbing (stubbed evaluations)
# ----------------------------------------------------------------------


def test_client_submit_tech_kwarg_injects_the_payload_field(live):
    client = ServeClient(live.url)
    record = client.submit_and_wait(
        payload(), tech={"node": 22, "flavor": "lp"},
    )
    assert record["state"] == "succeeded"
    assert record["tech"] == {"node": 22, "flavor": "LP"}


def test_client_submit_unknown_tech_returns_rejected_record(live):
    client = ServeClient(live.url)
    record = client.submit(payload(), tech={"node": 14})
    assert record["state"] == "rejected"
    assert record["diagnostics"][0]["code"] == CODE_BAD_TECH


def test_cli_tech_flags_pass_through(live, capsys):
    code = cli_main([
        "submit", "--url", live.url, "--arch", "spam2",
        "--tech-node", "22", "--tech-flavor", "LP",
        "--power-budget", "2.0", "--json",
    ])
    assert code == 0
    record = json.loads(capsys.readouterr().out)
    assert record["tech"] == {"node": 22, "flavor": "LP",
                              "budget_mw": 2.0}


def test_cli_unknown_node_exits_two(live, capsys):
    code = cli_main([
        "submit", "--url", live.url, "--arch", "spam2",
        "--tech-node", "14",
    ])
    out = capsys.readouterr().out
    assert code == 2
    assert CODE_BAD_TECH in out


def test_cli_budget_without_node_is_a_usage_error(live):
    with pytest.raises(SystemExit):
        cli_main(["submit", "--url", live.url, "--arch", "spam2",
                  "--power-budget", "2.0"])


def test_cli_flavor_without_node_is_a_usage_error(live):
    with pytest.raises(SystemExit):
        cli_main(["submit", "--url", live.url, "--arch", "spam2",
                  "--tech-flavor", "LP"])
