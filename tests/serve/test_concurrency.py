"""Many concurrent clients against one service: coalescing exactness,
backpressure accounting, and drain under load."""

import threading
import time

from repro.serve import JobState, QueueFullError

from .conftest import payload, stub_evaluation


def counters(service):
    return service.metrics_snapshot().counters


def test_duplicate_burst_coalesces_to_one_evaluation_per_key(
        service_factory):
    """32 submissions of 4 unique candidates, all while the workers are
    gated: exactly 4 evaluations run, the other 28 ride along."""
    release = threading.Event()

    def gated(job):
        release.wait(30)
        return stub_evaluation(job.label)

    service = service_factory(evaluate_fn=gated, workers=4,
                              max_queue_depth=64)
    unique = [payload(max_steps=10_000 + k) for k in range(4)]
    jobs, lock = [], threading.Lock()

    def client(thread_index):
        for k in range(4):
            job = service.submit(dict(unique[(thread_index + k) % 4]))
            with lock:
                jobs.append(job)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(jobs) == 32
    release.set()
    for job in jobs:
        assert service.wait(job.id, timeout=15.0).state \
            is JobState.SUCCEEDED
    snap = counters(service)
    assert snap["serve.evaluations_run"] == 4
    assert snap["serve.jobs_accepted"] == 4
    assert snap["serve.jobs_coalesced"] == 28
    assert snap["serve.jobs_completed"] == 32


def test_every_submission_is_accounted_for_under_backpressure(
        service_factory):
    """accepted + coalesced + throttled must equal the submission count
    even with a tiny queue and racing clients."""
    release = threading.Event()

    def gated(job):
        release.wait(30)
        return stub_evaluation(job.label)

    service = service_factory(evaluate_fn=gated, workers=1,
                              max_queue_depth=2)
    outcomes, lock = [], threading.Lock()

    def client(thread_index):
        for k in range(6):
            try:
                service.submit(
                    payload(max_steps=1_000 + thread_index * 100 + k)
                )
                outcome = "in"
            except QueueFullError:
                outcome = "throttled"
            with lock:
                outcomes.append(outcome)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    release.set()
    snap = counters(service)
    admitted = snap.get("serve.jobs_accepted", 0) \
        + snap.get("serve.jobs_coalesced", 0)
    throttled = snap.get("serve.jobs_throttled", 0)
    assert admitted + throttled == 24
    assert admitted == outcomes.count("in")
    assert throttled == outcomes.count("throttled")
    assert throttled > 0  # the tiny queue must actually have pushed back
    # every admitted job still reaches a terminal state
    for job in service.jobs(limit=1000):
        service.wait(job.id, timeout=15.0)


def test_drain_under_load_loses_no_job(service_factory):
    """Shutdown mid-burst: every admitted job ends terminal — finished
    or cancelled, never stuck queued/running or silently dropped."""
    def slowish(job):
        time.sleep(0.05)
        return stub_evaluation(job.label)

    service = service_factory(evaluate_fn=slowish, workers=2,
                              max_queue_depth=128, coalesce=False)
    jobs, lock = [], threading.Lock()
    stop = threading.Event()

    def client(thread_index):
        k = 0
        while not stop.is_set() and k < 20:
            try:
                job = service.submit(
                    payload(max_steps=1_000 + thread_index * 100 + k)
                )
            except Exception:  # draining/backpressure both fine here
                return
            with lock:
                jobs.append(job)
            k += 1

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(4)]
    for thread in threads:
        thread.start()
    time.sleep(0.15)  # let a mid-size backlog build
    stop.set()
    service.shutdown(drain=True, timeout=30.0)
    for thread in threads:
        thread.join(timeout=5.0)
    assert jobs
    states = {}
    for job in jobs:
        assert job.done, f"job {job.label} left {job.state.value}"
        states[job.state.value] = states.get(job.state.value, 0) + 1
    assert set(states) <= {"succeeded", "cancelled"}
    snap = counters(service)
    assert snap["serve.jobs_completed"] \
        + snap.get("serve.jobs_cancelled", 0) == len(jobs)


def test_concurrent_status_reads_while_working(service_factory):
    """health()/metrics_snapshot()/jobs() stay consistent while the pool
    and submitters are busy (no deadlocks, no exceptions)."""
    service = service_factory(workers=2)
    errors = []
    stop = threading.Event()

    def reader():
        try:
            while not stop.is_set():
                service.health()
                service.metrics_snapshot()
                service.jobs()
        except Exception as exc:  # noqa: BLE001 — recorded for the assert
            errors.append(exc)

    readers = [threading.Thread(target=reader) for _ in range(3)]
    for thread in readers:
        thread.start()
    jobs = [service.submit(payload(max_steps=1_000 + k))
            for k in range(20)]
    for job in jobs:
        service.wait(job.id, timeout=15.0)
    stop.set()
    for thread in readers:
        thread.join(timeout=5.0)
    assert not errors
    assert service.health()["jobs"] == {"succeeded": 20}
