"""The JSON-over-HTTP wire protocol of the evaluation service."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.serve import EvaluationService, ServiceConfig, serve_in_thread

from .conftest import instant_eval, payload, stub_evaluation


def request(url, method="GET", body=None, headers=None):
    """(status, parsed-JSON body) for one request; never raises on 4xx."""
    data = None
    if body is not None:
        data = body if isinstance(body, bytes) \
            else json.dumps(body).encode("utf-8")
    req = urllib.request.Request(url, data=data, method=method,
                                 headers=headers or {})
    try:
        with urllib.request.urlopen(req, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        raw = exc.read()
        try:
            return exc.code, json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return exc.code, {"raw": raw}


@pytest.fixture
def server():
    service = EvaluationService(
        ServiceConfig(workers=2, static_check=True, batch_size=1),
        evaluate_fn=instant_eval,
    )
    http_server, _ = serve_in_thread(service)
    yield http_server
    http_server.shutdown_service(drain=False, timeout=2.0)


def wait_for_state(url, job_id, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, record = request(f"{url}/v1/jobs/{job_id}")
        assert status == 200
        if record["state"] in ("succeeded", "failed", "rejected",
                               "cancelled"):
            return record
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never finished")


# ----------------------------------------------------------------------
# Submission and status
# ----------------------------------------------------------------------


def test_submit_returns_202_and_status_polls_to_success(server):
    status, record = request(f"{server.url}/v1/jobs", "POST", payload())
    assert status == 202
    assert record["state"] in ("queued", "running", "succeeded")
    done = wait_for_state(server.url, record["id"])
    assert done["state"] == "succeeded"
    assert done["result"]["feasible"] is True


def test_invalid_description_answers_422_with_diagnostics(server):
    status, record = request(
        f"{server.url}/v1/jobs", "POST", {"isdl": "processor oops {"}
    )
    assert status == 422
    assert record["state"] == "rejected"
    assert record["diagnostics"][0]["code"] == "ISDL001"
    assert "severity" in record["diagnostics"][0]


def test_malformed_payloads_answer_400(server):
    url = f"{server.url}/v1/jobs"
    assert request(url, "POST", b"{not json")[0] == 400
    assert request(url, "POST", [1, 2, 3])[0] == 400
    assert request(url, "POST", {"arch": "no-such-arch"})[0] == 400
    status, record = request(url, "POST",
                             {"arch": "spam2", "isdl": "both"})
    assert status == 400 and "error" in record


def test_missing_body_answers_400(server):
    status, record = request(f"{server.url}/v1/jobs", "POST")
    assert status == 400
    assert "body" in record["error"]


def test_oversized_body_answers_413(server):
    from repro.serve.http import MAX_BODY_BYTES

    blob = b'{"isdl": "' + b"x" * MAX_BODY_BYTES + b'"}'
    status, _ = request(f"{server.url}/v1/jobs", "POST", blob)
    assert status == 413


def test_unknown_routes_and_jobs_answer_404(server):
    assert request(f"{server.url}/v1/nope")[0] == 404
    assert request(f"{server.url}/v1/jobs/deadbeef")[0] == 404
    assert request(f"{server.url}/v1/jobs/x", "POST", {})[0] == 404


def test_job_listing_shows_brief_records(server):
    _, a = request(f"{server.url}/v1/jobs", "POST", payload(label="a"))
    wait_for_state(server.url, a["id"])
    status, listing = request(f"{server.url}/v1/jobs")
    assert status == 200
    ours = [job for job in listing["jobs"] if job["id"] == a["id"]]
    assert ours and ours[0]["label"] == "a"
    assert "result" not in ours[0]  # brief records on the listing


# ----------------------------------------------------------------------
# Health and metrics
# ----------------------------------------------------------------------


def test_healthz_reports_ok_with_pool_summary(server):
    status, health = request(f"{server.url}/healthz")
    assert status == 200
    assert health["status"] == "ok"
    assert health["workers"] == 2
    assert health["queue_depth"] == 0


def test_metrics_exports_prometheus_text(server):
    _, record = request(f"{server.url}/v1/jobs", "POST", payload())
    wait_for_state(server.url, record["id"])
    req = urllib.request.Request(f"{server.url}/metrics")
    with urllib.request.urlopen(req, timeout=10) as response:
        assert response.status == 200
        assert response.headers["Content-Type"].startswith("text/plain")
        text = response.read().decode("utf-8")
    assert "serve_jobs_accepted_total" in text
    assert "serve_queue_depth" in text
    assert "serve_job_seconds_bucket" in text


# ----------------------------------------------------------------------
# Backpressure and drain
# ----------------------------------------------------------------------


def test_full_queue_answers_429_with_retry_after():
    block = threading.Event()

    def gated(job):
        block.wait(30)
        return stub_evaluation(job.label)

    service = EvaluationService(
        ServiceConfig(workers=1, max_queue_depth=1, coalesce=False,
                      static_check=False, batch_size=1),
        evaluate_fn=gated,
    )
    server, _ = serve_in_thread(service)
    try:
        url = f"{server.url}/v1/jobs"
        assert request(url, "POST", payload())[0] == 202
        time.sleep(0.1)  # worker takes the first job off the queue
        assert request(url, "POST", payload())[0] == 202
        req = urllib.request.Request(
            url, data=json.dumps(payload()).encode(), method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(req, timeout=10)
        assert info.value.code == 429
        assert info.value.headers["Retry-After"] == "1"
    finally:
        block.set()
        server.shutdown_service(drain=False, timeout=2.0)


def test_draining_service_answers_503():
    service = EvaluationService(
        ServiceConfig(workers=1, static_check=False),
        evaluate_fn=instant_eval,
    )
    server, thread = serve_in_thread(service)
    try:
        # drain the service but keep HTTP up: submissions and health
        # both answer 503 so clients know to go elsewhere
        service.shutdown(drain=True, timeout=10.0)
        status, health = request(f"{server.url}/healthz")
        assert status == 503
        assert health["status"] == "draining"
        status, record = request(f"{server.url}/v1/jobs", "POST",
                                 payload())
        assert status == 503
        assert "draining" in record["error"]
    finally:
        server.shutdown()
        thread.join(timeout=10)
    assert not thread.is_alive()
