"""The blocking client and the ``repro-serve`` console script."""

import json
import threading
import time

import pytest

from repro.serve import (
    BackpressureError,
    EvaluationService,
    ServeClient,
    ServeClientError,
    ServiceConfig,
    serve_in_thread,
)
from repro.serve.cli import main as cli_main

from .conftest import instant_eval, payload, stub_evaluation


@pytest.fixture(scope="module")
def live():
    """One shared server for the read-mostly client/CLI tests."""
    service = EvaluationService(
        ServiceConfig(workers=2, static_check=True, batch_size=1),
        evaluate_fn=instant_eval,
    )
    server, _ = serve_in_thread(service)
    yield server
    server.shutdown_service(drain=False, timeout=2.0)


# ----------------------------------------------------------------------
# ServeClient
# ----------------------------------------------------------------------


def test_submit_and_wait_round_trip(live):
    client = ServeClient(live.url)
    record = client.submit_and_wait(payload(label="round-trip"))
    assert record["state"] == "succeeded"
    assert record["label"] == "round-trip"
    assert record["result"]["feasible"] is True


def test_rejected_submission_returns_the_record_not_an_exception(live):
    client = ServeClient(live.url)
    record = client.submit({"isdl": "processor oops {"})
    assert record["state"] == "rejected"
    assert record["diagnostics"][0]["code"] == "ISDL001"


def test_client_surfaces_protocol_errors(live):
    client = ServeClient(live.url)
    with pytest.raises(ServeClientError) as info:
        client.submit({"arch": "no-such-arch"})
    assert info.value.status == 400
    with pytest.raises(ServeClientError) as info:
        client.job("deadbeef")
    assert info.value.status == 404


def test_client_health_and_metrics(live):
    client = ServeClient(live.url)
    health = client.health()
    assert health["status"] == "ok"
    assert "serve_jobs_accepted_total" in client.metrics_text()


def test_client_submit_strategy_kwarg_injects_the_payload_field(live):
    client = ServeClient(live.url)
    record = client.submit_and_wait(
        payload(), strategy="greedy",
        strategy_params={"max_iterations": 2},
    )
    assert record["state"] == "succeeded"
    assert record["strategy"] == {
        "name": "greedy", "params": {"max_iterations": 2},
    }


def test_client_submit_unknown_strategy_returns_rejected_record(live):
    client = ServeClient(live.url)
    record = client.submit(payload(), strategy="annealing")
    assert record["state"] == "rejected"
    assert record["diagnostics"][0]["code"] == "SRV401"
    assert "greedy" in record["diagnostics"][0]["message"]


def test_client_strategy_params_without_name_raise(live):
    client = ServeClient(live.url)
    with pytest.raises(ServeClientError):
        client.submit(payload(), strategy_params={"restarts": 2})


def test_unreachable_server_raises_transport_error():
    client = ServeClient("http://127.0.0.1:9", timeout=0.5)
    with pytest.raises(ServeClientError):
        client.health()


def test_backpressure_retries_then_raises():
    block = threading.Event()

    def gated(job):
        block.wait(30)
        return stub_evaluation(job.label)

    service = EvaluationService(
        ServiceConfig(workers=1, max_queue_depth=1, coalesce=False,
                      static_check=False, batch_size=1),
        evaluate_fn=gated,
    )
    server, _ = serve_in_thread(service)
    try:
        client = ServeClient(server.url)
        client.submit(payload())          # occupies the worker
        time.sleep(0.1)
        client.submit(payload())          # fills the queue
        with pytest.raises(BackpressureError) as info:
            client.submit(payload(), max_retries=2, backoff_s=0.01)
        assert info.value.status == 429
    finally:
        block.set()
        server.shutdown_service(drain=False, timeout=2.0)


# ----------------------------------------------------------------------
# repro-serve CLI (in-process against the live server)
# ----------------------------------------------------------------------


def test_cli_submit_waits_and_exits_zero(live, capsys):
    code = cli_main([
        "submit", "--url", live.url, "--arch", "spam2",
        "--workload", "sum:8", "--label", "cli-job",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "succeeded" in out
    assert "cli-job" in out


def test_cli_submit_json_output_parses(live, capsys):
    code = cli_main([
        "submit", "--url", live.url, "--arch", "spam2", "--json",
    ])
    assert code == 0
    record = json.loads(capsys.readouterr().out)
    assert record["state"] == "succeeded"


def test_cli_submit_rejected_isdl_exits_two(live, capsys, tmp_path):
    bad = tmp_path / "bad.isdl"
    bad.write_text("processor oops {", encoding="utf-8")
    code = cli_main(["submit", "--url", live.url, "--isdl", str(bad)])
    out = capsys.readouterr().out
    assert code == 2
    assert "rejected" in out
    assert "ISDL001" in out


def test_cli_submit_ambiguous_example_prints_gate_findings(live, capsys):
    code = cli_main([
        "submit", "--url", live.url, "--isdl", "examples/ambiguous.isdl",
    ])
    out = capsys.readouterr().out
    assert code == 2
    assert "ISDL" in out  # the repro-lint diagnostic codes


def test_cli_submit_unreadable_file_exits_one(live, capsys, tmp_path):
    code = cli_main([
        "submit", "--url", live.url, "--isdl",
        str(tmp_path / "missing.isdl"),
    ])
    assert code == 1
    assert "cannot read" in capsys.readouterr().err


def test_cli_submit_bad_weights_is_a_usage_error(live):
    with pytest.raises(SystemExit):
        cli_main(["submit", "--url", live.url, "--arch", "spam2",
                  "--weights", "1,2"])


def test_cli_submit_strategy_flag_passes_through(live, capsys):
    code = cli_main([
        "submit", "--url", live.url, "--arch", "spam2",
        "--strategy", "greedy",
        "--strategy-param", "max_iterations=2",
        "--json",
    ])
    assert code == 0
    record = json.loads(capsys.readouterr().out)
    assert record["strategy"] == {
        "name": "greedy", "params": {"max_iterations": 2},
    }


def test_cli_submit_unknown_strategy_exits_two(live, capsys):
    code = cli_main([
        "submit", "--url", live.url, "--arch", "spam2",
        "--strategy", "annealing",
    ])
    out = capsys.readouterr().out
    assert code == 2
    assert "SRV401" in out


def test_cli_strategy_param_without_strategy_is_a_usage_error(live):
    with pytest.raises(SystemExit):
        cli_main(["submit", "--url", live.url, "--arch", "spam2",
                  "--strategy-param", "restarts=2"])


def test_cli_status_prints_health_and_counters(live, capsys):
    cli_main(["submit", "--url", live.url, "--arch", "spam2"])
    capsys.readouterr()
    code = cli_main(["status", "--url", live.url])
    out = capsys.readouterr().out
    assert code == 0
    assert "status: ok" in out
    assert "serve.jobs_accepted" in out


def test_cli_status_for_one_job(live, capsys):
    record = ServeClient(live.url).submit_and_wait(payload())
    code = cli_main(["status", "--url", live.url, record["id"]])
    out = capsys.readouterr().out
    assert code == 0
    assert record["id"] in out
    assert "succeeded" in out


def test_cli_against_unreachable_server_exits_one(capsys):
    code = cli_main([
        "status", "--url", "http://127.0.0.1:9",
    ])
    assert code == 1
    assert "cannot reach" in capsys.readouterr().err
