"""The durable job journal: fold, corruption tolerance, compaction,
and service-level replay across restarts."""

import json
import os

from repro.serve import EvaluationService, JobJournal, ServiceConfig

from .conftest import instant_eval, payload


def make_journal(tmp_path, **kwargs):
    return JobJournal(str(tmp_path / "journal.jsonl"), **kwargs)


# ----------------------------------------------------------------------
# Fold semantics
# ----------------------------------------------------------------------


def test_admitted_without_result_is_live(tmp_path):
    journal = make_journal(tmp_path)
    journal.admit("j1", {"arch": "spam2"})
    journal.state("j1", "running", attempts=1)
    journal.close()
    terminal, live = make_journal(tmp_path).load()
    assert terminal == {}
    assert live == {"j1": {"arch": "spam2"}}


def test_result_moves_a_job_from_live_to_terminal(tmp_path):
    journal = make_journal(tmp_path)
    journal.admit("j1", {"arch": "spam2"})
    journal.result("j1", {"id": "j1", "state": "succeeded"})
    journal.admit("j2", {"arch": "spam3"})
    journal.close()
    terminal, live = make_journal(tmp_path).load()
    assert terminal == {"j1": {"id": "j1", "state": "succeeded"}}
    assert live == {"j2": {"arch": "spam3"}}


def test_missing_journal_loads_empty(tmp_path):
    terminal, live = make_journal(tmp_path).load()
    assert terminal == {} and live == {}


def test_truncated_final_line_is_skipped(tmp_path):
    """A SIGKILL mid-append leaves a half-written last line; the events
    before it must still replay."""
    journal = make_journal(tmp_path)
    journal.admit("j1", {"arch": "spam2"})
    journal.admit("j2", {"arch": "spam3"})
    journal.close()
    with open(journal.path, "a", encoding="utf-8") as handle:
        handle.write('{"event": "result", "id": "j2", "rec')  # no \n
    reader = make_journal(tmp_path)
    terminal, live = reader.load()
    assert set(live) == {"j1", "j2"}
    assert reader.corrupt_lines == 1


def test_append_failure_counts_dropped_not_raises(tmp_path):
    journal = JobJournal(str(tmp_path / "journal.jsonl"))
    journal.admit("j1", {"ok": True})
    # swap the path for an unwritable location mid-flight
    journal.close()
    journal.path = str(tmp_path)  # a directory: open(...'a') fails
    journal.admit("j2", {"ok": False})
    assert journal.dropped == 1


# ----------------------------------------------------------------------
# Compaction
# ----------------------------------------------------------------------


def test_compact_keeps_only_recent_terminal_records(tmp_path):
    journal = make_journal(tmp_path, keep_terminal=2)
    for index in range(5):
        job_id = f"j{index}"
        journal.admit(job_id, {"n": index})
        journal.state(job_id, "running")
        journal.result(job_id, {"id": job_id, "state": "succeeded"})
    terminal, live = journal.load()
    assert len(terminal) == 5 and not live
    journal.compact(terminal.values())
    lines = open(journal.path, encoding="utf-8").readlines()
    assert len(lines) == 2
    kept = [json.loads(line)["id"] for line in lines]
    assert kept == ["j3", "j4"]
    # the append handle reopened on the compacted file
    journal.admit("fresh", {"n": 99})
    journal.close()
    terminal, live = make_journal(tmp_path).load()
    assert set(terminal) == {"j3", "j4"} and set(live) == {"fresh"}


# ----------------------------------------------------------------------
# Service-level replay
# ----------------------------------------------------------------------


def service_config(tmp_path, **overrides):
    config = dict(workers=2, static_check=False, batch_size=1,
                  data_dir=str(tmp_path / "shard"), shard_id="s0")
    config.update(overrides)
    return ServiceConfig(**config)


def test_terminal_jobs_resolve_after_restart(tmp_path):
    first = EvaluationService(service_config(tmp_path),
                              evaluate_fn=instant_eval).start()
    job_id = first.submit(payload()).id
    assert job_id.startswith("s0-")
    assert first.wait(job_id, timeout=10.0).state.value == "succeeded"
    first.shutdown(drain=True, timeout=5.0)

    second = EvaluationService(service_config(tmp_path),
                               evaluate_fn=instant_eval).start()
    try:
        restored = second.job(job_id).to_dict()
        assert restored["state"] == "succeeded"
        assert restored["restored"] is True
        assert restored["result"]["cycles"] == 100
    finally:
        second.shutdown(drain=False, timeout=2.0)


def test_live_jobs_replay_with_their_original_ids(tmp_path):
    """An accepted-but-unfinished job (a crash, not a drain) is re-run
    under the same id on the next start."""
    config = service_config(tmp_path)
    first = EvaluationService(config, evaluate_fn=instant_eval)
    # simulate a crash: journal an admission, never process it
    first.journal.admit("s0-deadbeef00000000", payload())
    first.journal.close()

    second = EvaluationService(service_config(tmp_path),
                               evaluate_fn=instant_eval).start()
    try:
        record = second.wait("s0-deadbeef00000000", timeout=10.0)
        assert record.state.value == "succeeded"
        snapshot = second.metrics.snapshot()
        assert snapshot.counters.get("serve.jobs_replayed") == 1
    finally:
        second.shutdown(drain=False, timeout=2.0)


def test_drained_jobs_are_not_replayed(tmp_path):
    """A graceful drain cancels queued jobs terminally — a restart must
    not resurrect them (only a crash leaves live entries)."""
    import threading

    release = threading.Event()

    def gated_eval(job):
        release.wait(5.0)
        return instant_eval(job)

    first = EvaluationService(service_config(tmp_path, workers=1),
                              evaluate_fn=gated_eval).start()
    blocker = first.submit(payload()).id
    queued = first.submit(payload(priority=-1,
                                  workloads=["dot:8"])).id
    release.set()
    first.wait(blocker, timeout=10.0)
    first.shutdown(drain=True, timeout=5.0)
    # the queued job was either finished or cancelled by the drain;
    # either way it is terminal in the journal
    second = EvaluationService(service_config(tmp_path),
                               evaluate_fn=instant_eval).start()
    try:
        record = second.job(queued).to_dict()
        assert record["state"] in ("succeeded", "cancelled")
        counters = second.metrics.snapshot().counters
        assert counters.get("serve.jobs_replayed", 0) == 0
    finally:
        second.shutdown(drain=False, timeout=2.0)


def test_journal_compacts_on_startup(tmp_path):
    config = service_config(tmp_path, journal_keep_terminal=3)
    first = EvaluationService(config, evaluate_fn=instant_eval).start()
    ids = []
    for index in range(5):
        job = first.submit(payload(workloads=[f"sum:{8 + index}"]))
        ids.append(job.id)
    for job_id in ids:
        first.wait(job_id, timeout=10.0)
    first.shutdown(drain=True, timeout=5.0)

    second = EvaluationService(service_config(
        tmp_path, journal_keep_terminal=3),
        evaluate_fn=instant_eval).start()
    try:
        journal_path = os.path.join(config.data_dir, "journal.jsonl")
        lines = open(journal_path, encoding="utf-8").readlines()
        # compacted to at most keep_terminal result lines
        assert 0 < len(lines) <= 3
    finally:
        second.shutdown(drain=False, timeout=2.0)
