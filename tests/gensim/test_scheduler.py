"""Tests for the scheduler: sequencing, stalls, latency, breakpoints."""

import pytest

from repro.arch import prepare
from repro.arch.workloads import risc16_sum_loop
from repro.errors import SimulationError
from repro.gensim.xsim import XSim


def load(sim, source):
    from repro.asm import Assembler

    program = Assembler(sim.desc).assemble(source)
    sim.load_words(program.words, program.origin)
    return program


@pytest.fixture
def sim(risc16_desc):
    return XSim(risc16_desc)


def test_step_executes_one_instruction(sim):
    load(sim, "ldi r0, #5\nhalt\n")
    assert sim.step()
    assert sim.cycle == 1
    # the write is pending until the next commit point
    sim.step()
    assert sim.read("RF", 0) == 5


def test_run_to_completion_drains_writes(sim):
    load(sim, "ldi r0, #5\nhalt\n")
    stats = sim.run_to_completion()
    assert sim.read("RF", 0) == 5
    assert sim.halted
    assert stats.instructions == 2


def test_pc_advances_by_default(sim):
    load(sim, "nop\nnop\nhalt\n")
    sim.step()
    sim.step()
    assert sim.state.pc == 2


def test_branch_overrides_pc(sim):
    load(sim, "jmp 3\nnop\nnop\nhalt\n")
    sim.run_to_completion()
    assert sim.stats.instructions == 2  # jmp + halt


def test_conditional_branch_taken_and_not(sim):
    source = """
        ldi r0, #1
        cmp r0, #1
        beq over - .
        ldi r1, #99
over:   halt
"""
    load(sim, source)
    sim.run_to_completion()
    assert sim.read("RF", 1) == 0  # skipped


def test_cycle_costs_accumulate(sim):
    load(sim, "ld r0, (r1)\nst (r1), r0\nhalt\n")
    # ld cost 2 + st cost 2 + halt 1, plus 1 stall (ld->st, latency 2... no:
    # risc16 ops are latency 1, so no stalls).
    sim.run_to_completion()
    assert sim.stats.cycles == 5
    assert sim.stats.stall_cycles == 0


def test_max_steps_raises(sim):
    load(sim, "loop: jmp loop\n")
    with pytest.raises(SimulationError):
        sim.run_to_completion(max_steps=100)


def test_run_stops_at_breakpoint(sim):
    load(sim, "nop\nnop\nnop\nhalt\n")
    sim.set_breakpoint(2)
    assert sim.run().halt_reason == "breakpoint"
    assert sim.state.pc == 2
    assert sim.run().halt_reason == "halted"


def test_breakpoint_attached_commands_dispatch(sim):
    load(sim, "nop\nnop\nhalt\n")
    sim.set_breakpoint(1, commands=["print RF", "trace on"])
    seen = []
    sim.scheduler.command_dispatcher = seen.append
    sim.run()
    assert seen == ["print RF", "trace on"]


def test_disabled_breakpoint_is_skipped(sim):
    load(sim, "nop\nnop\nhalt\n")
    bp = sim.set_breakpoint(1)
    bp.enabled = False
    assert sim.run().halt_reason == "halted"


def test_clear_breakpoint(sim):
    load(sim, "nop\nhalt\n")
    sim.set_breakpoint(1)
    sim.clear_breakpoint(1)
    assert sim.run().halt_reason == "halted"


def test_reset_restores_pc_and_counters(sim):
    load(sim, "ldi r0, #5\nhalt\n")
    sim.run_to_completion()
    cycles = sim.cycle
    assert cycles > 0
    sim.write("HALTED", 0)
    sim.reset()
    assert sim.cycle == 0
    assert sim.state.pc == 0
    sim.run_to_completion()
    assert sim.cycle == cycles


def test_executing_past_program_end_raises(sim):
    load(sim, "nop\n")  # never halts; runs off the end
    with pytest.raises(SimulationError):
        sim.run(max_steps=10)


def test_program_too_large_raises(risc16_desc):
    sim = XSim(risc16_desc)
    with pytest.raises(SimulationError):
        sim.load_words([0] * 2000)


def test_latency_delays_visibility():
    """A latency-2 write is invisible to the immediately next instruction
    unless the static stall analysis inserts a wait."""
    from repro.isdl import load_string

    desc = load_string('''
processor "LAT"
section format
    word 8
end
section storage
    instruction_memory IM width 8 depth 16
    register A width 8
    register B width 8
    control_register HALTED width 1
    program_counter PC width 4
end
section instruction_set
    field EX
        operation seta()
            encoding { bits[7:4] = 0b0001 }
            action { A <- 5; }
            cost cycle 1 stall 0
            timing latency 2
        operation copy()
            encoding { bits[7:4] = 0b0010 }
            action { B <- A; }
        operation nop()
            encoding { bits[7:4] = 0b0000 }
        operation halt()
            encoding { bits[7:4] = 0b1111 }
            action { HALTED <- 1; }
    end
end
section optional
    attribute halt_flag "HALTED"
end
''')
    sim = XSim(desc)
    words = [0b0001_0000, 0b0010_0000, 0b1111_0000]
    program = sim.load_words(words)
    # stall cap is 0 (stall cost 0), so no stall is inserted and the copy
    # sees the OLD value of A.
    assert program.stalls == [0, 0, 0]
    sim.run_to_completion()
    assert sim.read("B") == 0
    assert sim.read("A") == 5


def test_stall_cost_inserts_wait_and_fixes_value():
    from repro.isdl import load_string

    desc = load_string('''
processor "LAT2"
section format
    word 8
end
section storage
    instruction_memory IM width 8 depth 16
    register A width 8
    register B width 8
    control_register HALTED width 1
    program_counter PC width 4
end
section instruction_set
    field EX
        operation seta()
            encoding { bits[7:4] = 0b0001 }
            action { A <- 5; }
            cost cycle 1 stall 1
            timing latency 2
        operation copy()
            encoding { bits[7:4] = 0b0010 }
            action { B <- A; }
        operation halt()
            encoding { bits[7:4] = 0b1111 }
            action { HALTED <- 1; }
    end
end
section optional
    attribute halt_flag "HALTED"
end
''')
    sim = XSim(desc)
    program = sim.load_words([0b0001_0000, 0b0010_0000, 0b1111_0000])
    assert program.stalls == [0, 1, 0]
    sim.run_to_completion()
    assert sim.read("B") == 5
    assert sim.stats.stall_cycles == 1
    assert sim.stats.cycles == 4  # 3 instructions + 1 stall


def test_stats_track_op_counts_and_utilization(risc16_desc):
    sim, _ = prepare(risc16_sum_loop(5))
    sim.run_to_completion()
    stats = sim.stats
    assert stats.op_counts[("EX", "add")] == 5
    assert stats.op_counts[("EX", "sub")] == 5
    assert stats.op_counts[("EX", "halt")] == 1
    util = stats.field_utilization(risc16_desc)
    assert 0.9 < util["EX"] <= 1.0
    assert ("EX", "jal") in stats.unused_operations(risc16_desc)
    assert stats.cpi >= 1.0
    report = stats.report(risc16_desc)
    assert "cycles" in report and "EX" in report
