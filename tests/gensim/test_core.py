"""Tests for the processing core's two-phase, bit-true semantics (§3.3.3)."""

import pytest

from repro.errors import SimulationError
from repro.gensim.core import INTRINSIC_IMPLS, ProcessingCore
from repro.gensim.state import State
from repro.isdl import load_string

SWAP_ISDL = '''
processor "SWAP"
section format
    word 8
end
section global_definitions
    token REG prefix "R" range 0 .. 3
end
section storage
    instruction_memory IM width 8 depth 8
    register_file RF width 8 depth 4
    register ACC width 8
    control_register F width 1
    program_counter PC width 3
end
section instruction_set
    field EX
        operation swap(a: REG, b: REG)
            encoding { bits[7:4] = 0b0001; bits[3:2] = a; bits[1:0] = b }
            action { RF[a] <- RF[b]; RF[b] <- RF[a]; }
        operation addf(a: REG, b: REG)
            encoding { bits[7:4] = 0b0010; bits[3:2] = a; bits[1:0] = b }
            action { RF[a] <- RF[a] + RF[b]; ACC <- RF[a]; }
            side_effect { F <- 1; ACC <- 7; }
        operation slowmul(a: REG, b: REG)
            encoding { bits[7:4] = 0b0011; bits[3:2] = a; bits[1:0] = b }
            action { RF[a] <- RF[a] * RF[b]; }
            cost cycle 2 stall 2
            timing latency 3
        operation condset(a: REG, b: REG)
            encoding { bits[7:4] = 0b0100; bits[3:2] = a; bits[1:0] = b }
            action { if RF[b] == 0 { RF[a] <- 1; } else { RF[a] <- 2; } }
    end
end
'''


@pytest.fixture(scope="module")
def swap_desc():
    return load_string(SWAP_ISDL)


def execute(desc, state, op_name, operands):
    core = ProcessingCore(desc)
    op = desc.operation("EX", op_name)
    return core.execute(state, [(op, operands)])


def commit(state, result):
    for write in result.action_writes + result.side_effect_writes:
        state.write(write.storage, write.value, write.index, write.hi,
                    write.lo)


def test_read_before_write_enables_swap(swap_desc):
    state = State(swap_desc)
    state.write("RF", 11, 0)
    state.write("RF", 22, 1)
    result = execute(swap_desc, state, "swap", {"a": 0, "b": 1})
    commit(state, result)
    assert state.read("RF", 0) == 22
    assert state.read("RF", 1) == 11


def test_action_reads_see_pre_cycle_state(swap_desc):
    state = State(swap_desc)
    state.write("RF", 5, 0)
    state.write("RF", 3, 1)
    result = execute(swap_desc, state, "addf", {"a": 0, "b": 1})
    commit(state, result)
    # ACC <- RF[a] uses the OLD RF[a] (5), not the sum (8).
    assert state.read("RF", 0) == 8
    assert state.read("ACC") == 7  # side effect overrides action write


def test_side_effects_commit_after_actions(swap_desc):
    state = State(swap_desc)
    result = execute(swap_desc, state, "addf", {"a": 0, "b": 1})
    assert [w.storage for w in result.action_writes] == ["RF", "ACC"]
    assert [w.storage for w in result.side_effect_writes] == ["F", "ACC"]


def test_latency_becomes_write_delay(swap_desc):
    state = State(swap_desc)
    result = execute(swap_desc, state, "slowmul", {"a": 0, "b": 1})
    assert result.action_writes[0].delay == 2  # latency 3


def test_cycle_cost_propagates(swap_desc):
    state = State(swap_desc)
    result = execute(swap_desc, state, "slowmul", {"a": 0, "b": 1})
    assert result.cycles == 2


def test_conditional_branches_choose_arm(swap_desc):
    state = State(swap_desc)
    result = execute(swap_desc, state, "condset", {"a": 0, "b": 1})
    commit(state, result)
    assert state.read("RF", 0) == 1
    state.write("RF", 9, 1)
    result = execute(swap_desc, state, "condset", {"a": 0, "b": 1})
    commit(state, result)
    assert state.read("RF", 0) == 2


def test_vliw_ops_all_read_old_state(risc16_desc):
    # Not a real VLIW arch, but execute() accepts several selections at
    # once; both must read pre-cycle state.
    state = State(risc16_desc)
    state.write("RF", 10, 0)
    core = ProcessingCore(risc16_desc)
    add = risc16_desc.operation("EX", "add")
    result = core.execute(
        state,
        [
            (add, {"d": 1, "a": 0, "b": ("imm", {"v": 1})}),
            (add, {"d": 2, "a": 0, "b": ("imm", {"v": 2})}),
        ],
    )
    commit(state, result)
    assert state.read("RF", 1) == 11
    assert state.read("RF", 2) == 12


def test_nt_action_evaluated_once_per_execution(acc8_desc):
    # 'add (X)+' reads DM[X] and post-increments X exactly once even
    # though the action references the operand value.
    state = State(acc8_desc)
    state.write("DM", 42, 0)
    core = ProcessingCore(acc8_desc)
    add = acc8_desc.operation("OP", "add")
    result = core.execute(state, [(add, {"m": ("postinc", {})})])
    commit(state, result)
    assert state.read("ACC") == 42
    assert state.read("X") == 1
    x_writes = [w for w in result.side_effect_writes if w.storage == "X"]
    assert len(x_writes) == 1


def test_division_by_zero_raises(swap_desc):
    state = State(swap_desc)
    core = ProcessingCore(swap_desc)
    from repro.isdl import rtl

    with pytest.raises(SimulationError):
        core._run_block(
            state,
            (rtl.Assign(rtl.StorageLV("ACC"),
                        rtl.BinOp("/", rtl.IntLit(1), rtl.IntLit(0))),),
            {}, [], 0, type("R", (), {"action_writes": []})(),
        )


# ---------------------------------------------------------------------------
# Intrinsic implementations
# ---------------------------------------------------------------------------


def test_carry_borrow_overflow():
    carry = INTRINSIC_IMPLS["carry"]
    borrow = INTRINSIC_IMPLS["borrow"]
    overflow = INTRINSIC_IMPLS["overflow"]
    assert carry(0xFFFF, 1, 16) == 1
    assert carry(0x7FFF, 1, 16) == 0
    assert borrow(0, 1, 16) == 1
    assert borrow(5, 3, 16) == 0
    assert overflow(0x7FFF, 1, 16) == 1  # +32767 + 1 overflows signed
    assert overflow(1, 1, 16) == 0
    assert overflow(0x8000, 0xFFFF, 16) == 1  # -32768 + -1


def test_sext_zext_bit_slice():
    assert INTRINSIC_IMPLS["sext"](0x80, 8) == -128
    assert INTRINSIC_IMPLS["sext"](0x7F, 8) == 127
    assert INTRINSIC_IMPLS["zext"](-1, 8) == 0xFF
    assert INTRINSIC_IMPLS["bit"](0b1010, 3) == 1
    assert INTRINSIC_IMPLS["slice"](0xABCD, 11, 4) == 0xBC


def test_trunc_division_semantics():
    from repro.gensim.core import _BINOPS

    assert _BINOPS["/"](7, 2) == 3
    assert _BINOPS["/"](-7, 2) == -3  # truncates toward zero
    assert _BINOPS["%"](-7, 2) == -1
    assert _BINOPS["%"](7, -2) == 1
