"""Tests for control-flow analysis and basic-block discovery."""

import pytest

from repro.arch import description_for
from repro.arch.workloads import risc16_sum_loop
from repro.asm import Assembler
from repro.gensim.cfg import (
    MAX_BLOCK_LEN,
    BasicBlock,
    ControlFlowAnalyzer,
    block_span,
    static_blocks,
)
from repro.gensim.disassembler import (
    DecodedInstruction,
    DecodedOperation,
    Disassembler,
)


def _flows(desc, source):
    program = Assembler(desc).assemble(source)
    disasm = Disassembler(desc)
    decoded = [disasm.disassemble(word) for word in program.words]
    analyzer = ControlFlowAnalyzer(desc)
    return analyzer.flows_for_program(decoded), analyzer, decoded


# ---------------------------------------------------------------------------
# Per-instruction classification
# ---------------------------------------------------------------------------


def test_risc16_flow_classification(risc16_desc):
    source = """
        add r1, r2, r3
loop:   bne loop - .
        jmp loop
        halt
"""
    flows, _, _ = _flows(risc16_desc, source)
    add, bne, jmp, halt = flows

    assert not add.writes_pc and not add.writes_halt
    assert "RF" in add.storages

    assert bne.writes_pc and bne.conditional_pc

    assert jmp.writes_pc and not jmp.conditional_pc

    assert halt.writes_halt
    assert not halt.writes_pc

    for flow in flows:
        assert not flow.writes_imem
        assert not flow.unresolved
        assert flow.size == 1


def test_flow_sees_through_halt_alias(risc16_desc):
    """halt sets the flag through whatever name the description uses —
    the analyzer must resolve aliases to the same base storage."""
    flows, analyzer, _ = _flows(risc16_desc, "halt\n")
    assert flows[0].writes_halt
    halt_name = risc16_desc.attributes["halt_flag"]
    assert analyzer._alias_base(halt_name) in flows[0].storages


def test_flow_latency_and_storage_sets(spam_desc):
    flows, _, _ = _flows(spam_desc, "fmul r1, r2, r3\nhalt\n")
    fmul = flows[0]
    assert fmul.max_latency >= 3  # SPAM's pipelined multiplier
    assert "RF" in fmul.storages


def test_flow_results_are_cached(risc16_desc):
    _, analyzer, decoded = _flows(
        risc16_desc, "add r1, r2, r3\nadd r1, r2, r3\nhalt\n"
    )
    first = analyzer.flow(decoded[0])
    second = analyzer.flow(decoded[1])
    assert first is second  # identical words share one cache entry


# ---------------------------------------------------------------------------
# Block discovery
# ---------------------------------------------------------------------------


def test_block_span_stops_at_terminator(risc16_desc):
    flows, _, _ = _flows(risc16_desc, """
        ldi r0, #3
        ldi r1, #0
loop:   add r1, r1, r0
        sub r0, r0, #1
        bne loop - .
        halt
""")
    assert block_span(flows, 0) == (0, 1, 2, 3, 4)  # ends at bne
    assert block_span(flows, 2) == (2, 3, 4)        # branch target mid-block
    assert block_span(flows, 5) == (5,)             # halt runs to program end


def test_block_span_out_of_range_or_hole(risc16_desc):
    flows, _, _ = _flows(risc16_desc, "halt\n")
    assert block_span(flows, 99) == ()
    assert block_span(flows, -1) == ()
    assert block_span(flows + [None], 1) == ()


def test_block_span_respects_length_cap(risc16_desc):
    body = "nop\n" * (MAX_BLOCK_LEN + 6) + "halt\n"
    flows, _, _ = _flows(risc16_desc, body)
    span = block_span(flows, 0)
    assert len(span) == MAX_BLOCK_LEN
    # the tail is a fresh block starting where the cap split
    tail = block_span(flows, span[-1] + 1)
    assert tail[-1] == MAX_BLOCK_LEN + 6  # the halt


def test_static_blocks_partition_sum_loop(risc16_desc):
    workload = risc16_sum_loop(5)
    flows, _, _ = _flows(risc16_desc, workload.source)
    blocks = static_blocks(flows)
    # prologue+loop (ends at bne), epilogue (st; halt — runs off the end)
    assert [b.start for b in blocks] == [0, 6]
    assert blocks[0].ends_in_branch
    assert not blocks[1].ends_in_branch
    covered = [off for b in blocks for off in b.offsets]
    assert covered == sorted(set(covered))  # static view never overlaps
    assert covered == list(range(len(flows)))


def test_static_blocks_on_last_program_word(risc16_desc):
    """A block whose terminator is the final word must not run past the
    program (regression guard for the dispatch loop's bounds check)."""
    flows, _, _ = _flows(risc16_desc, "ldi r1, #1\nloop: jmp loop\n")
    blocks = static_blocks(flows)
    assert blocks == [
        BasicBlock(start=0, offsets=(0, 1), ends_in_branch=True)
    ]


def test_basic_block_len(risc16_desc):
    block = BasicBlock(start=0, offsets=(0, 1, 2), ends_in_branch=False)
    assert len(block) == 3


# ---------------------------------------------------------------------------
# Cap truncation and fall-through successors
# ---------------------------------------------------------------------------


def test_capped_block_reports_artificial_fall_through(risc16_desc):
    """A block split by the length cap did not really end: it must carry
    capped=True and name the tail as its artificial successor."""
    body = "nop\n" * (MAX_BLOCK_LEN + 6) + "halt\n"
    flows, _, _ = _flows(risc16_desc, body)
    blocks = static_blocks(flows)
    first = blocks[0]
    assert first.capped
    assert not first.ends_in_branch
    assert first.fall_through == MAX_BLOCK_LEN
    assert blocks[1].start == first.fall_through
    assert not blocks[1].capped  # the tail ends at the real program end


def test_conditional_branch_block_has_fall_through(risc16_desc):
    flows, _, _ = _flows(risc16_desc, """
        ldi r0, #3
loop:   sub r0, r0, #1
        bne loop - .
        halt
""")
    blocks = {b.start: b for b in static_blocks(flows)}
    branch = blocks[0]
    assert branch.ends_in_branch and not branch.capped
    assert branch.fall_through == 3  # the not-taken successor
    assert blocks[3].fall_through is None  # halt: program ends


def test_unconditional_branch_block_has_no_fall_through(risc16_desc):
    flows, _, _ = _flows(risc16_desc, "ldi r1, #1\nloop: jmp loop\nhalt\n")
    blocks = static_blocks(flows)
    assert blocks[0].ends_in_branch
    assert blocks[0].fall_through is None  # jmp never falls through


def test_fall_through_none_past_program_end(risc16_desc):
    flows, _, _ = _flows(risc16_desc, "nop\nhalt\n")
    (block,) = static_blocks(flows)
    assert not block.capped and not block.ends_in_branch
    assert block.fall_through is None


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------


def _reversed_operands(operands):
    out = {}
    for name in reversed(list(operands)):
        value = operands[name]
        if isinstance(value, tuple):  # NT binding: (label, sub-operands)
            label, sub = value
            value = (label, _reversed_operands(sub))
        out[name] = value
    return out


def test_static_blocks_deterministic_under_operand_order(risc16_desc):
    """Flow facts and the block partition are functions of the decoded
    program, not of operand-dict insertion order."""
    workload = risc16_sum_loop(5)
    flows, analyzer, decoded = _flows(risc16_desc, workload.source)
    shuffled = [
        DecodedInstruction(
            word=d.word,
            operations=tuple(
                DecodedOperation(op.field, op.op_name,
                                 _reversed_operands(op.operands))
                for op in reversed(d.operations)
            ),
        )
        for d in decoded
    ]
    reordered = ControlFlowAnalyzer(risc16_desc).flows_for_program(shuffled)
    assert reordered == flows
    assert static_blocks(reordered) == static_blocks(flows)
    # the per-instruction cache key is order-insensitive too
    assert analyzer.flow(shuffled[0]) is analyzer.flow(decoded[0])
