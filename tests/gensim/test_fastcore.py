"""Tests for the generated processing core (FastCore).

The compiled per-operation routines must be observably identical to the
reference interpretive core: same cycles, same state, same monitor
behaviour — only faster.
"""

import pytest

from repro.arch import (
    ARCHITECTURES,
    all_workloads,
    description_for,
)
from repro.asm import Assembler
from repro.gensim.core import ProcessingCore
from repro.gensim.fastcore import FastCore
from repro.gensim.state import State
from repro.gensim.xsim import XSim

CASES = [(w.arch, w) for w in all_workloads()]


def run_with(core, workload):
    desc = description_for(workload.arch)
    sim = XSim(desc, core=core)
    for storage, contents in workload.preload.items():
        for index, value in contents.items():
            sim.write(storage, value, index)
    program = Assembler(desc).assemble(workload.source)
    sim.load_words(program.words, program.origin)
    sim.run_to_completion()
    return sim


@pytest.mark.parametrize(
    "arch,workload", CASES, ids=[f"{a}-{w.name}" for a, w in CASES]
)
def test_generated_core_matches_interpretive(arch, workload):
    generated = run_with("generated", workload)
    interpretive = run_with("interpretive", workload)
    assert generated.stats.cycles == interpretive.stats.cycles
    assert generated.stats.stall_cycles == interpretive.stats.stall_cycles
    assert generated.state.dump() == interpretive.state.dump()
    assert generated.stats.op_counts == interpretive.stats.op_counts


def test_monitors_still_fire_with_generated_core(risc16_desc):
    sim = XSim(risc16_desc, core="generated")
    sim.watch("RF", 1)
    program = Assembler(risc16_desc).assemble("ldi r1, #7\nhalt\n")
    sim.load_words(program.words)
    sim.run_to_completion()
    assert any("RF[1]" in m for m in sim.monitor_messages)


def test_unknown_core_name_rejected(risc16_desc):
    with pytest.raises(ValueError):
        XSim(risc16_desc, core="quantum")


def test_routines_are_cached_per_option_combination(spam_desc):
    core = FastCore(spam_desc)
    state = State(spam_desc)
    add = spam_desc.operation("INT", "add")
    reg_operands = {"d": 1, "a": 2, "b": ("reg", {"r": 3})}
    imm_operands = {"d": 1, "a": 2, "b": ("imm", {"v": 7})}
    core.execute(state, [(add, reg_operands)])
    core.execute(state, [(add, dict(reg_operands, d=4))])
    core.execute(state, [(add, imm_operands)])
    # two distinct routines: one per option combination, reused across
    # operand values
    assert len(core._routines) == 2


def test_direct_execute_semantics(risc16_desc):
    core = FastCore(risc16_desc)
    state = State(risc16_desc)
    state.write("RF", 30, 2)
    add = risc16_desc.operation("EX", "add")
    result = core.execute(
        state, [(add, {"d": 1, "a": 2, "b": ("imm", {"v": 12})})]
    )
    assert result.cycles == 1
    writes = result.action_writes
    assert len(writes) == 1
    assert (writes[0].storage, writes[0].index, writes[0].value) == (
        "RF", 1, 42,
    )
    # flags in the side-effect phase
    assert {w.storage for w in result.side_effect_writes} == {"C", "Z", "N"}


def test_nt_side_effect_once_per_execution(acc8_desc):
    core = FastCore(acc8_desc)
    state = State(acc8_desc)
    state.write("DM", 5, 0)
    add = acc8_desc.operation("OP", "add")
    result = core.execute(state, [(add, {"m": ("postinc", {})})])
    x_writes = [w for w in result.side_effect_writes if w.storage == "X"]
    assert len(x_writes) == 1
    assert x_writes[0].value == 1
