"""Tests for the unified Simulator protocol and the XSim.run reconciliation."""

import pytest

from repro.asm import assemble
from repro.gensim import (
    CompiledSimulator,
    RunResult,
    SimulationStats,
    Simulator,
    XSim,
    simulator_for,
)

SOURCE = """
    ldi r1, #5
    ldi r2, #7
    add r3, r1, r2
    halt
"""


@pytest.fixture(scope="module")
def program(risc16_desc):
    return assemble(risc16_desc, SOURCE)


def load(sim, program):
    sim.load_words(program.words, program.origin)
    return sim


# ----------------------------------------------------------------------
# The protocol: both backends conform, code needs no special-casing
# ----------------------------------------------------------------------


def test_backends_satisfy_protocol(risc16_desc):
    assert isinstance(XSim(risc16_desc), Simulator)
    assert isinstance(CompiledSimulator(risc16_desc), Simulator)


def test_simulator_for_backends(risc16_desc):
    assert isinstance(simulator_for(risc16_desc, "xsim"), XSim)
    assert isinstance(
        simulator_for(risc16_desc, "compiled"), CompiledSimulator
    )
    interp = simulator_for(risc16_desc, "interpretive")
    assert isinstance(interp, XSim)
    with pytest.raises(ValueError):
        simulator_for(risc16_desc, "quantum")


@pytest.mark.parametrize("backend", ["xsim", "interpretive", "compiled"])
def test_protocol_run_is_backend_agnostic(risc16_desc, program, backend):
    sim = load(simulator_for(risc16_desc, backend), program)
    stats = sim.run_to_completion()
    assert isinstance(stats, SimulationStats)
    assert stats.cycles > 0
    assert sim.read("RF", 3) == 12
    assert sim.stats.cycles == stats.cycles


def test_backends_agree_cycle_for_cycle(risc16_desc, program):
    runs = {}
    for backend in ("xsim", "compiled"):
        sim = load(simulator_for(risc16_desc, backend), program)
        stats = sim.run_to_completion()
        runs[backend] = (stats.cycles, stats.instructions,
                         sim.read("RF", 3))
    assert runs["xsim"] == runs["compiled"]


def test_compiled_reset_allows_rerun(risc16_desc, program):
    sim = load(simulator_for(risc16_desc, "compiled"), program)
    first = sim.run_to_completion()
    sim.write("HALTED", 0)  # state persists across reset, clear by hand
    sim.reset()
    assert sim.stats.cycles == 0
    second = sim.run_to_completion()
    assert second.cycles == first.cycles
    assert sim.read("RF", 3) == 12


# ----------------------------------------------------------------------
# XSim.run: SimulationStats result + deprecation shim
# ----------------------------------------------------------------------


def test_run_returns_stats_with_halt_reason(risc16_desc, program):
    sim = load(XSim(risc16_desc), program)
    result = sim.run()
    assert isinstance(result, RunResult)
    assert isinstance(result, SimulationStats)
    assert result.halt_reason == "halted"
    assert result.cycles == sim.cycle
    assert result.instructions > 0


def test_run_reports_max_steps(risc16_desc, program):
    sim = load(XSim(risc16_desc), program)
    result = sim.run(max_steps=1)
    assert result.halt_reason == "max_steps"


def test_run_breakpoint_carries_live_cycles(risc16_desc, program):
    sim = load(XSim(risc16_desc), program)
    sim.set_breakpoint(2)
    result = sim.run()
    assert result.halt_reason == "breakpoint"
    assert result.cycles == sim.cycle > 0


def test_string_comparison_is_gone(risc16_desc, program):
    """The ``run() == "halted"`` deprecation shim has been removed; the
    comparison now falls back to default (identity) semantics."""
    sim = load(XSim(risc16_desc), program)
    result = sim.run()
    assert result.halt_reason == "halted"
    assert not (result == "halted")
    assert result != "halted"


def test_run_result_equality_against_stats(risc16_desc, program):
    sim = load(XSim(risc16_desc), program)
    result = sim.run()
    clone = RunResult.from_stats(result, result.halt_reason)
    assert result == clone
    assert result != RunResult.from_stats(result, "breakpoint")


def test_compiled_run_reports_halt_reason(risc16_desc, program):
    sim = load(CompiledSimulator(risc16_desc), program)
    result = sim.run()
    assert result.halt_reason == "halted"


def test_xsim_accepts_prebuilt_core(risc16_desc, program):
    from repro.cache import ArtifactCache

    cache = ArtifactCache()
    core = cache.fast_core(risc16_desc)
    table = cache.signature_table(risc16_desc)
    sim = XSim(risc16_desc, table=table, core=core)
    assert sim.core is core
    assert sim.table is table
    load(sim, program)
    assert sim.run_to_completion().cycles > 0
