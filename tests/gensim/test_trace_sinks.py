"""TraceSink lifecycle: context-manager use and flush-on-close."""

import io

from repro.gensim.trace import (
    FileTrace,
    ListTrace,
    TraceRecord,
    TraceSink,
    open_trace_file,
)

RECORD = TraceRecord(cycle=7, address=0x10, word=0xBEEF, disassembly="add")


def test_base_sink_is_a_context_manager():
    with TraceSink() as sink:
        sink.emit(RECORD)  # ignored, but the protocol holds


def test_list_trace_as_context_manager():
    with ListTrace() as sink:
        sink.emit(RECORD)
    assert sink.records == [RECORD]


def test_file_trace_context_manager_flushes_on_exit():
    stream = io.StringIO()
    with FileTrace(stream) as sink:
        sink.emit(RECORD)
    line = stream.getvalue()
    assert "0x000010" in line and "add" in line
    assert not stream.closed  # close_stream defaults to False


def test_open_trace_file_closes_its_stream(tmp_path):
    path = tmp_path / "trace.txt"
    with open_trace_file(str(path)) as sink:
        sink.emit(RECORD)
        stream = sink._stream
    assert stream.closed
    assert "add" in path.read_text()


def test_exception_inside_with_still_closes(tmp_path):
    path = tmp_path / "trace.txt"
    try:
        with open_trace_file(str(path)) as sink:
            sink.emit(RECORD)
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert "add" in path.read_text()


def test_format_is_the_subclass_extension_point():
    class Custom(FileTrace):
        def format(self, record):
            return f"@{record.address}"

    stream = io.StringIO()
    with Custom(stream) as sink:
        sink.emit(RECORD)
    assert stream.getvalue() == "@16\n"
