"""Tests for the compiled-code simulator (paper §6.2 future work).

The compiled simulator must be indistinguishable from the interpretive XSIM
in cycle counts and final architectural state on every workload.
"""

import pytest

from repro.arch import (
    ARCHITECTURES,
    all_workloads,
    description_for,
    run_workload,
)
from repro.asm import Assembler
from repro.errors import SimulationError
from repro.gensim.compiled import CompiledSimulator

CASES = [(w.arch, w) for w in all_workloads()]


def run_compiled(workload):
    desc = description_for(workload.arch)
    sim = CompiledSimulator(desc)
    for storage, contents in workload.preload.items():
        for index, value in contents.items():
            sim.write(storage, value, index)
    program = Assembler(desc).assemble(workload.source)
    sim.load_words(program.words, program.origin)
    stats = sim.run()
    return sim, stats


@pytest.mark.parametrize(
    "arch,workload", CASES, ids=[f"{a}-{w.name}" for a, w in CASES]
)
def test_matches_interpretive_simulator(arch, workload):
    reference = run_workload(workload)
    compiled, stats = run_compiled(workload)
    assert stats.cycles == reference.stats.cycles
    assert stats.instructions == reference.stats.instructions
    assert stats.stall_cycles == reference.stats.stall_cycles
    desc = description_for(arch)
    for storage in desc.storages.values():
        if storage.addressed:
            for index in range(storage.depth):
                assert compiled.read(storage.name, index) == reference.read(
                    storage.name, index
                ), f"{storage.name}[{index}]"
        else:
            assert compiled.read(storage.name) == reference.read(
                storage.name
            ), storage.name


def test_expected_results_hold(risc16_desc):
    from repro.arch.workloads import risc16_sum_loop

    workload = risc16_sum_loop(12)
    compiled, _ = run_compiled(workload)
    assert compiled.read("DM", 0) == 78


def test_non_halting_program_raises(risc16_desc):
    sim = CompiledSimulator(risc16_desc)
    program = Assembler(risc16_desc).assemble("loop: jmp loop\n")
    sim.load_words(program.words)
    with pytest.raises(SimulationError):
        sim.run(max_steps=100)


def test_compiled_is_faster_than_interpretive():
    """The whole point of the mode (paper §6.2) — measured, not assumed."""
    import time

    from repro.arch import prepare
    from repro.arch.workloads import risc16_dot_product

    workload = risc16_dot_product()

    interp, _ = prepare(workload)
    start = time.perf_counter()
    interp.run_to_completion()
    interp_time = time.perf_counter() - start

    compiled, _ = run_compiled(workload)  # warm: includes load+run
    desc = description_for(workload.arch)
    sim = CompiledSimulator(desc)
    for storage, contents in workload.preload.items():
        for index, value in contents.items():
            sim.write(storage, value, index)
    program = Assembler(desc).assemble(workload.source)
    sim.load_words(program.words, program.origin)
    start = time.perf_counter()
    sim.run()
    compiled_time = time.perf_counter() - start
    assert compiled_time < interp_time
