"""Tests for XSIM debugging features: monitors, traces, listings (§3.1)."""

import io

import pytest

from repro.asm import Assembler
from repro.gensim.trace import (
    CallbackTrace,
    FileTrace,
    ListTrace,
    TraceRecord,
)
from repro.gensim.xsim import XSim


@pytest.fixture
def sim(risc16_desc):
    sim = XSim(risc16_desc)
    program = Assembler(risc16_desc).assemble(
        "ldi r0, #3\nadd r1, r1, r0\nst (r2), r1\nhalt\n"
    )
    sim.load_words(program.words, program.origin)
    return sim


def test_state_monitor_records_message(sim):
    sim.watch("RF", 1)
    sim.run_to_completion()
    assert any("RF[1]" in m for m in sim.monitor_messages)


def test_monitor_custom_callback(sim):
    changes = []
    sim.watch("DM", callback=lambda s, i, o, n: changes.append((i, n)))
    sim.run_to_completion()
    assert changes == [(0, 3)]


def test_monitor_counts_hits(sim):
    monitor = sim.watch("RF")
    sim.run_to_completion()
    assert monitor.hits >= 2


def test_list_trace_records_every_instruction(sim):
    trace = ListTrace()
    sim.set_trace(trace)
    sim.run_to_completion()
    assert len(trace.records) == 4
    assert trace.records[0].address == 0
    assert "ldi" in trace.records[0].disassembly.lower()
    cycles = [r.cycle for r in trace.records]
    assert cycles == sorted(cycles)


def test_callback_trace(sim):
    seen = []
    sim.set_trace(CallbackTrace(seen.append))
    sim.run_to_completion()
    assert len(seen) == 4
    assert isinstance(seen[0], TraceRecord)


def test_file_trace_format(sim):
    stream = io.StringIO()
    sim.set_trace(FileTrace(stream))
    sim.run_to_completion()
    sim.scheduler.trace.close()
    lines = stream.getvalue().splitlines()
    assert len(lines) == 4
    assert "0x000000" in lines[0]


def test_disassembly_listing(sim):
    listing = sim.disassembly_listing()
    assert len(listing) == 4
    assert listing[0].startswith("0x0000:")
    assert "halt" in listing[-1]


def test_listing_renders_nt_operands(risc16_desc):
    sim = XSim(risc16_desc)
    program = Assembler(risc16_desc).assemble("add r1, r2, #7\nhalt\n")
    sim.load_words(program.words)
    listing = sim.disassembly_listing()
    assert "#7" in listing[0]
    assert "R1" in listing[0] and "R2" in listing[0]


def test_read_write_passthrough(sim):
    sim.write("DM", 0x1234, 5)
    assert sim.read("DM", 5) == 0x1234


def test_generator_validates(risc16_desc):
    from repro.gensim import generate_simulator

    sim = generate_simulator(risc16_desc)
    assert sim.desc is risc16_desc


def test_generator_rejects_ambiguous_description():
    from repro.errors import IsdlSemanticError
    from repro.gensim import generate_simulator
    from repro.isdl import load_string

    desc = load_string('''
processor "AMB"
section format
    word 8
end
section storage
    instruction_memory IM width 8 depth 8
    register ACC width 8
    program_counter PC width 3
end
section instruction_set
    field EX
        operation a()
            encoding { bits[7] = 0b1 }
        operation b()
            encoding { bits[6] = 0b1 }
    end
end
''')
    with pytest.raises(IsdlSemanticError):
        generate_simulator(desc)


def test_emit_source_is_importable(tmp_path, mini_desc):
    from repro.gensim import write_source

    path = tmp_path / "mini_sim.py"
    write_source(mini_desc, str(path))
    namespace = {}
    exec(compile(path.read_text(), str(path), "exec"), namespace)
    sim = namespace["make_simulator"]()
    # addi R1, R0, 5 ; halt
    sim.load_words([0b0001_01_00_0101_0000, 0b1111 << 12])
    sim.run_to_completion()
    assert sim.read("RF", 1) == 5


def test_load_binary_from_hex_file(tmp_path, mini_desc):
    sim = XSim(mini_desc)
    path = tmp_path / "prog.hex"
    path.write_text("1450  # addi R1, R0, 5\nf000\n")
    sim.load_binary(str(path))
    sim.run_to_completion()
    assert sim.read("RF", 1) == 5
