"""Unit tests for MonitorSet: hit counting, enable/disable, filtering."""

from repro.gensim.monitors import MonitorSet


def test_hit_counts_per_monitor_and_total():
    monitors = MonitorSet()
    a = monitors.watch("RF")
    b = monitors.watch("DM")
    monitors.notify("RF", 0, 0, 1)
    monitors.notify("RF", 1, 0, 2)
    monitors.notify("DM", 0, 0, 3)
    assert a.hits == 2
    assert b.hits == 1
    assert monitors.hits_total == 3


def test_disabled_monitor_does_not_count():
    monitors = MonitorSet()
    monitor = monitors.watch("RF")
    monitors.notify("RF", 0, 0, 1)
    monitor.enabled = False
    monitors.notify("RF", 0, 1, 2)
    assert monitor.hits == 1
    assert monitors.hits_total == 1
    monitor.enabled = True
    monitors.notify("RF", 0, 2, 3)
    assert monitor.hits == 2
    assert monitors.hits_total == 2


def test_index_filter_matches_only_that_element():
    monitors = MonitorSet()
    monitor = monitors.watch("RF", index=1)
    monitors.notify("RF", 0, 0, 1)
    monitors.notify("RF", 1, 0, 2)
    monitors.notify("RF", 2, 0, 3)
    assert monitor.hits == 1
    assert monitors.hits_total == 1


def test_unwatch_stops_counting():
    monitors = MonitorSet()
    monitor = monitors.watch("RF")
    monitors.notify("RF", 0, 0, 1)
    monitors.unwatch(monitor)
    monitors.notify("RF", 0, 1, 2)
    assert monitor.hits == 1
    assert monitors.hits_total == 1


def test_default_callback_formats_paper_style_message():
    monitors = MonitorSet()
    monitors.watch("RF", index=3)
    monitors.notify("RF", 3, 0x10, 0x2a)
    assert monitors.messages == ["monitor: RF[3] changed 0x10 -> 0x2a"]


def test_clear_resets_messages_and_totals():
    monitors = MonitorSet()
    monitors.watch("RF")
    monitors.notify("RF", 0, 0, 1)
    monitors.clear()
    assert monitors.hits_total == 0
    assert monitors.messages == []
    monitors.notify("RF", 0, 1, 2)  # no watchers left
    assert monitors.hits_total == 0
