"""Tests for the generated disassembler (paper Fig. 4).

The central property: for every operation and every legal operand binding,
``disassemble(assemble(op, operands))`` recovers the operation and the
operands exactly — the disassembly function inverts the assembly function.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import ARCHITECTURES
from repro.encoding.signature import SignatureTable
from repro.errors import DisassemblyError
from repro.gensim.disassembler import Disassembler, find_ambiguities
from repro.isdl import ast


def operand_strategy(desc, param):
    """A hypothesis strategy for legal operands of one parameter."""
    ptype = desc.param_type(param)
    if isinstance(ptype, ast.TokenDef):
        values = ptype.valid_values()
        return st.integers(min_value=values.start, max_value=values.stop - 1)
    options = []
    for option in ptype.options:
        sub = st.fixed_dictionaries(
            {p.name: operand_strategy(desc, p) for p in option.params}
        )
        options.append(st.tuples(st.just(option.label), sub))
    return st.one_of(options)


def operation_strategy(desc):
    """Strategy over (field, op, operands) for a whole description."""
    choices = []
    for fld, op in desc.operations():
        operands = st.fixed_dictionaries(
            {p.name: operand_strategy(desc, p) for p in op.params}
        )
        choices.append(
            st.tuples(st.just(fld.name), st.just(op.name), operands)
        )
    return st.one_of(choices)


@pytest.mark.parametrize("arch", sorted(ARCHITECTURES))
def test_descriptions_are_decodable(arch):
    desc = ARCHITECTURES[arch]()
    assert find_ambiguities(desc) == []


@pytest.mark.parametrize("arch", sorted(ARCHITECTURES))
@settings(max_examples=120, deadline=None)
@given(data=st.data())
def test_roundtrip_property(arch, data):
    desc = ARCHITECTURES[arch]()
    table = SignatureTable(desc)
    dis = Disassembler(desc, table)
    field_name, op_name, operands = data.draw(operation_strategy(desc))
    word = table.encode_operation(field_name, op_name, operands)
    decoded = dis.disassemble(word)
    recovered = decoded.operation_in(field_name)
    assert recovered is not None
    assert recovered.op_name == op_name
    assert recovered.operands == operands


def test_every_field_decodes_in_vliw_word(spam_desc):
    table = SignatureTable(spam_desc)
    dis = Disassembler(spam_desc, table)
    word = table.encode_instruction(
        {
            "FP1": ("fadd", {"d": 1, "a": 2, "b": 3}),
            "INT": ("add", {"d": 4, "a": 5, "b": ("imm", {"v": 7})}),
            "MV2": ("mov", {"d": 8, "s": 9}),
        }
    )
    decoded = dis.disassemble(word)
    selection = decoded.selection()
    assert selection["FP1"] == "fadd"
    assert selection["INT"] == "add"
    assert selection["MV2"] == "mov"
    # unspecified fields decode as their all-zero NOPs
    assert selection["FP2"] == "mnop"
    assert selection["LSU"] == "lnop"
    assert selection["MV1"] == "mnop"
    assert selection["MV3"] == "mnop"


def test_signed_immediate_decodes_negative(risc16_desc):
    table = SignatureTable(risc16_desc)
    dis = Disassembler(risc16_desc, table)
    word = table.encode_operation("EX", "beq", {"t": -4})
    decoded = dis.disassemble(word).operation_in("EX")
    assert decoded.operands["t"] == -4


def test_illegal_instruction_raises(mini_desc):
    dis = Disassembler(mini_desc)
    # opcode 0b0010 is not defined in the MINI description
    with pytest.raises(DisassemblyError):
        dis.disassemble(0b0010 << 12)


def test_nt_option_selected_by_mode_bit(risc16_desc):
    table = SignatureTable(risc16_desc)
    dis = Disassembler(risc16_desc, table)
    reg_word = table.encode_operation(
        "EX", "mov", {"d": 0, "b": ("reg", {"r": 5})}
    )
    imm_word = table.encode_operation(
        "EX", "mov", {"d": 0, "b": ("imm", {"v": 5})}
    )
    reg_dec = dis.disassemble(reg_word).operation_in("EX")
    imm_dec = dis.disassemble(imm_word).operation_in("EX")
    assert reg_dec.operands["b"] == ("reg", {"r": 5})
    assert imm_dec.operands["b"] == ("imm", {"v": 5})


def test_ambiguity_detection_flags_shadowed_encodings():
    from repro.isdl import load_string

    desc = load_string('''
processor "AMB"
section format
    word 8
end
section storage
    instruction_memory IM width 8 depth 8
    register ACC width 8
    program_counter PC width 3
end
section instruction_set
    field EX
        operation a()
            encoding { bits[7] = 0b1 }
        operation b()
            encoding { bits[6] = 0b1 }
    end
end
''')
    problems = find_ambiguities(desc)
    assert problems  # word 0b11xxxxxx matches both


AMBIGUOUS_ISDL = '''
processor "AMB"
section format
    word 8
end
section storage
    instruction_memory IM width 8 depth 8
    register ACC width 8
    program_counter PC width 3
end
section instruction_set
    field EX
        operation a()
            encoding { bits[7] = 0b1 }
        operation b()
            encoding { bits[6] = 0b1 }
    end
end
'''


def test_ambiguous_word_raises_naming_all_matches_sorted():
    from repro.errors import AmbiguousEncodingError
    from repro.isdl import load_string

    desc = load_string(AMBIGUOUS_ISDL)
    dis = Disassembler(desc)
    with pytest.raises(AmbiguousEncodingError) as excinfo:
        dis.disassemble(0b1100_0000)  # carries both constant images
    assert excinfo.value.matches == ("EX.a", "EX.b")
    assert "EX.a" in str(excinfo.value)
    assert "EX.b" in str(excinfo.value)
    # a word matching exactly one signature still decodes normally
    assert dis.disassemble(0b1000_0000).operation_in("EX").op_name == "a"
    assert dis.disassemble(0b0100_0000).operation_in("EX").op_name == "b"


def test_ambiguity_error_is_deterministic_across_decodes():
    from repro.errors import AmbiguousEncodingError
    from repro.isdl import load_string

    desc = load_string(AMBIGUOUS_ISDL)
    seen = set()
    for _ in range(3):
        dis = Disassembler(desc, cache_size=0)
        with pytest.raises(AmbiguousEncodingError) as excinfo:
            dis.disassemble(0xFF)
        seen.add(excinfo.value.matches)
    assert seen == {("EX.a", "EX.b")}


def test_unique_match_decodes_regardless_of_declaration_order(mini_desc):
    # word 0 matches only nop's constants; uniqueness — not declaration
    # order — is what selects the operation now
    dis = Disassembler(mini_desc)
    decoded = dis.disassemble(0)
    assert decoded.operation_in("EX").op_name == "nop"


# ---------------------------------------------------------------------------
# Decode memoization
# ---------------------------------------------------------------------------


def test_decode_memoized_by_word(risc16_desc):
    table = SignatureTable(risc16_desc)
    dis = Disassembler(risc16_desc, table)
    word = table.encode_operation("EX", "mov", {"d": 0, "b": ("reg", {"r": 5})})
    first = dis.disassemble(word)
    second = dis.disassemble(word)
    assert first is second  # same immutable object, no re-decode
    assert dis.decode_misses == 1
    assert dis.decode_hits == 1
    other = table.encode_operation("EX", "mov", {"d": 1, "b": ("reg", {"r": 5})})
    dis.disassemble(other)
    assert dis.decode_misses == 2


def test_decode_cache_is_bounded_lru(risc16_desc):
    table = SignatureTable(risc16_desc)
    dis = Disassembler(risc16_desc, table, cache_size=2)
    words = [
        table.encode_operation("EX", "ldi", {"d": 0, "v": v})
        for v in (1, 2, 3)
    ]
    for word in words:
        dis.disassemble(word)
    assert len(dis._cache) == 2
    assert words[0] not in dis._cache  # oldest evicted
    # touching the survivor keeps it resident across the next insert
    dis.disassemble(words[1])
    dis.disassemble(words[0])
    assert words[1] in dis._cache


def test_decode_cache_can_be_disabled(risc16_desc):
    table = SignatureTable(risc16_desc)
    dis = Disassembler(risc16_desc, table, cache_size=0)
    word = table.encode_operation("EX", "halt", {})
    first = dis.disassemble(word)
    second = dis.disassemble(word)
    assert first is not second
    assert dis.decode_hits == dis.decode_misses == 0
    assert len(dis._cache) == 0


def test_decode_counters_reach_observability(risc16_desc):
    from repro import obs

    table = SignatureTable(risc16_desc)
    dis = Disassembler(risc16_desc, table)
    word = table.encode_operation("EX", "halt", {})
    obs.enable()
    try:
        with obs.capture() as cap:
            dis.disassemble(word)
            dis.disassemble(word)
    finally:
        obs.disable(reset=True)
    assert cap.snapshot.counters["disasm.decode_misses"] == 1
    assert cap.snapshot.counters["disasm.decode_hits"] == 1
