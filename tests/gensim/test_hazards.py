"""Tests for static stall computation (§3.3.3)."""

import pytest

from repro.asm import Assembler
from repro.encoding.signature import SignatureTable
from repro.gensim.disassembler import Disassembler
from repro.gensim.hazards import HazardAnalyzer


def decode_program(desc, source):
    program = Assembler(desc).assemble(source)
    dis = Disassembler(desc, SignatureTable(desc))
    return [dis.disassemble(word) for word in program.words]


def stalls(desc, source):
    decoded = decode_program(desc, source)
    return HazardAnalyzer(desc).stalls_for_program(decoded)


def test_no_stalls_for_latency_one(risc16_desc):
    result = stalls(risc16_desc, """
        ldi r0, #1
        add r1, r1, r0
        add r2, r2, r1
        halt
""")
    assert result == [0, 0, 0, 0]


def test_fp_latency_creates_stalls(spam_desc):
    result = stalls(spam_desc, """
        fadd r1, r2, r3
        fadd r4, r1, r1
        halt
""")
    # fadd latency 2, consumer at distance 1 -> 1 stall (cap: stall cost 1)
    assert result == [0, 1, 0]


def test_distance_beyond_latency_needs_no_stall(spam_desc):
    result = stalls(spam_desc, """
        fadd r1, r2, r3
        inop
        fadd r4, r1, r1
        halt
""")
    assert result == [0, 0, 0, 0]


def test_stall_capped_by_stall_cost(spam_desc):
    result = stalls(spam_desc, """
        fmul r1, r2, r3
        fadd r4, r1, r1
        halt
""")
    # fmul latency 3, distance 1 -> need 2; cap = fmul stall cost 2
    assert result == [0, 2, 0]


def test_register_precision_no_false_conflict(spam_desc):
    result = stalls(spam_desc, """
        fadd r1, r2, r3
        fadd r4, r5, r6
        halt
""")
    # Different registers: no hazard even within the latency window.
    assert result == [0, 0, 0]


def test_dynamic_memory_access_is_conservative(spam_desc):
    result = stalls(spam_desc, """
        ld r1, (r2)
        ld r3, (r4)
        halt
""")
    # Loads write registers (precise: r1 vs r3 don't conflict) but both
    # read DM with dynamic addresses: reads don't conflict with reads.
    assert result == [0, 0, 0]


def test_load_use_hazard(spam_desc):
    result = stalls(spam_desc, """
        ld r1, (r2)
        add r3, r1, #1
        halt
""")
    assert result == [0, 1, 0]


def test_structural_hazard_from_usage(spam_desc):
    result = stalls(spam_desc, """
        fdiv r1, r2, r3
        fdiv r4, r5, r6
        halt
""")
    # fdiv usage 8: the second divide waits 7 cycles for the unit.
    assert result == [0, 7, 0]


def test_usage_hazard_only_same_field(spam_desc):
    result = stalls(spam_desc, """
        fdiv r1, r2, r3
        add r4, r5, #1
        halt
""")
    # integer ALU is a different unit; r-operands don't depend on fdiv...
    # but fdiv writes r1 with latency 8 — 'add' doesn't read r1, so free.
    assert result == [0, 0, 0]


def test_vliw_parallel_ops_profiled_together(spam_desc):
    result = stalls(spam_desc, """
        ld r4, (r0) | add r0, r0, #1
        ld r5, (r1) | add r1, r1, #1
        halt
""")
    # second line reads r1/r5-free and r0 updated with latency 1 — fine.
    assert result == [0, 0, 0]


def test_profile_cache_reuses_identical_instructions(spam_desc):
    decoded = decode_program(spam_desc, """
        add r1, r1, #1
        add r1, r1, #1
        halt
""")
    analyzer = HazardAnalyzer(spam_desc)
    analyzer.stalls_for_program(decoded)
    assert len(analyzer._profile_cache) == 2  # add-line + halt


def test_nt_side_effect_write_counts(acc8_desc):
    result = stalls(acc8_desc, """
        ldx #0
        add (X)+
        add (X)+
        halt
""")
    # X is written with latency 1 by the post-increment: no stalls needed.
    assert result == [0, 0, 0, 0]


# ---------------------------------------------------------------------------
# Edge cases: conditional PC writes, same-cycle side effects, program ends
# ---------------------------------------------------------------------------


def test_conditional_pc_write_appears_in_profile(risc16_desc):
    """A conditional branch is still a PC writer for hazard purposes —
    the ``if`` guard must not hide the write from the profile."""
    decoded = decode_program(risc16_desc, "loop: bne loop - .\n")
    profile = HazardAnalyzer(risc16_desc).profile(decoded[0])
    written = {access[0] for access, _, _ in profile.writes}
    assert "PC" in written


def test_conditional_branch_consumes_flags_without_stall(risc16_desc):
    """cmp writes the flags with latency 1; the branch reading them in the
    next slot needs no stall — and the guarded PC write adds none."""
    result = stalls(risc16_desc, """
        cmp r1, r2
loop:   bne loop - .
        beq loop - .
        halt
""")
    assert result == [0, 0, 0, 0]


def test_branch_condition_read_is_in_profile(risc16_desc):
    decoded = decode_program(risc16_desc, "cmp r1, r2\nloop: bne loop - .\n")
    analyzer = HazardAnalyzer(risc16_desc)
    cmp_writes = {a[0] for a, _, _ in analyzer.profile(decoded[0]).writes}
    bne_reads = {a[0] for a in analyzer.profile(decoded[1]).reads}
    # the branch reads what cmp writes (flag storage), so a longer-latency
    # flag producer *would* stall it — the dependence edge exists
    assert cmp_writes & bne_reads


def test_same_cycle_side_effect_needs_no_stall(acc8_desc):
    """A latency-1 ('zero extra cycles') side-effect write is visible to
    the very next instruction without stalling — the post-incremented X
    feeds a store through it immediately."""
    result = stalls(acc8_desc, """
        ldx #3
        add (X)+
        sub (X)+
        halt
""")
    assert result == [0, 0, 0, 0]
    decoded = decode_program(acc8_desc, "add (X)+\n")
    profile = HazardAnalyzer(acc8_desc).profile(decoded[0])
    x_writes = [
        (access, latency)
        for access, latency, _ in profile.writes
        if access[0] == "X"
    ]
    assert x_writes and all(latency == 1 for _, latency in x_writes)


def test_producer_on_last_program_word_is_safe(spam_desc):
    """A long-latency producer as the final word: the hazard window runs
    off the end of the program and must simply truncate."""
    result = stalls(spam_desc, """
        fadd r1, r2, r3
        fmul r4, r5, r6
""")
    assert result == [0, 0]


def test_hazard_window_spans_program_end_without_consumer(spam_desc):
    """Latency reaches past the last word; only the in-range consumer
    stalls and the final instruction never indexes past the program."""
    result = stalls(spam_desc, """
        fmul r1, r2, r3
        fadd r4, r1, r1
""")
    assert result == [0, 2]


def test_empty_and_single_word_programs(risc16_desc):
    analyzer = HazardAnalyzer(risc16_desc)
    assert analyzer.stalls_for_program([]) == []
    decoded = decode_program(risc16_desc, "halt\n")
    assert analyzer.stalls_for_program(decoded) == [0]
