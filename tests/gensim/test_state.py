"""Tests for processor-state emulation (Fig. 2 part 4)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import StateError
from repro.gensim.state import State


@pytest.fixture
def state(risc16_desc):
    return State(risc16_desc)


def test_initial_state_is_zero(state):
    assert state.read("RF", 3) == 0
    assert state.read("CCR") == 0
    assert state.pc == 0


def test_write_masks_to_width(state):
    state.write("RF", 0x1FFFF, 2)
    assert state.read("RF", 2) == 0xFFFF
    state.write("CCR", 0xFF)
    assert state.read("CCR") == 0xF


@given(st.integers(min_value=-1000, max_value=70000))
def test_pc_masked_to_width(risc16_desc, value):
    state = State(risc16_desc)
    state.pc = value
    assert state.pc == value & 0x3FF


def test_bit_range_read_write(state):
    state.write("CCR", 0b1010)
    assert state.read("CCR", hi=3, lo=2) == 0b10
    state.write("CCR", 1, hi=0, lo=0)
    assert state.read("CCR") == 0b1011


def test_alias_resolves_to_bit_of_storage(state):
    state.write("C", 1)  # CCR bit 0
    state.write("Z", 1)  # CCR bit 1
    assert state.read("CCR") == 0b11
    state.write("CCR", 0b100)
    assert state.read("C") == 0
    assert state.read("N") == 1  # CCR bit 2


def test_out_of_range_index_raises(state):
    with pytest.raises(StateError):
        state.read("RF", 8)
    with pytest.raises(StateError):
        state.write("DM", 0, 256)


def test_missing_index_on_addressed_storage_raises(state):
    with pytest.raises(StateError):
        state.read("RF")


def test_index_on_scalar_storage_raises(state):
    with pytest.raises(StateError):
        state.read("CCR", 0)


def test_unknown_storage_raises(state):
    with pytest.raises(StateError):
        state.read("BOGUS")


def test_alias_cannot_be_indexed(state):
    with pytest.raises(StateError):
        state.read("C", 1)


def test_access_counters(state):
    state.read("RF", 0)
    state.read("RF", 1)
    state.write("RF", 5, 0)
    assert state.read_counts["RF"] >= 2
    assert state.write_counts["RF"] == 1
    state.reset_counters()
    assert state.read_counts["RF"] == 0


def test_dump_and_restore(state):
    state.write("RF", 42, 3)
    state.write("CCR", 0b11)
    snapshot = state.dump()
    state.write("RF", 0, 3)
    state.write("CCR", 0)
    state.restore(snapshot)
    assert state.read("RF", 3) == 42
    assert state.read("CCR") == 0b11


def test_dump_is_deep_for_arrays(state):
    snapshot = state.dump()
    state.write("RF", 9, 0)
    assert snapshot["RF"][0] == 0


def test_monitor_notified_on_change_only(state):
    events = []
    state.monitors.watch(
        "RF", 2, callback=lambda s, i, o, n: events.append((s, i, o, n))
    )
    state.write("RF", 7, 2)
    state.write("RF", 7, 2)  # no change
    state.write("RF", 7, 3)  # different element
    assert events == [("RF", 2, 0, 7)]


def test_alias_write_through_notifies_base_storage(state):
    events = []
    state.monitors.watch("CCR", callback=lambda *e: events.append(e))
    state.write("Z", 1)
    assert events == [("CCR", None, 0, 0b10)]
