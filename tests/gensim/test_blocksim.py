"""Tests for the block-compiled simulator.

The contract is the same as the compiled backend's, one level up: the
block JIT must be indistinguishable from the interpretive XSIM in cycle
counts and final architectural state on every workload — plus the
dispatch-cache behaviours that are new here (lazy compilation, reload
invalidation, deopt fallbacks, table sharing through the artifact cache).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import (
    all_workloads,
    description_for,
    run_workload,
)
from repro.arch.workloads import (
    acc8_sum_array,
    risc16_sum_loop,
    spam2_sum_loop,
)
from repro.asm import Assembler
from repro.cache import ArtifactCache
from repro.errors import SimulationError
from repro.gensim import MonitorSet, Simulator, simulator_for
from repro.gensim.blocksim import BlockSimulator
from repro.gensim.compiled import CompiledSimulator

CASES = [(w.arch, w) for w in all_workloads()]


def run_block(workload, **kwargs):
    desc = description_for(workload.arch)
    sim = BlockSimulator(desc, **kwargs)
    for storage, contents in workload.preload.items():
        for index, value in contents.items():
            sim.write(storage, value, index)
    program = Assembler(desc).assemble(workload.source)
    sim.load_words(program.words, program.origin)
    result = sim.run()
    return sim, result


def assert_state_matches(arch, sim, reference):
    desc = description_for(arch)
    for storage in desc.storages.values():
        if storage.addressed:
            for index in range(storage.depth):
                assert sim.read(storage.name, index) == reference.read(
                    storage.name, index
                ), f"{storage.name}[{index}]"
        else:
            assert sim.read(storage.name) == reference.read(
                storage.name
            ), storage.name


# ---------------------------------------------------------------------------
# Differential correctness
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "arch,workload", CASES, ids=[f"{a}-{w.name}" for a, w in CASES]
)
def test_matches_interpretive_simulator(arch, workload):
    reference = run_workload(workload)
    block, result = run_block(workload)
    assert result.cycles == reference.stats.cycles
    assert result.instructions == reference.stats.instructions
    assert result.stall_cycles == reference.stats.stall_cycles
    assert result.halt_reason == "halted"
    assert_state_matches(arch, block, reference)


@settings(max_examples=12, deadline=None)
@given(n=st.integers(min_value=1, max_value=40))  # the loop is do-while: n=0 is undefined
def test_property_risc16_sum_loop(n):
    workload = risc16_sum_loop(n)
    reference = run_workload(workload)
    block, result = run_block(workload)
    assert result.cycles == reference.stats.cycles
    assert block.read("DM", 0) == n * (n + 1) // 2
    assert_state_matches("risc16", block, reference)


@settings(max_examples=10, deadline=None)
@given(values=st.lists(st.integers(min_value=0, max_value=40),
                       min_size=1, max_size=8).map(tuple))
def test_property_acc8_sum_array(values):
    workload = acc8_sum_array(values)
    reference = run_workload(workload)
    block, _ = run_block(workload)
    assert_state_matches("acc8", block, reference)


@settings(max_examples=8, deadline=None)
@given(n=st.integers(min_value=1, max_value=30))
def test_property_spam2_sum_loop(n):
    workload = spam2_sum_loop(n)
    reference = run_workload(workload)
    block, result = run_block(workload)
    assert result.cycles == reference.stats.cycles
    assert_state_matches("spam2", block, reference)


def test_latency_residue_crosses_block_boundary(spam_desc):
    """A latency-3 write retiring after the block's last cycle must be
    carried by the residue machinery — and still match the reference."""
    source = """
        fmul r8, r9, r10
        halt
    """
    sims = {}
    for cls in (CompiledSimulator, BlockSimulator):
        sim = cls(spam_desc)
        sim.write("RF", 0x40000000, 9)   # 2.0f
        sim.write("RF", 0x40400000, 10)  # 3.0f
        program = Assembler(spam_desc).assemble(source)
        sim.load_words(program.words, program.origin)
        sim.run()
        sims[cls] = sim
    block = sims[BlockSimulator]
    assert block.block_stats.residue_writes > 0
    assert block.read("RF", 8) == sims[CompiledSimulator].read("RF", 8)
    assert block.stats.cycles == sims[CompiledSimulator].stats.cycles


# ---------------------------------------------------------------------------
# Driver edge cases
# ---------------------------------------------------------------------------


def test_non_halting_program_raises_like_compiled(risc16_desc):
    program = Assembler(risc16_desc).assemble("loop: jmp loop\n")
    for budget in (1, 7, 100):
        results = []
        for cls in (CompiledSimulator, BlockSimulator):
            sim = cls(risc16_desc)
            sim.load_words(program.words)
            with pytest.raises(SimulationError):
                sim.run(max_steps=budget)
            results.append((sim.cycle, sim.instructions))
        assert results[0] == results[1], f"max_steps={budget}"


def test_max_steps_boundary_matches_xsim(risc16_desc):
    """Halting exactly at the step budget follows the interpretive
    scheduler's rule: the in-flight halt write is committed and the run
    counts as halted, not as a budget failure."""
    from repro.gensim import XSim

    source = "ldi r1, #5\nhalt\n"
    program = Assembler(risc16_desc).assemble(source)
    for budget in (1, 2, 3):
        outcomes = []
        for cls in (XSim, CompiledSimulator, BlockSimulator):
            sim = cls(risc16_desc)
            sim.load_words(program.words)
            try:
                sim.run_to_completion(max_steps=budget)
                outcomes.append("halted")
            except SimulationError:
                outcomes.append("raise")
        assert outcomes[0] == outcomes[1] == outcomes[2], (
            f"max_steps={budget}: {outcomes}"
        )
    # budget 2 is the exact boundary — the halt commits, so this is a halt
    sim = BlockSimulator(risc16_desc)
    sim.load_words(program.words)
    assert sim.run(max_steps=2).halt_reason == "halted"


def test_run_after_halt_is_idempotent(risc16_desc):
    program = Assembler(risc16_desc).assemble("halt\n")
    sim = BlockSimulator(risc16_desc)
    sim.load_words(program.words)
    first = sim.run()
    again = sim.run()
    assert again.cycles == first.cycles
    assert again.instructions == first.instructions


# ---------------------------------------------------------------------------
# Dispatch cache behaviour
# ---------------------------------------------------------------------------


def test_block_cache_hits_and_misses(risc16_desc):
    workload = risc16_sum_loop(10)
    block, _ = run_block(workload)
    stats = block.block_stats
    assert stats.misses > 0
    assert stats.hits > stats.misses  # the loop body re-dispatches
    assert stats.deopts == 0


def test_reload_invalidates_blocks(risc16_desc):
    asm = Assembler(risc16_desc)
    sim = BlockSimulator(risc16_desc)
    sim.load_words(asm.assemble("ldi r1, #1\nhalt\n").words)
    sim.run()
    first_blocks = sim._blocks
    sim.load_words(asm.assemble("ldi r1, #2\nhalt\n").words)
    assert sim._blocks is not first_blocks
    sim.write("HALTED", 0)
    sim.run()
    assert sim.read("RF", 1) == 2


def test_block_table_shared_through_artifact_cache(risc16_desc):
    cache = ArtifactCache()
    program = Assembler(risc16_desc).assemble(
        risc16_sum_loop(6).source
    )
    sims = []
    for _ in range(2):
        sim = BlockSimulator(risc16_desc, cache=cache)
        for storage, contents in risc16_sum_loop(6).preload.items():
            for index, value in contents.items():
                sim.write(storage, value, index)
        sim.load_words(program.words, program.origin)
        sim.run()
        sims.append(sim)
    assert sims[0]._blocks is sims[1]._blocks
    assert cache.stats.hits_by_kind["blocktable"] == 1
    # The second simulator found every block pre-compiled.
    assert sims[1].block_stats.misses == 0
    assert sims[0].read("DM", 0) == sims[1].read("DM", 0)


def test_deopt_sentinel_on_unsupported_block(risc16_desc, monkeypatch):
    """An uncompilable block must fall back to the per-instruction path
    with identical results, not fail."""
    workload = risc16_sum_loop(8)
    reference = run_workload(workload)

    from repro.gensim import blocksim

    class Boom(blocksim._BlockCompiler):
        def compile(self, offsets):
            raise blocksim._Unsupported("forced")

    monkeypatch.setattr(blocksim, "_BlockCompiler", Boom)
    block, result = run_block(workload)
    assert result.cycles == reference.stats.cycles
    assert block.block_stats.deopts > 0
    assert block.block_stats.interp_steps == result.instructions
    assert_state_matches("risc16", block, reference)


# ---------------------------------------------------------------------------
# Monitors (coarse support on the deopt path)
# ---------------------------------------------------------------------------


def test_monitored_storage_deopts_and_reports(risc16_desc):
    workload = risc16_sum_loop(5)
    reference = run_workload(workload)
    monitors = MonitorSet()
    monitors.watch("DM")
    block, result = run_block(workload, monitors=monitors)
    assert result.cycles == reference.stats.cycles
    assert block.block_stats.deopts > 0
    assert monitors.hits_total > 0
    assert any("DM[0]" in msg for msg in monitors.messages)
    assert_state_matches("risc16", block, reference)


def test_unmonitored_run_stays_on_fast_path(risc16_desc):
    workload = risc16_sum_loop(5)
    monitors = MonitorSet()  # no watches attached
    block, _ = run_block(workload, monitors=monitors)
    assert block.block_stats.deopts == 0


# ---------------------------------------------------------------------------
# Protocol and generated source
# ---------------------------------------------------------------------------


def test_conforms_to_simulator_protocol(risc16_desc):
    assert isinstance(BlockSimulator(risc16_desc), Simulator)
    sim = simulator_for(risc16_desc, "block")
    assert isinstance(sim, BlockSimulator)


def test_generated_source_shape(risc16_desc):
    """Spot-check the emitted Python: burned constants, local loads, one
    batched write-back, a rendered-assembly comment per instruction."""
    workload = risc16_sum_loop(4)
    block, _ = run_block(workload)
    compiled = [b for b in block._blocks.blocks
                if b is not None and b.fn is not None]
    assert compiled
    loop = max(compiled, key=lambda b: b.n)
    src = loop.source
    assert src.startswith("def _block(scalars, arrays, res):")
    assert "s_CCR = scalars['CCR']" in src  # risc16 flags alias into CCR
    assert "scalars['PC'] = _pc" in src
    assert src.count("# 0x") == loop.n  # one disassembly comment each
    # write-back happens once per exit, not per instruction
    assert src.count("scalars['CCR'] =") == 1
