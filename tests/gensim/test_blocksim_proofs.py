"""Proof-carrying block simulation: guard elision and superblock fusion.

The contract: a :class:`BlockSimulator` with ``proofs=True`` must be
bit-for-bit indistinguishable from the guarded simulator on every
workload — same :class:`RunResult`, same final architectural state —
while its deopt counters only ever go *down* (certificates remove
guards, they never add dispatch work).  ``REPRO_PROOF_CHECK=1`` makes
every proofs-enabled run re-execute guarded and assert this internally.
"""

import pytest

from repro.arch import all_workloads, description_for
from repro.asm import Assembler
from repro.cache import ArtifactCache
from repro.gensim.blocksim import BlockSimulator

CASES = [(w.arch, w) for w in all_workloads()]

#: the hot loop is split across blocks joined by unconditional jumps,
#: so certified superblock fusion has something to fuse
CHAIN_SOURCE = """
        ldi r0, #50
        ldi r1, #0
        ldi r2, #0
        jmp loop
loop:   add r1, r1, r0
        jmp body
body:   sub r0, r0, #1
        bne loop - .
        st (r2), r1
        halt
"""


def _run(desc, workload=None, source=None, **kwargs):
    sim = BlockSimulator(desc, **kwargs)
    if workload is not None:
        for storage, contents in workload.preload.items():
            for index, value in contents.items():
                sim.write(storage, value, index)
        source = workload.source
    program = Assembler(desc).assemble(source)
    sim.load_words(program.words, program.origin)
    result = sim.run()
    return sim, result


def _assert_same_state(desc, sim, reference):
    for storage in desc.storages.values():
        if storage.addressed:
            for index in range(storage.depth):
                assert sim.read(storage.name, index) == reference.read(
                    storage.name, index
                ), f"{storage.name}[{index}]"
        else:
            assert sim.read(storage.name) == reference.read(
                storage.name
            ), storage.name


@pytest.mark.parametrize("arch,workload", CASES,
                         ids=[f"{a}-{w.name}" for a, w in CASES])
def test_proofs_do_not_change_results(arch, workload):
    desc = description_for(arch)
    guarded, want = _run(desc, workload)
    certified, got = _run(desc, workload, proofs=True)
    assert got == want
    _assert_same_state(desc, certified, guarded)
    # certificates only remove guards: deopts must never increase
    assert certified.block_stats.deopts <= guarded.block_stats.deopts
    assert certified.block_stats.dispatches <= guarded.block_stats.dispatches


@pytest.mark.parametrize("arch,workload", CASES,
                         ids=[f"{a}-{w.name}" for a, w in CASES])
def test_proof_check_mode_passes_everywhere(arch, workload, monkeypatch):
    monkeypatch.setenv("REPRO_PROOF_CHECK", "1")
    desc = description_for(arch)
    guarded, want = _run(desc, workload)
    _, got = _run(desc, workload, proofs=True)
    assert got == want  # the internal shadow assert ran too


def test_superblock_chain_fuses_and_cuts_dispatches(risc16_desc):
    guarded, want = _run(risc16_desc, source=CHAIN_SOURCE)
    certified, got = _run(risc16_desc, source=CHAIN_SOURCE, proofs=True)
    assert got == want
    _assert_same_state(risc16_desc, certified, guarded)
    stats = certified.block_stats
    assert stats.fused_blocks >= 1
    assert stats.chain_dispatches > 0
    # the loop body dispatches as one fused unit instead of two blocks
    assert stats.dispatches < guarded.block_stats.dispatches


def test_chain_run_survives_proof_check(risc16_desc, monkeypatch):
    monkeypatch.setenv("REPRO_PROOF_CHECK", "1")
    _, got = _run(risc16_desc, source=CHAIN_SOURCE, proofs=True)
    guarded, want = _run(risc16_desc, source=CHAIN_SOURCE)
    assert got == want


def test_certified_blocks_do_not_leak_into_guarded_runs(risc16_desc):
    cache = ArtifactCache()
    _, want = _run(risc16_desc, source=CHAIN_SOURCE, proofs=True,
                   cache=cache)
    # a plain simulator sharing the artifact cache must compile its own
    # (guarded) table variant, not reuse the certified one
    plain, got = _run(risc16_desc, source=CHAIN_SOURCE, cache=cache)
    assert got == want
    assert plain.block_stats.fused_blocks == 0
    assert plain.block_stats.chain_dispatches == 0


def test_proofs_elide_deopt_guards_on_certified_programs(risc16_desc):
    # CHAIN_SOURCE is deopt-free on RISC16 (latency 1 everywhere, all
    # branch targets resolve): the certified run must never deopt
    certified, _ = _run(risc16_desc, source=CHAIN_SOURCE, proofs=True)
    assert certified.block_stats.deopts == 0
