"""Tests for the XSIM command-line / batch interface."""

import pytest

from repro.gensim.cli import CommandLine
from repro.gensim.xsim import XSim


@pytest.fixture
def cli(risc16_desc, tmp_path):
    sim = XSim(risc16_desc)
    output = []
    cli = CommandLine(sim, out=output.append)
    cli.output = output
    source = tmp_path / "prog.s"
    source.write_text(
        "ldi r0, #3\nadd r1, r1, r0\nst (r2), r1\nhalt\n"
    )
    cli.execute(f"asm {source}")
    return cli


def text(cli):
    return "\n".join(cli.output)


def test_asm_and_run(cli):
    cli.execute("run")
    assert "halted" in text(cli)
    assert cli.sim.read("DM", 0) == 3


def test_examine_and_set(cli):
    cli.execute("set RF 5 0x2a")
    cli.execute("examine RF 5")
    assert "0x2a" in text(cli)
    cli.execute("x RF[5]")
    assert text(cli).count("0x2a") >= 2


def test_examine_scalar(cli):
    cli.execute("examine PC")
    assert "PC = 0x0" in text(cli)


def test_step(cli):
    cli.execute("step 2")
    assert "cycle 2" in text(cli)


def test_breakpoint_and_attached_commands(cli):
    cli.execute('break 2 echo hit-bp; examine RF 1')
    cli.execute("run")
    assert "hit-bp" in text(cli)
    assert "RF[1] = 0x3" in text(cli)
    assert "breakpoint" in text(cli)
    cli.execute("delete 2")
    cli.execute("run")
    assert "halted" in text(cli)


def test_watch_reports_changes(cli):
    cli.execute("watch DM")
    cli.execute("run")
    assert any("DM[0] changed" in line for line in cli.output)


def test_trace_to_file(cli, tmp_path):
    trace_path = tmp_path / "trace.txt"
    cli.execute(f"trace {trace_path}")
    cli.execute("run")
    cli.execute("trace off")
    contents = trace_path.read_text()
    assert len(contents.splitlines()) == 4


def test_dis_listing(cli):
    cli.execute("dis")
    assert "halt" in text(cli)


def test_stats(cli):
    cli.execute("run")
    cli.execute("stats")
    assert "instructions" in text(cli)


def test_reset(cli):
    cli.execute("run")
    cli.execute("set HALTED 0")
    cli.execute("reset")
    assert cli.sim.cycle == 0


def test_batch_file(cli, tmp_path):
    batch = tmp_path / "commands.txt"
    batch.write_text("run\nexamine DM 0\necho done\n")
    cli.execute(f"batch {batch}")
    assert "done" in text(cli)
    assert "DM[0] = 0x3" in text(cli)


def test_unknown_command_reports_error(cli):
    cli.execute("frobnicate")
    assert "unknown command" in text(cli)


def test_errors_are_caught_not_raised(cli):
    cli.execute("examine NOSUCH")
    assert "error" in text(cli)


def test_load_hex_file(risc16_desc, tmp_path):
    output = []
    cli = CommandLine(XSim(risc16_desc), out=output.append)
    hex_path = tmp_path / "p.hex"
    hex_path.write_text("f80000\n")  # halt
    cli.execute(f"load {hex_path}")
    assert "loaded 1 words" in "\n".join(output)


def test_quit_sets_done(cli):
    cli.execute("quit")
    assert cli.done


def test_comments_ignored(cli):
    cli.execute("# just a comment")
    cli.execute("")
