"""Tests for the content-addressed artifact cache and ISDL fingerprints."""

import os
import time

import pytest

from repro.arch import description_for
from repro.cache import ArtifactCache, kernel_fingerprint
from repro.codegen import KernelBuilder, Opcode
from repro.explore import evaluate, transforms
from repro.isdl import fingerprint, load_string, print_description


def small_kernel():
    K = KernelBuilder("tiny")
    a = K.li(3)
    b = K.li(4)
    K.store(K.li(0), K.binary(Opcode.ADD, a, b))
    return K.build()


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------


@pytest.mark.parametrize("arch", ["risc16", "spam", "acc8"])
def test_fingerprint_stable_across_print_parse_roundtrip(arch):
    desc = description_for(arch)
    reparsed = load_string(print_description(desc))
    assert fingerprint(desc) == fingerprint(reparsed)
    # and the round trip is a fixed point, not merely hash-equal
    assert print_description(desc) == print_description(reparsed)


def test_fingerprint_distinguishes_architectures():
    assert fingerprint(description_for("risc16")) != fingerprint(
        description_for("spam")
    )


def test_fingerprint_invalidated_when_operations_change():
    desc = description_for("risc16")
    before = fingerprint(desc)
    fld = desc.fields[0]
    droppable = [
        (fld.name, op.name)
        for op in fld.operations
        if op.action
    ][:1]
    leaner = transforms.drop_operations(desc, droppable)
    assert fingerprint(leaner) != before
    # the original is untouched (transforms are functional)
    assert fingerprint(desc) == before


def test_fingerprint_sensitive_to_timing_annotations():
    from repro.isdl import ast

    desc = description_for("risc16")
    fld, op = next(
        (f, o) for f, o in desc.operations() if o.action
    )
    changed = transforms.set_operation_timing(
        desc, fld.name, op.name,
        costs=ast.Costs(op.costs.cycle + 1, op.costs.stall, op.costs.size),
        timing=op.timing,
    )
    assert fingerprint(changed) != fingerprint(desc)


def test_kernel_fingerprint_stable_and_distinct():
    assert kernel_fingerprint(small_kernel()) == kernel_fingerprint(
        small_kernel()
    )
    K = KernelBuilder("tiny")
    K.store(K.li(0), K.li(9))
    assert kernel_fingerprint(K.build()) != kernel_fingerprint(
        small_kernel()
    )


# ----------------------------------------------------------------------
# LRU layer: hit/miss accounting, eviction
# ----------------------------------------------------------------------


def test_hit_miss_accounting():
    cache = ArtifactCache()
    builds = []
    for _ in range(3):
        cache.get_or_build("thing", "k", lambda: builds.append(1) or 42)
    assert builds == [1]
    assert cache.stats.misses == 1
    assert cache.stats.hits == 2
    assert cache.stats.hits_by_kind["thing"] == 2
    assert cache.stats.misses_by_kind["thing"] == 1
    assert cache.stats.hit_rate == pytest.approx(2 / 3)
    assert "thing" in cache.stats.report()


def test_lru_eviction_drops_oldest():
    cache = ArtifactCache(max_entries=2)
    cache.get_or_build("k", 1, lambda: "a")
    cache.get_or_build("k", 2, lambda: "b")
    cache.get_or_build("k", 1, lambda: "a")  # touch 1 → 2 is now oldest
    cache.get_or_build("k", 3, lambda: "c")
    assert cache.stats.evictions == 1
    assert cache.peek("k", 2) is None
    assert cache.peek("k", 1) == "a"
    assert len(cache) == 2


def test_signature_table_and_fast_core_shared():
    cache = ArtifactCache()
    desc = description_for("risc16")
    assert cache.signature_table(desc) is cache.signature_table(desc)
    assert cache.fast_core(desc) is cache.fast_core(desc)


# ----------------------------------------------------------------------
# Disk layer
# ----------------------------------------------------------------------


def test_disk_layer_survives_new_cache(tmp_path):
    disk = str(tmp_path / "artifacts")
    first = ArtifactCache(disk_path=disk)
    first.get_or_build("evaluation", ("fp", "k"), lambda: {"cycles": 99})

    second = ArtifactCache(disk_path=disk)

    def must_not_build():
        raise AssertionError("disk layer should have served this")

    value = second.get_or_build("evaluation", ("fp", "k"), must_not_build)
    assert value == {"cycles": 99}
    assert second.stats.disk_hits == 1


def test_disk_layer_ignores_unpicklable_kinds(tmp_path):
    cache = ArtifactCache(disk_path=str(tmp_path / "d"))
    value = cache.get_or_build("sigtable", "fp", lambda: object())
    fresh = ArtifactCache(disk_path=str(tmp_path / "d"))
    rebuilt = []
    fresh.get_or_build("sigtable", "fp", lambda: rebuilt.append(1) or value)
    assert rebuilt == [1]  # memory-only kind: new cache rebuilds


def test_corrupt_disk_entry_is_a_miss(tmp_path):
    disk = str(tmp_path / "artifacts")
    cache = ArtifactCache(disk_path=disk)
    cache.get_or_build("evaluation", "key", lambda: 1)
    path = cache._disk_file("evaluation", "key")
    with open(path, "wb") as handle:
        handle.write(b"not a pickle")
    fresh = ArtifactCache(disk_path=disk)
    assert fresh.get_or_build("evaluation", "key", lambda: 2) == 2


# ----------------------------------------------------------------------
# Whole-evaluation memoization and invalidation
# ----------------------------------------------------------------------


def test_cached_evaluation_hits_and_invalidates():
    cache = ArtifactCache()
    desc = description_for("risc16")
    kernel = small_kernel()

    first = evaluate(desc, [kernel], cache=cache)
    assert cache.stats.misses_by_kind["evaluation"] == 1

    again = evaluate(desc, [kernel], cache=cache)
    assert cache.stats.hits_by_kind["evaluation"] == 1
    assert again.cycles == first.cycles
    assert again.die_size == first.die_size

    # a structurally different candidate never hits the old entry
    fld = desc.fields[0]
    droppable = [
        (fld.name, op.name)
        for op in fld.operations
        if op.action and kernel_unused(first, fld.name, op.name)
    ][:1]
    if droppable:
        leaner = transforms.drop_operations(desc, droppable)
        evaluate(leaner, [kernel], cache=cache)
        assert cache.stats.misses_by_kind["evaluation"] == 2


def kernel_unused(evaluation, field_name, op_name):
    return evaluation.stats.op_counts[(field_name, op_name)] == 0


def test_cached_evaluation_results_are_bit_true():
    cache = ArtifactCache()
    desc = description_for("spam")
    kernel = small_kernel()
    cold = evaluate(desc, [kernel], cache=cache)
    plain = evaluate(desc, [kernel])
    assert cold.cycles == plain.cycles
    assert cold.stall_cycles == plain.stall_cycles
    assert cold.cycle_ns == plain.cycle_ns
    assert cold.die_size == plain.die_size
    assert cold.power_mw == plain.power_mw


# ----------------------------------------------------------------------
# Disk-layer hardening (atomic writes, corrupt-entry accounting)
# ----------------------------------------------------------------------


def test_corrupt_disk_entry_is_counted_and_rebuilt(tmp_path):
    disk = str(tmp_path / "artifacts")
    seeded = ArtifactCache(disk_path=disk)
    seeded.get_or_build("evaluation", "key", lambda: "good")
    path = seeded._disk_file("evaluation", "key")
    with open(path, "wb") as handle:
        handle.write(b"\x80\x04 definitely not a pickle")
    cache = ArtifactCache(disk_path=disk)
    assert cache.get_or_build("evaluation", "key", lambda: "rebuilt") \
        == "rebuilt"
    assert cache.stats.disk_errors == 1
    assert cache.stats.misses == 1  # corrupt counts as a miss, not a hit
    assert "1 corrupt disk entry" in cache.stats.report()
    # the bad file was replaced: a fresh cache loads the rebuilt value
    fresh = ArtifactCache(disk_path=disk)
    assert fresh.get_or_build("evaluation", "key", lambda: "wrong") \
        == "rebuilt"
    assert fresh.stats.disk_errors == 0


def test_truncated_disk_entry_is_a_counted_miss(tmp_path):
    import pickle

    disk = str(tmp_path / "artifacts")
    seeded = ArtifactCache(disk_path=disk)
    seeded.get_or_build("evaluation", "key", lambda: list(range(1000)))
    path = seeded._disk_file("evaluation", "key")
    blob = pickle.dumps(list(range(1000)))
    with open(path, "wb") as handle:
        handle.write(blob[: len(blob) // 2])  # a killed writer's leavings
    cache = ArtifactCache(disk_path=disk)
    assert cache.get_or_build("evaluation", "key", lambda: "rebuilt") \
        == "rebuilt"
    assert cache.stats.disk_errors == 1


def test_missing_disk_entry_is_a_plain_miss_not_an_error(tmp_path):
    cache = ArtifactCache(disk_path=str(tmp_path / "artifacts"))
    cache.get_or_build("evaluation", "key", lambda: 1)
    assert cache.stats.disk_errors == 0


def test_corrupt_disk_entry_increments_obs_counter(tmp_path):
    from repro import obs

    disk = str(tmp_path / "artifacts")
    seeded = ArtifactCache(disk_path=disk)
    seeded.get_or_build("evaluation", "key", lambda: 1)
    with open(seeded._disk_file("evaluation", "key"), "wb") as handle:
        handle.write(b"junk")
    obs.enable()
    try:
        ArtifactCache(disk_path=disk).get_or_build(
            "evaluation", "key", lambda: 2
        )
        snap = obs.registry().snapshot()
    finally:
        obs.disable(reset=True)
    assert snap.counters.get("cache.disk_corrupt") == 1


def test_disk_saves_leave_no_temp_files(tmp_path):
    import os

    disk = str(tmp_path / "artifacts")
    cache = ArtifactCache(disk_path=disk)
    for i in range(10):
        cache.get_or_build("evaluation", f"key-{i}", lambda: b"x" * 1000)
    leftovers = [name for name in os.listdir(disk) if ".tmp." in name]
    assert leftovers == []


def test_concurrent_disk_writers_never_corrupt_an_entry(tmp_path):
    import threading

    disk = str(tmp_path / "artifacts")
    value = {"payload": list(range(500))}
    caches = [ArtifactCache(disk_path=disk) for _ in range(8)]
    start = threading.Barrier(8)

    def writer(cache):
        start.wait()
        for _ in range(10):
            cache.get_or_build("evaluation", "shared",
                               lambda: dict(value))
            cache.clear()  # force the disk path on the next lookup

    threads = [threading.Thread(target=writer, args=(c,)) for c in caches]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    # whatever the interleaving, the landed file is a whole pickle
    fresh = ArtifactCache(disk_path=disk)
    assert fresh.get_or_build("evaluation", "shared", lambda: None) \
        == value
    assert fresh.stats.disk_errors == 0
    assert all(c.stats.disk_errors == 0 for c in caches)


# ----------------------------------------------------------------------
# Cross-process build leases
# ----------------------------------------------------------------------


def lease_cache(tmp_path, **kwargs):
    kwargs.setdefault("lease", True)
    kwargs.setdefault("lease_timeout_s", 2.0)
    kwargs.setdefault("lease_poll_s", 0.01)
    return ArtifactCache(disk_path=str(tmp_path / "artifacts"), **kwargs)


def test_lease_holder_builds_and_publishes(tmp_path):
    cache = lease_cache(tmp_path)
    value = cache.get_or_build("evaluation", "k", lambda: {"n": 1})
    assert value == {"n": 1}
    # the lease file is gone and the artifact is on disk
    lease_path = cache._disk_file("evaluation", "k") + ".lease"
    assert not os.path.exists(lease_path)
    fresh = lease_cache(tmp_path)
    assert fresh.get_or_build("evaluation", "k", lambda: None) == {"n": 1}


def test_waiter_picks_up_published_artifact_without_building(tmp_path):
    """While another live process holds the lease, a waiter polls the
    disk and returns the published artifact — its own builder never
    runs."""
    import threading

    cache = lease_cache(tmp_path)
    lease_path = cache._disk_file("evaluation", "k") + ".lease"
    # a live "other process" (this one, so the pid probe passes) holds
    # the lease; it publishes the artifact shortly after we start waiting
    assert cache._lease_acquire(lease_path) is None

    def publish():
        time.sleep(0.08)
        cache._disk_save("evaluation", "k", {"built": "elsewhere"})
        cache._lease_release(lease_path)

    waiter = lease_cache(tmp_path)
    publisher = threading.Thread(target=publish)
    publisher.start()

    def must_not_build():
        raise AssertionError("the waiter must serve the published value")

    try:
        value = waiter.get_or_build("evaluation", "k", must_not_build)
    finally:
        publisher.join()
    assert value == {"built": "elsewhere"}
    assert waiter.stats.lease_waits == 1


def test_stale_lease_of_a_dead_pid_is_broken(tmp_path):
    import json as json_mod

    cache = lease_cache(tmp_path)
    lease_path = cache._disk_file("evaluation", "k") + ".lease"
    os.makedirs(os.path.dirname(lease_path), exist_ok=True)
    # a lease from a process that no longer exists, not yet expired
    with open(lease_path, "w", encoding="utf-8") as handle:
        json_mod.dump({"pid": 2 ** 22 + 12345,
                       "expires": time.time() + 600.0}, handle)
    value = cache.get_or_build("evaluation", "k", lambda: {"n": 7})
    assert value == {"n": 7}
    assert cache.stats.lease_breaks >= 1
    assert not os.path.exists(lease_path)


def test_expired_lease_is_broken(tmp_path):
    import json as json_mod

    cache = lease_cache(tmp_path)
    lease_path = cache._disk_file("evaluation", "k") + ".lease"
    os.makedirs(os.path.dirname(lease_path), exist_ok=True)
    with open(lease_path, "w", encoding="utf-8") as handle:
        json_mod.dump({"pid": os.getpid(),
                       "expires": time.time() - 1.0}, handle)
    assert cache.get_or_build("evaluation", "k", lambda: 3) == 3
    assert cache.stats.lease_breaks >= 1


def test_lease_wait_budget_degrades_to_a_local_build(tmp_path):
    """A holder that never publishes cannot wedge a waiter: past the
    timeout the waiter builds locally (a duplicate build, not a hang)."""
    cache = lease_cache(tmp_path, lease_timeout_s=0.15)
    lease_path = cache._disk_file("evaluation", "k") + ".lease"
    assert cache._lease_acquire(lease_path) is None  # held, never freed
    waiter = lease_cache(tmp_path, lease_timeout_s=0.15)
    begun = time.monotonic()
    value = waiter.get_or_build("evaluation", "k", lambda: {"n": 9})
    assert value == {"n": 9}
    assert time.monotonic() - begun < 2.0
    cache._lease_release(lease_path)
