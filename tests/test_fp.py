"""Unit + property tests for the bit-true IEEE-754 helpers."""

import math
import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import fp

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, width=32
)
any_bits = st.integers(min_value=0, max_value=0xFFFFFFFF)


@given(finite_floats)
def test_roundtrip_float_bits(value):
    assert fp.bits_to_float(fp.float_to_bits(value)) == value


@given(finite_floats, finite_floats)
def test_fadd_matches_double_rounded_reference(a, b):
    # width=32 floats are exact binary32 values; the binary32 sum is the
    # double-precision sum rounded once (float_to_bits handles overflow
    # to infinity the way IEEE round-to-nearest does).
    expected = fp.float_to_bits(a + b)
    got = fp.fadd(fp.float_to_bits(a), fp.float_to_bits(b))
    assert got == expected


@given(finite_floats, finite_floats)
def test_fmul_commutes(a, b):
    x, y = fp.float_to_bits(a), fp.float_to_bits(b)
    assert fp.fmul(x, y) == fp.fmul(y, x)


@given(any_bits)
def test_fneg_is_involution(bits):
    assert fp.fneg(fp.fneg(bits)) == bits


@given(any_bits)
def test_fabs_clears_sign(bits):
    result = fp.fabs_(bits)
    assert result & 0x80000000 == 0
    assert result & 0x7FFFFFFF == bits & 0x7FFFFFFF


def test_known_values():
    one = fp.float_to_bits(1.0)
    two = fp.float_to_bits(2.0)
    assert one == 0x3F800000
    assert fp.fadd(one, one) == two
    assert fp.fmul(two, two) == fp.float_to_bits(4.0)
    assert fp.fsub(two, one) == one
    assert fp.fdiv(one, two) == fp.float_to_bits(0.5)


def test_division_by_zero_gives_signed_infinity():
    one = fp.float_to_bits(1.0)
    zero = fp.float_to_bits(0.0)
    assert fp.fdiv(one, zero) == 0x7F800000
    assert fp.fdiv(fp.fneg(one), zero) == 0xFF800000


def test_zero_over_zero_is_nan():
    zero = fp.float_to_bits(0.0)
    assert fp.is_nan_bits(fp.fdiv(zero, zero))


def test_overflow_rounds_to_infinity():
    big = fp.float_to_bits(3.0e38)
    assert fp.fmul(big, big) == 0x7F800000


def test_fcmp_ordering():
    one = fp.float_to_bits(1.0)
    two = fp.float_to_bits(2.0)
    nan = 0x7FC00000
    assert fp.fcmp(one, two) == -1
    assert fp.fcmp(two, one) == 1
    assert fp.fcmp(one, one) == 0
    assert fp.fcmp(one, nan) == -2


@given(st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1))
def test_itof_ftoi_roundtrip_within_precision(value):
    bits = fp.itof(value & 0xFFFFFFFF, 32)
    back = fp.ftoi(bits, 32)
    if back & (1 << 31):
        back -= 1 << 32
    # binary32 has 24 bits of precision; small ints round-trip exactly.
    if abs(value) < (1 << 24):
        assert back == value


def test_ftoi_saturates():
    big = fp.float_to_bits(1.0e10)
    assert fp.ftoi(big, 16) == 0x7FFF
    assert fp.ftoi(fp.fneg(big), 16) == 0x8000


def test_ftoi_truncates_toward_zero():
    assert fp.ftoi(fp.float_to_bits(2.9), 16) == 2
    neg = fp.ftoi(fp.float_to_bits(-2.9), 16)
    assert neg == (-2) & 0xFFFF


def test_ftoi_of_nan_is_zero():
    assert fp.ftoi(0x7FC00000, 16) == 0


def test_is_nan_bits():
    assert fp.is_nan_bits(0x7FC00000)
    assert not fp.is_nan_bits(0x7F800000)  # infinity
    assert not fp.is_nan_bits(fp.float_to_bits(1.0))
