"""Property tests for the bit-manipulation helpers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.encoding import bits

widths = st.integers(min_value=1, max_value=64)


@given(widths)
def test_mask_width(width):
    assert bits.mask(width).bit_length() == width


@given(st.integers(min_value=0, max_value=2 ** 64 - 1), widths)
def test_get_set_roundtrip(value, width):
    hi = width - 1
    field = bits.get_bits(value, hi, 0)
    assert bits.set_bits(value, hi, 0, field) == value


@given(st.data())
def test_set_then_get(data):
    width = data.draw(widths)
    lo = data.draw(st.integers(min_value=0, max_value=40))
    hi = lo + width - 1
    value = data.draw(st.integers(min_value=0, max_value=2 ** 64 - 1))
    field = data.draw(st.integers(min_value=0, max_value=bits.mask(width)))
    updated = bits.set_bits(value, hi, lo, field)
    assert bits.get_bits(updated, hi, lo) == field
    # bits outside the range are untouched
    outside_mask = ~(bits.mask(width) << lo)
    assert updated & outside_mask == value & outside_mask


@given(st.integers(min_value=0, max_value=2 ** 32 - 1), widths)
def test_sign_extend_idempotent_on_masked(value, width):
    extended = bits.sign_extend(value, width)
    assert bits.to_unsigned(extended, width) == value & bits.mask(width)
    assert bits.sign_extend(bits.to_unsigned(extended, width), width) == extended


@given(widths)
def test_sign_extend_extremes(width):
    top = 1 << (width - 1)
    assert bits.sign_extend(top, width) == -top
    assert bits.sign_extend(top - 1, width) == top - 1


@given(st.integers(), widths)
def test_fits_signed_matches_range(value, width):
    half = 1 << (width - 1)
    assert bits.fits_signed(value, width) == (-half <= value < half)


@given(st.integers(), widths)
def test_fits_unsigned_matches_range(value, width):
    assert bits.fits_unsigned(value, width) == (0 <= value < (1 << width))
