"""Tests for operation signatures and the assembly function (paper Fig. 3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.encoding.signature import Signature, SignatureTable
from repro.errors import EncodingError
from repro.isdl import ast


def make_signature():
    # op a, b with layout: bits[9:8]=01, a -> bits[7:4], b -> bits[3:0]
    encoding = (
        ast.BitAssign(9, 8, ast.EncConst(0b01)),
        ast.BitAssign(7, 4, ast.EncParam("a")),
        ast.BitAssign(3, 0, ast.EncParam("b")),
    )
    return Signature.from_encoding(encoding, 10, {"a": 4, "b": 4})


def test_constant_mask_and_value():
    sig = make_signature()
    assert sig.constant_mask == 0b11_0000_0000
    assert sig.constant_value == 0b01_0000_0000


def test_defined_mask_covers_constants_and_params():
    sig = make_signature()
    assert sig.defined_mask == 0b11_1111_1111


def test_dont_care_bits():
    encoding = (ast.BitAssign(9, 9, ast.EncConst(1)),)
    sig = Signature.from_encoding(encoding, 10, {})
    assert sig.defined_mask == 1 << 9
    assert sig.symbols[0] is None


def test_matches_only_on_constants():
    sig = make_signature()
    assert sig.matches(0b01_1010_0101)
    assert sig.matches(0b01_0000_0000)
    assert not sig.matches(0b10_1010_0101)


@given(st.integers(0, 15), st.integers(0, 15))
def test_assemble_extract_roundtrip(a, b):
    sig = make_signature()
    word = sig.assemble({"a": a, "b": b})
    assert sig.matches(word)
    assert sig.extract(word, "a") == a
    assert sig.extract(word, "b") == b


def test_assemble_missing_param_raises():
    sig = make_signature()
    with pytest.raises(EncodingError):
        sig.assemble({"a": 1})


def test_param_positions_map_word_to_value_bits():
    sig = make_signature()
    positions = sig.param_positions("a")
    assert positions == [(4, 0), (5, 1), (6, 2), (7, 3)]


def test_split_parameter_slices():
    # A parameter split across two non-adjacent word ranges.
    encoding = (
        ast.BitAssign(7, 6, ast.EncParam("v", 3, 2)),
        ast.BitAssign(1, 0, ast.EncParam("v", 1, 0)),
    )
    sig = Signature.from_encoding(encoding, 8, {"v": 4})
    word = sig.assemble({"v": 0b1001})
    assert word == 0b10_0000_01
    assert sig.extract(word, "v") == 0b1001


def test_param_names_in_bit_order():
    sig = make_signature()
    assert sig.param_names() == ["b", "a"]


# ---------------------------------------------------------------------------
# SignatureTable over a real architecture
# ---------------------------------------------------------------------------


def test_table_covers_all_operations(risc16_desc):
    table = SignatureTable(risc16_desc)
    expected = sum(len(f.operations) for f in risc16_desc.fields)
    assert len(table.operation_signatures) == expected
    assert ("SRC", "reg") in table.option_signatures


def test_encode_operation_with_nt_operand(risc16_desc):
    table = SignatureTable(risc16_desc)
    # add R1, R2, R3  (register source)
    word = table.encode_operation(
        "EX", "add", {"d": 1, "a": 2, "b": ("reg", {"r": 3})}
    )
    assert (word >> 19) == 0b00001
    assert (word >> 16) & 0b111 == 1
    assert (word >> 13) & 0b111 == 2
    # NT: bit 8 of SRC field (word bit 12) = 0, reg index in low bits
    assert (word >> 12) & 1 == 0
    assert (word >> 4) & 0b111 == 3


def test_encode_operation_with_imm_operand(risc16_desc):
    table = SignatureTable(risc16_desc)
    word = table.encode_operation(
        "EX", "add", {"d": 1, "a": 2, "b": ("imm", {"v": 0xAB})}
    )
    assert (word >> 12) & 1 == 1
    assert (word >> 4) & 0xFF == 0xAB


def test_encode_signed_immediate(risc16_desc):
    table = SignatureTable(risc16_desc)
    word = table.encode_operation("EX", "beq", {"t": -3})
    assert (word >> 5) & 0xFF == (-3) & 0xFF


def test_encode_out_of_range_value_raises(risc16_desc):
    table = SignatureTable(risc16_desc)
    with pytest.raises(EncodingError):
        table.encode_operation(
            "EX", "add", {"d": 9, "a": 0, "b": ("imm", {"v": 0})}
        )


def test_encode_missing_sub_operand_raises(risc16_desc):
    table = SignatureTable(risc16_desc)
    with pytest.raises(EncodingError):
        table.encode_operation(
            "EX", "add", {"d": 1, "a": 0, "b": ("reg", {})}
        )


def test_encode_wrong_operand_shape_raises(risc16_desc):
    table = SignatureTable(risc16_desc)
    with pytest.raises(EncodingError):
        table.encode_operation(
            "EX", "add", {"d": ("reg", {}), "a": 0, "b": ("imm", {"v": 1})}
        )


def test_encode_instruction_combines_fields(spam_desc):
    table = SignatureTable(spam_desc)
    word = table.encode_instruction(
        {
            "FP1": ("fadd", {"d": 1, "a": 2, "b": 3}),
            "MV1": ("mov", {"d": 4, "s": 5}),
        }
    )
    fp1 = table.operation("FP1", "fadd")
    mv1 = table.operation("MV1", "mov")
    assert fp1.matches(word)
    assert mv1.matches(word)
    assert fp1.extract(word, "d") == 1
    assert mv1.extract(word, "s") == 5
