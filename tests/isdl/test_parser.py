"""Unit tests for the ISDL parser."""

import pytest

from repro.errors import IsdlSyntaxError
from repro.isdl import ast, parse, rtl

HEADER = '''
processor "T"
section format
    word 16
end
'''

STORAGE = '''
section storage
    instruction_memory IM width 16 depth 64
    data_memory DM width 8 depth 32
    register_file RF width 8 depth 4
    register ACC width 8
    program_counter PC width 6
    alias LO = ACC[3:0]
end
'''


def parse_with(extra: str) -> ast.Description:
    return parse(HEADER + STORAGE + extra)


MINI_FIELD = '''
section instruction_set
    field EX
        operation nop()
            encoding { bits[15:12] = 0b0000 }
    end
end
'''


def test_processor_header_and_word_width():
    desc = parse_with(MINI_FIELD)
    assert desc.name == "T"
    assert desc.word_width == 16


def test_missing_format_section_rejected():
    with pytest.raises(IsdlSyntaxError):
        parse('processor "X"\n' + STORAGE + MINI_FIELD)


def test_storage_kinds_and_sizes():
    desc = parse_with(MINI_FIELD)
    assert desc.storages["IM"].kind is ast.StorageKind.INSTRUCTION_MEMORY
    assert desc.storages["DM"].depth == 32
    assert desc.storages["RF"].width == 8
    assert desc.storages["ACC"].depth is None
    assert desc.storages["PC"].kind is ast.StorageKind.PROGRAM_COUNTER


def test_alias_bit_range():
    desc = parse_with(MINI_FIELD)
    alias = desc.aliases["LO"]
    assert (alias.storage, alias.hi, alias.lo) == ("ACC", 3, 0)


def test_scalar_storage_with_depth_rejected():
    with pytest.raises(IsdlSyntaxError):
        parse(HEADER + '''
section storage
    register ACC width 8 depth 4
end
''' + MINI_FIELD)


def test_addressed_storage_without_depth_rejected():
    with pytest.raises(IsdlSyntaxError):
        parse(HEADER + '''
section storage
    register_file RF width 8
end
''' + MINI_FIELD)


def test_token_definitions():
    desc = parse_with('''
section global_definitions
    token REG prefix "R" range 0 .. 3
    token SIMM immediate signed width 5
    token CC enum { EQ = 0, NE = 1 }
end
''' + MINI_FIELD)
    reg = desc.tokens["REG"]
    assert reg.kind is ast.TokenKind.PREFIXED
    assert (reg.lo, reg.hi, reg.prefix) == (0, 3, "R")
    simm = desc.tokens["SIMM"]
    assert simm.signed and simm.width == 5
    assert desc.tokens["CC"].symbols == (("EQ", 0), ("NE", 1))


def test_operation_six_parts():
    desc = parse_with('''
section global_definitions
    token REG prefix "R" range 0 .. 3
end
section instruction_set
    field EX
        operation add(d: REG, a: REG)
            syntax "add %d, %a"
            encoding { bits[15:12] = 0b0001; bits[11:10] = d; bits[9:8] = a }
            action { RF[d] <- RF[a] + 1; }
            side_effect { ACC <- 0; }
            cost cycle 2 stall 1 size 1
            timing latency 2 usage 2
    end
end
''')
    op = desc.operation("EX", "add")
    assert op.syntax == "add %d, %a"
    assert len(op.encoding) == 3
    assert len(op.action) == 1
    assert len(op.side_effect) == 1
    assert op.costs == ast.Costs(cycle=2, stall=1, size=1)
    assert op.timing == ast.Timing(latency=2, usage=2)


def test_default_costs_and_timing():
    desc = parse_with(MINI_FIELD)
    op = desc.operation("EX", "nop")
    assert op.costs == ast.Costs()
    assert op.timing == ast.Timing()


def test_reversed_bit_range_rejected():
    with pytest.raises(IsdlSyntaxError):
        parse_with('''
section instruction_set
    field EX
        operation nop()
            encoding { bits[2:5] = 0b0 }
    end
end
''')


def test_rtl_if_else_and_expressions():
    desc = parse_with('''
section instruction_set
    field EX
        operation t()
            encoding { bits[15] = 0b1 }
            action {
                if ACC == 0 { PC <- PC + 2; } else { PC <- PC - 1; }
                ACC <- (ACC * 3) >> 1 ^ 0xF;
            }
    end
end
''')
    stmts = desc.operation("EX", "t").action
    assert isinstance(stmts[0], rtl.If)
    assert stmts[0].orelse
    assert isinstance(stmts[1], rtl.Assign)


def test_ternary_and_intrinsics():
    desc = parse_with('''
section instruction_set
    field EX
        operation t()
            encoding { bits[15] = 0b1 }
            action { ACC <- ACC > 7 ? carry(ACC, 1, 8) : sext(ACC, 4); }
    end
end
''')
    expr = desc.operation("EX", "t").action[0].expr
    assert isinstance(expr, rtl.Cond)
    assert isinstance(expr.then, rtl.Call)
    assert expr.then.func == "carry"


def test_location_resolution_addressed_vs_scalar():
    desc = parse_with('''
section instruction_set
    field EX
        operation t()
            encoding { bits[15] = 0b1 }
            action { RF[1] <- ACC[3]; DM[ACC + 1] <- LO; }
    end
end
''')
    first, second = desc.operation("EX", "t").action
    assert first.dest == rtl.StorageLV("RF", rtl.IntLit(1), None, None)
    assert first.expr == rtl.StorageRead("ACC", None, 3, 3)
    assert isinstance(second.dest.index, rtl.BinOp)
    assert second.expr == rtl.StorageRead("LO", None, None, None)


def test_unknown_name_in_rtl_rejected():
    with pytest.raises(IsdlSyntaxError):
        parse_with('''
section instruction_set
    field EX
        operation t()
            encoding { bits[15] = 0b1 }
            action { BOGUS <- 1; }
    end
end
''')


def test_parameter_reference_resolves():
    desc = parse_with('''
section global_definitions
    token REG prefix "R" range 0 .. 3
end
section instruction_set
    field EX
        operation t(d: REG)
            encoding { bits[15] = 0b1; bits[1:0] = d }
            action { RF[d] <- d; }
    end
end
''')
    stmt = desc.operation("EX", "t").action[0]
    assert stmt.dest.index == rtl.ParamRef("d")
    assert stmt.expr == rtl.ParamRef("d")


def test_nonterminal_with_options():
    desc = parse_with('''
section global_definitions
    token REG prefix "R" range 0 .. 3
    nonterminal SRC width 3
        option reg(r: REG)
            syntax "%r"
            encoding { bits[2] = 0b0; bits[1:0] = r }
            action { $$ <- RF[r]; }
        option acc()
            syntax "A"
            encoding { bits[2] = 0b1 }
            action { $$ <- ACC; }
    end
end
section instruction_set
    field EX
        operation t(s: SRC)
            encoding { bits[15] = 0b1; bits[2:0] = s }
            action { ACC <- s; }
    end
end
''')
    nt = desc.nonterminals["SRC"]
    assert nt.width == 3
    assert [o.label for o in nt.options] == ["reg", "acc"]
    assert nt.option("reg").storage_target() is not None
    assert nt.option("reg").costs.cycle == 0  # NT default cost


def test_constraints_forbid_and_require():
    desc = parse_with('''
section instruction_set
    field A
        operation x()
            encoding { bits[15] = 0b1 }
    end
    field B
        operation y()
            encoding { bits[14] = 0b1 }
    end
end
section constraints
    forbid A.x & B.y
    require A.x | ~(B.y)
end
''')
    assert len(desc.constraints) == 2
    assert not desc.instruction_valid({"A": "x", "B": "y"})
    assert desc.instruction_valid({"A": "x"})


def test_optional_section_attributes():
    desc = parse_with(MINI_FIELD + '''
section optional
    attribute halt_flag "H"
    attribute technology "lsi10k"
end
''')
    assert desc.attributes["halt_flag"] == "H"
    assert desc.attributes["technology"] == "lsi10k"


def test_unknown_section_rejected():
    with pytest.raises(IsdlSyntaxError):
        parse(HEADER + "section bogus end")


def test_empty_field_rejected():
    with pytest.raises(IsdlSyntaxError):
        parse_with("section instruction_set\n    field EX\n    end\nend")


def test_empty_nonterminal_rejected():
    with pytest.raises(IsdlSyntaxError):
        parse_with('''
section global_definitions
    nonterminal N width 2
    end
end
''' + MINI_FIELD)
