"""Unit tests for RTL AST helpers (traversal, formatting)."""

from repro.isdl import rtl


def build_block():
    # if a == 0 { RF[i] <- DM[j] + 1; } else { ACC <- ~ACC; }
    return (
        rtl.If(
            rtl.BinOp("==", rtl.ParamRef("a"), rtl.IntLit(0)),
            then=(
                rtl.Assign(
                    rtl.StorageLV("RF", rtl.ParamRef("i")),
                    rtl.BinOp(
                        "+",
                        rtl.StorageRead("DM", rtl.ParamRef("j")),
                        rtl.IntLit(1),
                    ),
                ),
            ),
            orelse=(
                rtl.Assign(
                    rtl.StorageLV("ACC"),
                    rtl.UnOp("~", rtl.StorageRead("ACC")),
                ),
            ),
        ),
        rtl.Assign(rtl.StorageLV("PC"), rtl.ParamRef("t")),
    )


def test_walk_stmts_recurses_into_branches():
    stmts = list(rtl.walk_stmts(build_block()))
    assigns = [s for s in stmts if isinstance(s, rtl.Assign)]
    assert len(assigns) == 3


def test_storages_read_and_written():
    block = build_block()
    assert rtl.storages_read(block) == {"DM", "ACC"}
    assert rtl.storages_written(block) == {"RF", "ACC", "PC"}


def test_params_used():
    assert rtl.params_used(build_block()) == {"a", "i", "j", "t"}


def test_walk_exprs_preorder():
    expr = rtl.BinOp("+", rtl.IntLit(1), rtl.UnOp("-", rtl.IntLit(2)))
    nodes = list(rtl.walk_exprs(expr))
    assert isinstance(nodes[0], rtl.BinOp)
    assert isinstance(nodes[1], rtl.IntLit)
    assert isinstance(nodes[2], rtl.UnOp)


def test_format_expr_round_readable():
    expr = rtl.Cond(
        rtl.BinOp("==", rtl.StorageRead("Z"), rtl.IntLit(1)),
        rtl.Call("sext", (rtl.ParamRef("t"), rtl.IntLit(8))),
        rtl.IntLit(0),
    )
    text = rtl.format_expr(expr)
    assert "Z" in text and "sext(t, 8)" in text and "?" in text


def test_format_stmt_if_else():
    text = rtl.format_stmt(build_block()[0])
    assert text.startswith("if ")
    assert "} else {" in text
    assert text.rstrip().endswith("}")


def test_format_location_slice_and_index():
    lv = rtl.StorageLV("CCR", None, 3, 1)
    assert rtl.format_lvalue(lv) == "CCR[3:1]"
    lv = rtl.StorageLV("RF", rtl.IntLit(2), 7, 7)
    assert rtl.format_lvalue(lv) == "RF[2][7]"


def test_format_stmt_indents_nested_bodies():
    text = rtl.format_stmt(build_block()[0], indent=1)
    lines = text.splitlines()
    assert lines[0].startswith("    if ")
    assert any(line.startswith("        ") for line in lines[1:])


def test_children_of_unknown_node_raises():
    import pytest

    with pytest.raises(TypeError):
        list(rtl.walk_exprs("not a node"))
