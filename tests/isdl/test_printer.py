"""Round-trip tests for the ISDL pretty-printer.

The exploration loop rewrites descriptions as ASTs and prints them back to
ISDL text; ``parse(print(desc))`` must reproduce the description.
"""

import pytest

from repro.arch import ARCHITECTURES
from repro.isdl import load_string, print_description


def _strip(node):
    """Recursively drop source locations so structures compare equal."""
    import dataclasses

    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        changes = {}
        for f in dataclasses.fields(node):
            value = getattr(node, f.name)
            if f.name == "location":
                changes[f.name] = None
            else:
                changes[f.name] = _strip(value)
        return dataclasses.replace(node, **changes)
    if isinstance(node, tuple):
        return tuple(_strip(v) for v in node)
    if isinstance(node, list):
        return [_strip(v) for v in node]
    return node


def normalize(raw_desc):
    """A comparable structural summary of a description (locations ignored)."""

    class _View:
        pass

    desc = _View()
    desc.name = raw_desc.name
    desc.word_width = raw_desc.word_width
    desc.tokens = {n: _strip(t) for n, t in raw_desc.tokens.items()}
    desc.storages = raw_desc.storages
    desc.aliases = raw_desc.aliases
    desc.fields = [_strip(f) for f in raw_desc.fields]
    desc.nonterminals = {
        n: _strip(nt) for n, nt in raw_desc.nonterminals.items()
    }
    desc.constraints = raw_desc.constraints
    desc.attributes = raw_desc.attributes
    return {
        "name": desc.name,
        "word": desc.word_width,
        "tokens": {n: (t.kind, t.prefix, t.lo, t.hi, t.signed, t.width,
                       t.symbols)
                   for n, t in desc.tokens.items()},
        "storages": {n: (s.kind, s.width, s.depth)
                     for n, s in desc.storages.items()},
        "aliases": {n: (a.storage, a.index, a.hi, a.lo)
                    for n, a in desc.aliases.items()},
        "fields": [
            (f.name, [(op.name, op.params, op.encoding, op.action,
                       op.side_effect, op.costs, op.timing)
                      for op in f.operations])
            for f in desc.fields
        ],
        "nts": {
            n: (nt.width, [(o.label, o.params, o.encoding, o.action,
                            o.side_effect, o.costs, o.timing)
                           for o in nt.options])
            for n, nt in desc.nonterminals.items()
        },
        "nconstraints": len(desc.constraints),
        "attributes": dict(desc.attributes),
    }


@pytest.mark.parametrize("arch", sorted(ARCHITECTURES))
def test_roundtrip_architecture(arch):
    desc = ARCHITECTURES[arch]()
    text = print_description(desc)
    redesc = load_string(text, filename=f"{arch}-roundtrip.isdl")
    assert normalize(redesc) == normalize(desc)


@pytest.mark.parametrize("arch", sorted(ARCHITECTURES))
def test_print_is_stable(arch):
    desc = ARCHITECTURES[arch]()
    once = print_description(desc)
    twice = print_description(load_string(once))
    assert once == twice


def test_constraints_semantics_survive_roundtrip(spam_desc):
    text = print_description(spam_desc)
    redesc = load_string(text)
    for selection in (
        {"LSU": "ld", "MV3": "mov"},
        {"LSU": "st", "MV3": "mov"},
        {"FP2": "fdiv", "INT": "jmp"},
    ):
        assert not redesc.instruction_valid(selection)
    assert redesc.instruction_valid({"LSU": "ld", "MV1": "mov"})
