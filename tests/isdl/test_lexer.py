"""Unit tests for the ISDL tokenizer."""

import pytest

from repro.errors import IsdlSyntaxError
from repro.isdl.lexer import tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind != "EOF"]


def test_empty_source_yields_only_eof():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind == "EOF"


def test_identifiers_and_keywords_are_ids():
    tokens = tokenize("section format word register_file _x9")
    assert [t.kind for t in tokens[:-1]] == ["ID"] * 5
    assert tokens[0].value == "section"


def test_decimal_hex_binary_integers():
    tokens = tokenize("42 0x2A 0b101010 1_000")
    values = [t.value for t in tokens if t.kind == "INT"]
    assert values == [42, 42, 42, 1000]


def test_malformed_hex_literal_raises():
    with pytest.raises(IsdlSyntaxError):
        tokenize("0x")


def test_malformed_binary_literal_raises():
    with pytest.raises(IsdlSyntaxError):
        tokenize("0b")


def test_string_literal_with_escape():
    tokens = tokenize(r'"he said \"hi\""')
    assert tokens[0].kind == "STRING"
    assert tokens[0].value == 'he said "hi"'


def test_unterminated_string_raises():
    with pytest.raises(IsdlSyntaxError):
        tokenize('"oops')


def test_string_may_not_span_lines():
    with pytest.raises(IsdlSyntaxError):
        tokenize('"one\ntwo"')


def test_comments_are_skipped():
    tokens = tokenize("a # everything after is gone\nb")
    assert texts("a # gone\nb") == ["a", "b"]
    assert len(tokens) == 3  # a, b, EOF


def test_maximal_munch_on_operators():
    assert texts("a <- b << 2 <= 3") == ["a", "<-", "b", "<<", "2", "<=", "3"]


def test_double_dollar_token():
    tokens = tokenize("$$ <- 1")
    assert tokens[0].value == "$$"


def test_range_dots():
    tokens = tokenize("0 .. 15")
    assert [t.text for t in tokens[:-1]] == ["0", "..", "15"]


def test_locations_track_lines_and_columns():
    tokens = tokenize("ab\n  cd", filename="f.isdl")
    assert tokens[0].location.line == 1
    assert tokens[0].location.column == 1
    assert tokens[1].location.line == 2
    assert tokens[1].location.column == 3
    assert tokens[1].location.filename == "f.isdl"


def test_unexpected_character_reports_location():
    with pytest.raises(IsdlSyntaxError) as excinfo:
        tokenize("a\n  `")
    assert "2:3" in str(excinfo.value)
