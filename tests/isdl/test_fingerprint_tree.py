"""Tests for the per-unit fingerprint tree and the structural delta."""

import dataclasses

import pytest

from repro.arch import ARCHITECTURES, description_for
from repro.explore import transforms
from repro.isdl import (
    ast,
    fingerprint,
    fingerprint_delta,
    fingerprint_tree,
    print_description,
    unit_fingerprint,
)
from repro.isdl.fingerprint import clear_fingerprint_memo, fingerprint_text
from repro.isdl.printer import description_units, operation_lines

ARCHES = sorted(ARCHITECTURES)


# ----------------------------------------------------------------------
# Tree construction
# ----------------------------------------------------------------------


@pytest.mark.parametrize("arch", ARCHES)
def test_root_is_the_whole_document_digest(arch):
    """The root must stay byte-identical to the historical fingerprint:
    it is the wire-format identity for dedup, coalescing, and routing."""
    desc = description_for(arch)
    tree = fingerprint_tree(desc)
    assert tree.root == fingerprint_text(print_description(desc))
    assert fingerprint(desc) == tree.root


@pytest.mark.parametrize("arch", ARCHES)
def test_unit_fragments_reassemble_the_document(arch):
    desc = description_for(arch)
    lines = []
    for _kind, _key, unit_lines in description_units(desc):
        lines += unit_lines
    assert "\n".join(lines) + "\n" == print_description(desc)


@pytest.mark.parametrize("arch", ARCHES)
def test_tree_covers_every_unit(arch):
    desc = description_for(arch)
    tree = fingerprint_tree(desc)
    assert set(tree.tokens) == set(desc.tokens)
    assert set(tree.nonterminals) == set(desc.nonterminals)
    assert set(tree.storages) == set(desc.storages)
    assert set(tree.aliases) == set(desc.aliases)
    assert set(tree.operations) == {
        (fld.name, op.name) for fld, op in desc.operations()
    }
    assert tree.fields == tuple(fld.name for fld in desc.fields)
    assert tree.op_order == tuple(
        (fld.name, op.name) for fld, op in desc.operations()
    )


@pytest.mark.parametrize("arch", ARCHES)
def test_operation_unit_fingerprint_matches_tree(arch):
    desc = description_for(arch)
    tree = fingerprint_tree(desc)
    for fld, op in desc.operations():
        assert unit_fingerprint(op) == tree.operations[(fld.name, op.name)]
        assert unit_fingerprint(op) == fingerprint_text(
            "\n".join(operation_lines(op))
        )


def test_operation_digest_is_position_independent():
    """An untouched operation keeps its digest when a sibling is dropped,
    even though its byte offset in the document moves."""
    desc = description_for("risc16")
    fld = desc.fields[0]
    victim = fld.operations[0].name
    child = transforms.drop_operation(desc, fld.name, victim)
    parent_tree = fingerprint_tree(desc)
    child_tree = fingerprint_tree(child)
    for key, digest in child_tree.operations.items():
        assert parent_tree.operations[key] == digest


# ----------------------------------------------------------------------
# Memoization
# ----------------------------------------------------------------------


def test_tree_memoized_per_object():
    desc = description_for("risc16")
    assert fingerprint_tree(desc) is fingerprint_tree(desc)


def test_clear_memo_forces_rebuild():
    desc = description_for("risc16")
    first = fingerprint_tree(desc)
    clear_fingerprint_memo()
    second = fingerprint_tree(desc)
    assert first is not second
    assert first == second


def test_memo_does_not_leak_across_equal_objects():
    """Two structurally equal but distinct objects get their own (equal)
    trees — identity keying must never alias them."""
    a = description_for("risc16")
    b = dataclasses.replace(a)
    assert a is not b
    assert fingerprint_tree(a) == fingerprint_tree(b)
    assert fingerprint_tree(a) is not fingerprint_tree(b)


# ----------------------------------------------------------------------
# Delta
# ----------------------------------------------------------------------


def test_delta_of_identical_descriptions():
    desc = description_for("risc16")
    delta = fingerprint_delta(desc, description_for("risc16"))
    assert delta.identical
    assert not delta.touched_ops
    assert delta.instruction_set_unchanged
    assert delta.global_env_unchanged
    assert delta.storage_env_unchanged
    assert delta.sim_env_unchanged
    assert delta.assembly_reusable


def test_delta_names_a_dropped_operation():
    desc = description_for("risc16")
    fld = desc.fields[0]
    victim = fld.operations[-1].name
    child = transforms.drop_operation(desc, fld.name, victim)
    delta = fingerprint_delta(desc, child)
    assert delta.removed_ops == {(fld.name, victim)}
    assert not delta.changed_ops and not delta.added_ops
    assert not delta.op_order_changed
    assert delta.global_env_unchanged
    assert delta.storage_env_unchanged
    # dropping an op changes the set, so assembly must re-run
    assert not delta.assembly_reusable


def test_delta_names_a_retimed_operation():
    desc = description_for("risc16")
    fld, op = next((f, o) for f, o in desc.operations() if o.action)
    child = transforms.set_operation_timing(
        desc, fld.name, op.name,
        costs=ast.Costs(op.costs.cycle + 1, op.costs.stall, op.costs.size),
    )
    delta = fingerprint_delta(desc, child)
    assert delta.changed_ops == {(fld.name, op.name)}
    assert not delta.removed_ops and not delta.added_ops
    assert delta.op_unchanged(fld.name, fld.operations[0].name) or (
        fld.operations[0].name == op.name
    )
    assert delta.sim_env_unchanged


def test_delta_names_a_resized_storage():
    desc = description_for("risc16")
    mem = next(
        s for s in desc.storages.values()
        if s.addressed and (s.depth or 0) >= 32
    )
    child = transforms.resize_memory(desc, mem.name, mem.depth // 2)
    delta = fingerprint_delta(desc, child)
    assert delta.storages_changed == {mem.name}
    assert not delta.touched_ops
    assert delta.global_env_unchanged
    assert not delta.storage_env_unchanged
    assert not delta.sim_env_unchanged


def test_delta_sees_added_constraints():
    desc = description_for("spam")
    ops = list(desc.operations())
    (fa, oa), (fb, ob) = ops[0], ops[-1]
    child = transforms.add_constraint(desc, fa.name, oa.name, fb.name,
                                      ob.name)
    delta = fingerprint_delta(desc, child)
    assert delta.constraints_changed
    assert not delta.touched_ops
    assert delta.sim_env_unchanged  # constraints are not simulated
    assert not delta.assembly_reusable  # but the compiler reads them


def test_delta_detects_operation_reordering():
    """Two descriptions with the same operations in different document
    order share all unit digests — only the order flag may tell the
    assembly-reuse predicate they differ."""
    desc = description_for("risc16")
    fld = desc.fields[0]
    reordered = dataclasses.replace(
        desc,
        fields=[ast.Field(fld.name, tuple(reversed(fld.operations)),
                          fld.location)]
        + list(desc.fields[1:]),
    )
    delta = fingerprint_delta(desc, reordered)
    assert not delta.touched_ops
    assert delta.op_order_changed
    assert not delta.instruction_set_unchanged
    assert not delta.assembly_reusable


def test_delta_rename_only_touches_the_header():
    desc = description_for("risc16")
    renamed = dataclasses.replace(desc, name="RISC16B")
    delta = fingerprint_delta(desc, renamed)
    assert delta.header_changed
    assert not delta.identical
    assert not delta.touched_ops
    assert delta.sim_env_unchanged
    assert delta.assembly_reusable


def test_delta_accepts_trees_directly():
    desc = description_for("risc16")
    tree = fingerprint_tree(desc)
    delta = fingerprint_delta(tree, tree)
    assert delta.identical
