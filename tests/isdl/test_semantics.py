"""Unit tests for ISDL semantic analysis."""

import pytest

from repro.errors import IsdlSemanticError
from repro.isdl import check, parse

BASE = '''
processor "T"
section format
    word 16
end
section global_definitions
    token REG prefix "R" range 0 .. 3
    token IMM4 immediate unsigned width 4
end
section storage
    instruction_memory IM width 16 depth 64
    register_file RF width 8 depth 4
    register ACC width 8
    program_counter PC width 6
    alias LO = ACC[3:0]
end
'''

GOOD_FIELD = '''
section instruction_set
    field EX
        operation nop()
            encoding { bits[15:12] = 0b0000 }
        operation addi(d: REG, v: IMM4)
            encoding { bits[15:12] = 0b0001; bits[11:10] = d; bits[7:4] = v }
            action { RF[d] <- RF[d] + v; }
    end
end
'''


def check_text(text):
    return check(parse(text))


def expect_error(text, fragment):
    with pytest.raises(IsdlSemanticError) as excinfo:
        check_text(text)
    assert fragment in str(excinfo.value)


def test_valid_description_passes():
    check_text(BASE + GOOD_FIELD)


def test_collect_mode_returns_all_problems():
    desc = parse(BASE + '''
section instruction_set
    field EX
        operation a(d: REG)
            encoding { bits[15] = 0b1 }
            action { RF[d] <- 0; }
            cost size 0
    end
end
''')
    problems = check(desc, collect=True)
    assert len(problems) >= 2  # unencoded parameter + invalid size cost
    assert any("never encoded" in p for p in problems)
    assert any("invalid costs" in p for p in problems)


def test_missing_program_counter():
    text = BASE.replace("    program_counter PC width 6\n", "")
    expect_error(text + GOOD_FIELD, "program counter")


def test_missing_instruction_memory():
    text = BASE.replace(
        "    instruction_memory IM width 16 depth 64\n", ""
    )
    expect_error(text + GOOD_FIELD, "instruction memory")


def test_axiom1_double_assigned_bits():
    expect_error(BASE + '''
section instruction_set
    field EX
        operation t(d: REG)
            encoding { bits[15:12] = 0b0001; bits[12:11] = d }
    end
end
''', "Axiom 1")


def test_unencoded_parameter_rejected():
    expect_error(BASE + '''
section instruction_set
    field EX
        operation t(d: REG)
            encoding { bits[15:12] = 0b0001 }
            action { RF[d] <- 0; }
    end
end
''', "never encoded")


def test_constant_too_wide_rejected():
    expect_error(BASE + '''
section instruction_set
    field EX
        operation t()
            encoding { bits[15:14] = 0b111 }
    end
end
''', "does not fit")


def test_param_slice_width_mismatch():
    expect_error(BASE + '''
section instruction_set
    field EX
        operation t(v: IMM4)
            encoding { bits[15:12] = 0b0001; bits[11:9] = v }
    end
end
''', "different widths")


def test_encoding_outside_word_rejected():
    expect_error(BASE + '''
section instruction_set
    field EX
        operation t()
            encoding { bits[16] = 0b1 }
    end
end
''', "outside word width")


def test_bit_range_outside_storage_width():
    expect_error(BASE + '''
section instruction_set
    field EX
        operation t()
            encoding { bits[15] = 0b1 }
            action { ACC[9:8] <- 1; }
    end
end
''', "outside")


def test_alias_of_unknown_storage():
    text = BASE.replace(
        "alias LO = ACC[3:0]", "alias LO = NOPE[3:0]"
    )
    expect_error(text + GOOD_FIELD, "unknown storage")


def test_alias_range_outside_width():
    text = BASE.replace(
        "alias LO = ACC[3:0]", "alias LO = ACC[11:8]"
    )
    expect_error(text + GOOD_FIELD, "outside")


def test_constraint_unknown_operation():
    expect_error(BASE + GOOD_FIELD.replace("end\nend", '''
    end
end
section constraints
    forbid EX.bogus
end
''', 1), "unknown operation")


def test_cross_field_overlap_without_constraint():
    expect_error(BASE + '''
section instruction_set
    field A
        operation x()
            encoding { bits[15] = 0b1 }
    end
    field B
        operation y()
            encoding { bits[15] = 0b1 }
    end
end
''', "share instruction bits")


def test_cross_field_overlap_excused_by_constraint():
    # A.x and B.y both claim bit 13, but a constraint forbids combining
    # them, so the overlap is legal (paper rule 4 refinement).
    check_text(BASE + '''
section instruction_set
    field A
        operation x()
            encoding { bits[15] = 0b1; bits[13] = 0b1 }
        operation xn()
            encoding { bits[15] = 0b0 }
    end
    field B
        operation y()
            encoding { bits[14] = 0b1; bits[13] = 0b1 }
        operation yn()
            encoding { bits[14] = 0b0 }
    end
end
section constraints
    forbid A.x & B.y
end
''')


def test_intrinsic_arity_checked():
    expect_error(BASE + '''
section instruction_set
    field EX
        operation t()
            encoding { bits[15] = 0b1 }
            action { ACC <- carry(1, 2); }
    end
end
''', "takes 3 arguments")


def test_unknown_intrinsic_rejected():
    expect_error(BASE + '''
section instruction_set
    field EX
        operation t()
            encoding { bits[15] = 0b1 }
            action { ACC <- frobnicate(1); }
    end
end
''', "unknown intrinsic")


def test_alias_bit_select_out_of_range_rejected():
    # LO is a 4-bit alias; selecting bit 9 of it must be rejected.
    expect_error(BASE + '''
section instruction_set
    field EX
        operation t()
            encoding { bits[15] = 0b1 }
            action { ACC <- LO[9]; }
    end
end
''', "outside")


def test_nonterminal_destination_requires_transparency():
    expect_error('''
processor "T"
section format
    word 16
end
section global_definitions
    token REG prefix "R" range 0 .. 3
    nonterminal SRC width 3
        option reg(r: REG)
            encoding { bits[2] = 0b0; bits[1:0] = r }
            action { $$ <- RF[r] + 1; }
    end
end
section storage
    instruction_memory IM width 16 depth 64
    register_file RF width 8 depth 4
    program_counter PC width 6
end
section instruction_set
    field EX
        operation t(s: SRC)
            encoding { bits[15] = 0b1; bits[2:0] = s }
            action { s <- 5; }
    end
end
''', "not transparent")


def test_invalid_costs_rejected():
    expect_error(BASE + '''
section instruction_set
    field EX
        operation t()
            encoding { bits[15] = 0b1 }
            cost size 0
    end
end
''', "invalid costs")


# ---------------------------------------------------------------------------
# Structured diagnostics (repro.analyze integration)
# ---------------------------------------------------------------------------


def test_diagnose_returns_structured_diagnostics():
    from repro.analyze import Diagnostic, Severity
    from repro.isdl import semantics

    desc = parse(BASE + '''
section instruction_set
    field EX
        operation a(d: REG)
            encoding { bits[15] = 0b1 }
            action { RF[d] <- 0; }
    end
end
''')
    diagnostics = semantics.diagnose(desc)
    assert diagnostics
    assert all(isinstance(d, Diagnostic) for d in diagnostics)
    (finding,) = [d for d in diagnostics if d.code == "ISDL012"]
    assert finding.severity is Severity.ERROR
    assert "never encoded" in finding.message


def test_diagnose_tags_axiom1_violations():
    from repro.isdl import semantics

    desc = parse(BASE + '''
section instruction_set
    field EX
        operation t()
            encoding { bits[15:12] = 0b1111; bits[13:12] = 0b00 }
    end
end
''')
    codes = [d.code for d in semantics.diagnose(desc)]
    assert "ISDL011" in codes


def test_diagnose_clean_description_is_empty():
    from repro.isdl import semantics

    assert semantics.diagnose(parse(BASE + GOOD_FIELD)) == []


def test_collect_shim_matches_diagnose_legacy_text():
    # the deprecated collect=True shape is exactly the structured
    # diagnostics run through legacy_text()
    from repro.isdl import semantics

    desc = parse(BASE + '''
section instruction_set
    field EX
        operation a(d: REG)
            encoding { bits[15] = 0b1 }
            action { RF[d] <- 0; }
            cost size 0
    end
end
''')
    legacy = check(desc, collect=True)
    structured = semantics.diagnose(desc)
    assert legacy == [d.legacy_text() for d in structured]
    assert all(isinstance(p, str) for p in legacy)


def test_unknown_constraint_ref_is_warning_severity():
    from repro.analyze import Severity
    from repro.isdl import semantics

    desc = parse(BASE + GOOD_FIELD + '''
section constraints
    forbid EX.ghost
end
''')
    findings = [d for d in semantics.diagnose(desc)
                if d.code == "ISDL201"]
    assert findings
    assert all(d.severity is Severity.WARNING for d in findings)
