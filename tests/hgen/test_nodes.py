"""Tests for RTL → hardware-node decomposition (paper §4.1.2 step 1)."""

from collections import Counter

from repro.hgen.nodes import NodeExtractor, extract_nodes


def classes(nodes):
    return Counter(node.unit_class for node in nodes)


def test_risc16_node_classes(risc16_desc):
    nodes = extract_nodes(risc16_desc)
    by_class = classes(nodes)
    assert by_class["adder"] >= 10  # add/sub/cmp/branch adders + flags
    assert by_class["shifter"] == 2  # shl, shr
    assert by_class["read_port:RF"] > 0
    assert by_class["write_port:DM"] == 1  # st
    assert by_class["read_port:DM"] == 1  # ld


def test_bus_nodes_for_moves(spam_desc):
    nodes = extract_nodes(spam_desc)
    bus_owners = {
        node.node_id.owner
        for node in nodes
        if node.unit_class == "bus"
    }
    assert ("MV1", "mov") in bus_owners
    assert ("MV2", "mov") in bus_owners
    assert ("MV3", "mov") in bus_owners


def test_fp_macros_flagged(spam_desc):
    nodes = extract_nodes(spam_desc)
    fp_nodes = [n for n in nodes if n.unit_class.startswith("fp_")]
    assert fp_nodes
    assert all(node.is_macro for node in fp_nodes)
    assert any(node.unit_class == "fp_divider" for node in fp_nodes)


def test_nt_options_inlined_per_operation(risc16_desc):
    nodes = extract_nodes(risc16_desc)
    # the 'add' op has SRC inlined: owner extended with (param, option).
    # The reg option reads the register file; the imm option is pure
    # wiring and correctly contributes no hardware node.
    owners = {node.node_id.owner for node in nodes}
    assert ("EX", "add", "b", "reg") in owners
    assert not any(
        owner == ("EX", "add", "b", "imm") for owner in owners
    )


def test_node_ids_unique(spam_desc):
    nodes = extract_nodes(spam_desc)
    ids = [node.node_id for node in nodes]
    assert len(ids) == len(set(ids))


def test_widths_are_positive_and_sane(spam_desc):
    extractor = NodeExtractor(spam_desc)
    for node in extractor.extract():
        assert node.width >= 1
        if node.unit_class.startswith("fp_") and node.unit_class != "fp_comparator":
            assert node.width in (2, 32)


def test_param_width_of_nonterminal(risc16_desc):
    extractor = NodeExtractor(risc16_desc)
    src_param = risc16_desc.operation("EX", "add").params[2]
    # SRC's value is an RF element (16 bits), not its 9-bit encoding.
    assert extractor.param_width(src_param) == 16


def test_stmt_key_groups_same_statement(risc16_desc):
    nodes = extract_nodes(risc16_desc)
    add_nodes = [
        n for n in nodes
        if n.node_id.owner == ("EX", "add") and "side_effect" not in n.stmt_key
    ]
    keys = {n.stmt_key for n in add_nodes}
    assert len(keys) == 1  # single action statement


def test_conditional_branch_nodes(risc16_desc):
    nodes = extract_nodes(risc16_desc)
    beq_nodes = [n for n in nodes if n.node_id.owner == ("EX", "beq")]
    kinds = classes(beq_nodes)
    assert kinds["comparator"] == 1  # Z == 1
    assert kinds["adder"] == 1  # PC + t
