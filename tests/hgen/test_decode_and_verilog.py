"""Tests for decode-line generation (§4.2) and Verilog emission."""

from repro.encoding.signature import SignatureTable
from repro.hgen.decode import decode_line, decode_lines_for
from repro.hgen.synthesize import synthesize
from repro.hgen.verilog import count_lines


def test_decode_line_from_signature(risc16_desc):
    table = SignatureTable(risc16_desc)
    line = decode_line("EX.add", table.operation("EX", "add"))
    # opcode 00001 in bits 23:19
    assert set(line.literals) == {
        (23, 0), (22, 0), (21, 0), (20, 0), (19, 1)
    }


def test_equation_matches_paper_style(risc16_desc):
    table = SignatureTable(risc16_desc)
    line = decode_line("EX.add", table.operation("EX", "add"))
    assert line.equation() == "I23'.I22'.I21'.I20'.I19"


def test_decode_line_matches_exactly_its_words(risc16_desc):
    table = SignatureTable(risc16_desc)
    add_sig = table.operation("EX", "add")
    line = decode_line("EX.add", add_sig)
    word = table.encode_operation(
        "EX", "add", {"d": 1, "a": 2, "b": ("reg", {"r": 3})}
    )
    assert line.matches(word)
    other = table.encode_operation(
        "EX", "sub", {"d": 1, "a": 2, "b": ("reg", {"r": 3})}
    )
    assert not line.matches(other)


def test_gate_count_counts_inverters_and_ands(risc16_desc):
    table = SignatureTable(risc16_desc)
    line = decode_line("EX.add", table.operation("EX", "add"))
    # 4 inverters (zero literals) + 4 AND gates for 5 literals
    assert line.gate_count == 8


def test_all_operations_have_decode_lines(spam_desc):
    table = SignatureTable(spam_desc)
    lines = decode_lines_for(table, spam_desc)
    names = {line.name for line in lines}
    assert "FP1.fadd" in names and "MV3.mov" in names
    assert len(lines) == sum(len(f.operations) for f in spam_desc.fields)


def test_empty_literals_equation():
    from repro.encoding.signature import Signature

    line = decode_line("x", Signature(4, (None,) * 4))
    assert line.equation() == "1"
    assert line.matches(0b1010)


# ---------------------------------------------------------------------------
# Verilog emission
# ---------------------------------------------------------------------------


def test_verilog_module_structure(risc16_desc):
    model = synthesize(risc16_desc)
    v = model.verilog
    assert "module RISC16_core (" in v
    assert "endmodule" in v
    assert "reg" in v and "wire" in v
    assert "always @(posedge clk)" in v
    assert count_lines(v) == model.verilog_lines
    assert count_lines(v) > 100


def test_verilog_declares_all_storages(spam_desc):
    model = synthesize(spam_desc)
    for name in spam_desc.storages:
        assert name in model.verilog


def test_verilog_fp_macros_instantiated_and_stubbed(spam_desc):
    model = synthesize(spam_desc)
    assert "FP_ADD" in model.verilog
    assert "FP_MUL" in model.verilog
    assert "module FP_ADD" in model.verilog  # black-box stub


def test_verilog_decode_lines_present(risc16_desc):
    model = synthesize(risc16_desc)
    assert "dec_EX_add" in model.verilog
    assert "~iword[" in model.verilog  # inverted literals


def test_verilog_marks_shared_instances(risc16_desc):
    model = synthesize(risc16_desc, share=True)
    assert "sites merged" in model.verilog


def test_verilog_latency_staging_registers(spam_desc):
    model = synthesize(spam_desc)
    # fadd latency 2 -> one delay stage for its RF write
    assert "_d1" in model.verilog


def test_verilog_no_sharing_comment_when_unshared(mini_desc):
    model = synthesize(mini_desc, share=False)
    assert "sites merged" not in model.verilog


def test_emitted_identifiers_are_sane(spam_desc):
    model = synthesize(spam_desc)
    for line in model.verilog.splitlines():
        assert "%" not in line
