"""Tests (incl. property-based) for clique partitioning."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hgen.cliques import clique_partition, verify_cliques


def adjacency_from_edges(n, edges):
    adj = [set() for _ in range(n)]
    for a, b in edges:
        if a != b:
            adj[a].add(b)
            adj[b].add(a)
    return adj


def test_empty_graph():
    assert clique_partition([]) == []


def test_isolated_vertices_become_singletons():
    adj = adjacency_from_edges(3, [])
    assert clique_partition(adj) == [[0], [1], [2]]


def test_complete_graph_single_clique():
    n = 5
    adj = adjacency_from_edges(
        n, [(i, j) for i in range(n) for j in range(i + 1, n)]
    )
    assert clique_partition(adj) == [[0, 1, 2, 3, 4]]


def test_triangle_plus_pendant():
    adj = adjacency_from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)])
    cliques = clique_partition(adj)
    verify_cliques(adj, cliques)
    assert sorted(map(len, cliques)) == [1, 3]


def test_two_disjoint_edges():
    adj = adjacency_from_edges(4, [(0, 1), (2, 3)])
    cliques = clique_partition(adj)
    verify_cliques(adj, cliques)
    assert len(cliques) == 2


def test_bipartite_path_partition_valid():
    # path 0-1-2-3: optimal cover is two edges
    adj = adjacency_from_edges(4, [(0, 1), (1, 2), (2, 3)])
    cliques = clique_partition(adj)
    verify_cliques(adj, cliques)
    assert len(cliques) == 2


graphs = st.integers(min_value=0, max_value=14).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.sets(
            st.tuples(
                st.integers(0, max(n - 1, 0)),
                st.integers(0, max(n - 1, 0)),
            ),
            max_size=40,
        ),
    )
)


@settings(max_examples=150, deadline=None)
@given(graphs)
def test_partition_is_always_valid(graph):
    n, edges = graph
    adj = adjacency_from_edges(n, edges) if n else []
    cliques = clique_partition(adj)
    verify_cliques(adj, cliques)  # disjoint, covering, truly cliques


@settings(max_examples=80, deadline=None)
@given(graphs)
def test_partition_never_exceeds_vertex_count(graph):
    n, edges = graph
    adj = adjacency_from_edges(n, edges) if n else []
    cliques = clique_partition(adj)
    assert sum(len(c) for c in cliques) == n


def test_verify_rejects_non_clique():
    adj = adjacency_from_edges(3, [(0, 1)])
    try:
        verify_cliques(adj, [[0, 1, 2]])
    except AssertionError:
        pass
    else:
        raise AssertionError("expected verify_cliques to fail")


def test_verify_rejects_missing_vertex():
    adj = adjacency_from_edges(2, [])
    try:
        verify_cliques(adj, [[0]])
    except AssertionError:
        pass
    else:
        raise AssertionError("expected verify_cliques to fail")


# ----------------------------------------------------------------------
# Component-wise partitioning (the incremental-synthesis substrate)
# ----------------------------------------------------------------------

from repro.hgen.cliques import _greedy_partition, partition_components


@settings(max_examples=100, deadline=None)
@given(graphs)
def test_component_partition_equals_whole_graph_greedy(graph):
    """Per-component partitioning is a pure refactoring of the greedy:
    merges never cross components, so the reference whole-graph run and
    the component-wise run must agree exactly."""
    n, edges = graph
    adj = adjacency_from_edges(n, edges) if n else []
    cliques, _keys, _reused, _fresh = partition_components(adj)
    assert cliques == _greedy_partition(adj)
    assert cliques == clique_partition(adj)


@settings(max_examples=60, deadline=None)
@given(graphs)
def test_component_reuse_skips_every_greedy_rerun(graph):
    """Handing a graph its own key map back must reuse every component
    and reproduce the identical partition — the equal-to-cold invariant
    at the clique layer."""
    n, edges = graph
    adj = adjacency_from_edges(n, edges) if n else []
    cold, keys, reused0, fresh0 = partition_components(adj)
    warm, keys2, reused, fresh = partition_components(adj, reuse=keys)
    assert warm == cold
    assert keys2 == keys
    assert fresh == 0
    assert reused == reused0 + fresh0  # every component adopted


def test_isomorphic_components_share_one_greedy_run():
    # two identical triangles: the second adopts the first's partition
    adj = adjacency_from_edges(
        6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
    )
    cliques, keys, reused, fresh = partition_components(adj)
    assert cliques == [[0, 1, 2], [3, 4, 5]]
    assert fresh == 1 and reused == 1
    assert len(keys) == 1


def test_reuse_map_from_mutated_parent_only_recomputes_changed_component():
    parent = adjacency_from_edges(
        6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5)]
    )
    _cliques, keys, _r, _f = partition_components(parent)
    # close the second component's triangle: only it should re-run
    child = adjacency_from_edges(
        6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
    )
    cliques, _keys, reused, fresh = partition_components(child, reuse=keys)
    assert cliques == [[0, 1, 2], [3, 4, 5]]
    assert reused >= 1  # the untouched triangle was adopted
