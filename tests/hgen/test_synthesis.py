"""Tests for the HGEN pipeline: datapath, area, timing, power, facade."""

import pytest

from repro.hgen import (
    SharingAnalysis,
    clique_partition,
    estimate_area,
    estimate_power,
    estimate_timing,
    extract_nodes,
    synthesize,
)
from repro.hgen.datapath import build_datapath
from repro.hgen.netlist import Decode, RegRead, Unit


@pytest.fixture(scope="module")
def risc16_model(risc16_desc):
    return synthesize(risc16_desc)


@pytest.fixture(scope="module")
def spam_model(spam_desc):
    return synthesize(spam_desc)


# ---------------------------------------------------------------------------
# Datapath / netlist
# ---------------------------------------------------------------------------


def test_netlist_has_decode_per_operation(risc16_desc, risc16_model):
    decodes = [
        c for c in risc16_model.netlist.cells if isinstance(c, Decode)
        and c.base is None
    ]
    expected = sum(len(f.operations) for f in risc16_desc.fields)
    assert len(decodes) == expected


def test_netlist_units_cover_extraction_nodes(risc16_desc, risc16_model):
    fu_sites = [
        c for c in risc16_model.netlist.cells
        if isinstance(c, Unit) and c.unit_class not in ("glue", "wire")
    ]
    fu_nodes = [
        n for n in risc16_model.nodes
        if not n.unit_class.startswith(("read_port", "write_port"))
    ]
    assert len(fu_sites) == len(fu_nodes)


def test_sharing_reduces_instances(risc16_desc):
    shared = synthesize(risc16_desc, share=True)
    unshared = synthesize(risc16_desc, share=False)
    assert shared.shared_unit_count < unshared.shared_unit_count
    assert shared.area.functional_units < unshared.area.functional_units


def test_sharing_reduces_register_file_ports(risc16_desc):
    shared = synthesize(risc16_desc, share=True)
    unshared = synthesize(risc16_desc, share=False)
    assert (
        shared.netlist.storages["RF"].read_ports
        < unshared.netlist.storages["RF"].read_ports
    )


def test_constraints_increase_sharing(spam_desc):
    with_c = synthesize(spam_desc, use_constraints=True)
    without_c = synthesize(spam_desc, use_constraints=False)
    assert with_c.shared_unit_count <= without_c.shared_unit_count
    assert with_c.die_size <= without_c.die_size


def test_allocation_maps_every_node(risc16_model):
    assert set(risc16_model.allocation) == {
        n.node_id for n in risc16_model.nodes
    }


def test_read_ports_counted(spam_model):
    rf = spam_model.netlist.storages["RF"]
    assert rf.read_ports >= 2  # a VLIW needs parallel operand reads
    dm = spam_model.netlist.storages["DM"]
    assert dm.read_ports >= 1 and dm.write_ports >= 1


# ---------------------------------------------------------------------------
# Area model
# ---------------------------------------------------------------------------


def test_area_breakdown_sums_to_total(risc16_desc, risc16_model):
    area = risc16_model.area
    recomputed = estimate_area(risc16_desc, risc16_model.netlist)
    assert recomputed.total == pytest.approx(area.total)
    assert area.total > area.core_total > 0
    assert area.logic_total == pytest.approx(
        area.functional_units + area.sharing_muxes + area.decode
        + area.steering + area.pipeline_registers
    )


def test_fp_dominates_spam_area(spam_model):
    by_class = spam_model.area.by_unit_class
    fp_area = sum(v for k, v in by_class.items() if k.startswith("fp_"))
    other = sum(v for k, v in by_class.items() if not k.startswith("fp_"))
    assert fp_area > other


def test_spam_larger_than_spam2(spam_model, spam2_desc):
    spam2_model = synthesize(spam2_desc)
    assert spam_model.core_die_size > 2 * spam2_model.core_die_size
    assert spam_model.verilog_lines > spam2_model.verilog_lines


# ---------------------------------------------------------------------------
# Timing model
# ---------------------------------------------------------------------------


def test_cycle_length_positive_and_bounded(risc16_desc, risc16_model):
    timing = estimate_timing(risc16_desc, risc16_model.netlist)
    assert 5.0 < timing.cycle_ns < 200.0
    assert timing.cycle_ns > timing.critical_path_ns


def test_fp_pipeline_stages_shorten_cycle(spam_desc):
    # SPAM's FP ops declare Cycle+Stall stages; without that inference the
    # 22 ns multiplier would dominate the clock.
    model = synthesize(spam_desc)
    assert model.cycle_ns < 45.0


def test_sharing_muxes_lengthen_cycle(risc16_desc):
    shared = synthesize(risc16_desc, share=True)
    unshared = synthesize(risc16_desc, share=False)
    assert shared.cycle_ns >= unshared.cycle_ns


# ---------------------------------------------------------------------------
# Power model
# ---------------------------------------------------------------------------


def test_power_scales_with_frequency(risc16_desc, risc16_model):
    slow = estimate_power(risc16_desc, risc16_model.netlist, 10.0)
    fast = estimate_power(risc16_desc, risc16_model.netlist, 40.0)
    assert fast.dynamic_mw == pytest.approx(4 * slow.dynamic_mw)
    assert fast.static_mw == slow.static_mw
    assert fast.total_mw > 0


def test_power_uses_simulation_activity(risc16_desc, risc16_model):
    from repro.arch import run_workload
    from repro.arch.workloads import risc16_sum_loop

    sim = run_workload(risc16_sum_loop())
    with_stats = estimate_power(
        risc16_desc, risc16_model.netlist, 30.0, stats=sim.stats
    )
    without = estimate_power(risc16_desc, risc16_model.netlist, 30.0)
    assert with_stats.dynamic_mw != pytest.approx(without.dynamic_mw)


# ---------------------------------------------------------------------------
# Facade
# ---------------------------------------------------------------------------


def test_table2_metrics_populated(spam_model):
    assert spam_model.cycle_ns > 0
    assert spam_model.verilog_lines > 200
    assert spam_model.die_size > spam_model.core_die_size
    assert spam_model.synthesis_seconds >= 0
    summary = spam_model.summary()
    assert "SPAM" in summary and "grid cells" in summary


def test_main_cli(tmp_path, capsys):
    from repro.arch.risc16 import ISDL_SOURCE
    from repro.hgen.synthesize import main

    isdl = tmp_path / "r.isdl"
    isdl.write_text(ISDL_SOURCE)
    out = tmp_path / "r.v"
    assert main([str(isdl), str(out)]) == 0
    assert "module RISC16_core" in out.read_text()
    assert main([]) == 2
