"""Tests for the resource-sharing matrix (paper §4.1.2, Fig. 5 rules)."""

import pytest

from repro.hgen.nodes import extract_nodes
from repro.hgen.sharing import (
    SharingAnalysis,
    classes_compatible,
    merged_class,
)


@pytest.fixture(scope="module")
def spam_nodes(spam_desc):
    return extract_nodes(spam_desc)


@pytest.fixture(scope="module")
def spam_analysis(spam_desc, spam_nodes):
    return SharingAnalysis(spam_desc, spam_nodes)


def find(nodes, owner, unit_class):
    for node in nodes:
        if node.node_id.owner[:2] == owner and node.unit_class == unit_class:
            return node
    raise AssertionError(f"no {unit_class} node for {owner}")


def test_rule2_different_tasks_never_share(spam_analysis, spam_nodes):
    adder = find(spam_nodes, ("INT", "add"), "adder")
    shifter = find(spam_nodes, ("INT", "shl"), "shifter")
    assert not spam_analysis.compatible(adder, shifter)


def test_rule3_same_field_shares(spam_analysis, spam_nodes):
    add = find(spam_nodes, ("INT", "add"), "adder")
    sub = find(spam_nodes, ("INT", "sub"), "adder")
    assert spam_analysis.compatible(add, sub)


def test_rule1_same_operation_never_shares(spam_analysis, spam_nodes):
    # fcmp computes two comparator results concurrently (FEQ and FLT).
    fcmp_nodes = [
        n for n in spam_nodes
        if n.node_id.owner == ("FP1", "fcmp")
        and n.unit_class == "fp_comparator"
    ]
    assert len(fcmp_nodes) == 2
    assert not spam_analysis.compatible(fcmp_nodes[0], fcmp_nodes[1])


def test_rule4_different_fields_do_not_share(spam_analysis, spam_nodes):
    mv1 = find(spam_nodes, ("MV1", "mov"), "bus")
    mv2 = find(spam_nodes, ("MV2", "mov"), "bus")
    assert not spam_analysis.compatible(mv1, mv2)


def test_rule4_constraint_enables_cross_field_sharing(
    spam_analysis, spam_nodes
):
    # forbid LSU.st & MV3.mov makes the store's RF read port / the move bus
    # mutually exclusive with MV3 — the paper's §4.1.1 example.
    assert spam_analysis.owners_exclusive(("LSU", "st"), ("MV3", "mov"))
    assert spam_analysis.owners_exclusive(("FP2", "fdiv"), ("INT", "jmp"))
    assert not spam_analysis.owners_exclusive(("LSU", "st"), ("MV1", "mov"))


def test_constraints_can_be_disabled(spam_desc, spam_nodes):
    analysis = SharingAnalysis(spam_desc, spam_nodes, use_constraints=False)
    assert not analysis.owners_exclusive(("LSU", "st"), ("MV3", "mov"))


def test_nt_options_of_same_param_share(risc16_desc):
    nodes = extract_nodes(risc16_desc)
    analysis = SharingAnalysis(risc16_desc, nodes)
    reg_port = next(
        n for n in nodes
        if n.node_id.owner == ("EX", "add", "b", "reg")
        and n.unit_class == "read_port:RF"
    )
    # reg option's read port vs the op's own 'a' operand port: same
    # operation, concurrent -> not shareable.
    own_port = next(
        n for n in nodes
        if n.node_id.owner == ("EX", "add")
        and n.unit_class == "read_port:RF"
    )
    assert not analysis.compatible(reg_port, own_port)


def test_matrix_is_symmetric_with_zero_diagonal(risc16_desc):
    nodes = extract_nodes(risc16_desc)[:40]
    analysis = SharingAnalysis(risc16_desc, nodes)
    matrix = analysis.matrix()
    n = len(nodes)
    for i in range(n):
        assert matrix[i][i] == 0
        for j in range(n):
            assert matrix[i][j] == matrix[j][i]


def test_adjacency_matches_matrix(risc16_desc):
    nodes = extract_nodes(risc16_desc)[:30]
    analysis = SharingAnalysis(risc16_desc, nodes)
    matrix = analysis.matrix()
    adjacency = analysis.adjacency()
    for i, neighbours in enumerate(adjacency):
        for j in range(len(nodes)):
            assert (j in neighbours) == bool(matrix[i][j])


def test_class_compatibility_and_merge():
    assert classes_compatible("adder", "adder")
    assert classes_compatible("comparator", "adder")  # subset rule
    assert not classes_compatible("adder", "multiplier")
    assert merged_class("comparator", "adder") == "adder"
    assert merged_class("adder", "comparator") == "adder"
    with pytest.raises(ValueError):
        merged_class("adder", "shifter")


def test_memory_ports_share_only_same_storage(spam_desc, spam_nodes):
    analysis = SharingAnalysis(spam_desc, spam_nodes)
    dm_read = next(
        n for n in spam_nodes if n.unit_class == "read_port:DM"
    )
    rf_read = next(
        n for n in spam_nodes
        if n.unit_class == "read_port:RF"
        and n.node_id.owner[:2] != dm_read.node_id.owner[:2]
    )
    assert not analysis.compatible(dm_read, rf_read)
