"""Tests for the retargetable assembler."""

import pytest

from repro.asm import Assembler, assemble
from repro.errors import AssemblerError, ConstraintViolation


def words(desc, source):
    return assemble(desc, source).words


def test_simple_instruction(risc16_desc):
    program = assemble(risc16_desc, "ldi r3, #42\n")
    assert len(program.words) == 1
    word = program.words[0]
    assert word >> 19 == 0b01010
    assert (word >> 16) & 7 == 3
    assert (word >> 5) & 0xFF == 42


def test_comments_and_blank_lines_ignored(risc16_desc):
    program = assemble(risc16_desc, """
; full-line comment

    nop   ; trailing comment
""")
    assert len(program.words) == 1


def test_labels_and_relative_branch(risc16_desc):
    program = assemble(risc16_desc, """
start:  nop
        beq start - .
""")
    # branch at address 1, target 0 -> displacement -1
    assert (program.words[1] >> 5) & 0xFF == 0xFF
    assert program.symbols["start"] == 0


def test_forward_reference(risc16_desc):
    program = assemble(risc16_desc, """
        beq done - .
        nop
done:   halt
""")
    assert (program.words[0] >> 5) & 0xFF == 2


def test_absolute_jump_to_label(risc16_desc):
    program = assemble(risc16_desc, """
        jmp entry
        nop
entry:  halt
""")
    assert (program.words[0] >> 3) & 0x3FF == 2


def test_equ_directive(risc16_desc):
    program = assemble(risc16_desc, """
        .equ COUNT 7
        ldi r0, #COUNT
""")
    assert (program.words[0] >> 5) & 0xFF == 7


def test_org_directive(risc16_desc):
    program = assemble(risc16_desc, """
        .org 0x10
        nop
        halt
""")
    assert program.origin == 0x10
    assert len(program.words) == 2


def test_immediate_arithmetic(risc16_desc):
    program = assemble(risc16_desc, """
        .equ BASE 8
        ldi r0, #BASE + 3
""")
    assert (program.words[0] >> 5) & 0xFF == 11


def test_unknown_mnemonic_reports_line(risc16_desc):
    with pytest.raises(AssemblerError) as excinfo:
        assemble(risc16_desc, "nop\nfrobnicate r1\n")
    assert ":2:" in str(excinfo.value)


def test_undefined_symbol_rejected(risc16_desc):
    with pytest.raises(AssemblerError):
        assemble(risc16_desc, "ldi r0, #MISSING\n")


def test_duplicate_label_rejected(risc16_desc):
    with pytest.raises(AssemblerError):
        assemble(risc16_desc, "a: nop\na: nop\n")


def test_register_out_of_range_not_matched(risc16_desc):
    with pytest.raises(AssemblerError):
        assemble(risc16_desc, "ldi r9, #1\n")


def test_immediate_out_of_range_rejected(risc16_desc):
    with pytest.raises(AssemblerError):
        assemble(risc16_desc, "ldi r0, #300\n")


def test_signed_immediate_range(risc16_desc):
    assemble(risc16_desc, "beq 0 - 128\n")
    with pytest.raises(AssemblerError):
        assemble(risc16_desc, "beq 0 - 129\n")


def test_case_insensitive_mnemonics_and_registers(risc16_desc):
    upper = assemble(risc16_desc, "ADD R1, R2, R3\n").words
    lower = assemble(risc16_desc, "add r1, r2, r3\n").words
    assert upper == lower


def test_nt_operand_alternatives(risc16_desc):
    reg = assemble(risc16_desc, "mov r0, r5\n").words[0]
    imm = assemble(risc16_desc, "mov r0, #5\n").words[0]
    assert (reg >> 12) & 1 == 0
    assert (imm >> 12) & 1 == 1


def test_parenthesised_syntax(risc16_desc):
    program = assemble(risc16_desc, "ld r1, (r2)\nst (r2), r1\n")
    assert len(program.words) == 2


def test_vliw_parts_assigned_to_distinct_fields(spam_desc):
    program = assemble(
        spam_desc, "mov r1, r2 | mov r3, r4 | mov r5, r6\n"
    )
    word = program.words[0]
    assert (word >> 27) & 1 == 1  # MV1 enabled
    assert (word >> 18) & 1 == 1  # MV2 enabled
    assert (word >> 9) & 1 == 1  # MV3 enabled


def test_constraint_violation_rejected(spam_desc):
    with pytest.raises(ConstraintViolation):
        assemble(spam_desc, "st (r1), r2 | mov r3, r4 | mov r5, r6 | mov r7, r8\n")


def test_constraint_allows_legal_combination(spam_desc):
    assemble(spam_desc, "st (r1), r2 | mov r3, r4 | mov r5, r6\n")


def test_backtracking_across_nt_options(acc8_desc):
    indexed = assemble(acc8_desc, "add (X)\n").words[0]
    postinc = assemble(acc8_desc, "add (X)+\n").words[0]
    assert (indexed >> 8) & 3 == 0b01
    assert (postinc >> 8) & 3 == 0b10


def test_enum_token_matching():
    from repro.isdl import load_string

    desc = load_string('''
processor "E"
section format
    word 8
end
section global_definitions
    token CC enum { EQ = 0, NE = 1, LT = 2 }
end
section storage
    instruction_memory IM width 8 depth 8
    register ACC width 8
    program_counter PC width 3
end
section instruction_set
    field EX
        operation bc(c: CC)
            encoding { bits[7:4] = 0b0001; bits[1:0] = c }
    end
end
''')
    program = assemble(desc, "bc NE\nbc lt\n")
    assert program.words[0] & 3 == 1
    assert program.words[1] & 3 == 2


def test_listing_contains_addresses_and_text(risc16_desc):
    program = assemble(risc16_desc, "nop\nhalt\n")
    assert program.listing[0].startswith("0x0000:")
    assert "halt" in program.listing[1]


def test_assemble_file(tmp_path, risc16_desc):
    path = tmp_path / "prog.s"
    path.write_text("ldi r0, #1\nhalt\n")
    program = Assembler(risc16_desc).assemble_file(str(path))
    assert len(program.words) == 2


def test_main_cli(tmp_path, capsys):
    from repro.arch.risc16 import ISDL_SOURCE
    from repro.asm.assembler import main

    isdl = tmp_path / "risc16.isdl"
    isdl.write_text(ISDL_SOURCE)
    src = tmp_path / "p.s"
    src.write_text("nop\nhalt\n")
    out = tmp_path / "p.hex"
    assert main([str(isdl), str(src), str(out)]) == 0
    lines = out.read_text().split()
    assert len(lines) == 2
    assert main([]) == 2
